(* The benchmark harness: one experiment per quantitative claim or
   architectural figure in the paper, plus ablations of the design
   choices called out in DESIGN.md. EXPERIMENTS.md records each
   experiment's paper-vs-measured story.

   The paper (HotNets '13) has no numeric tables; its quantitative
   content is §8.1: file-system access costs a context switch per call,
   "writing flow entries to thousands of nodes will result in tens of
   thousands of context switches", and libyanc's shared-memory fastpath
   removes them. Every experiment here regenerates a table whose shape
   supports or refutes those claims on our simulated substrate. *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module P = Packet
module Fs = Vfs.Fs

let cred = Vfs.Cred.root

let net_root = Y.Layout.default_root

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let row fmt =
  Printf.ksprintf
    (fun s ->
      print_string s;
      flush stdout)
    fmt

(* --- bechamel helper ---------------------------------------------------------- *)

let run_benchmarks tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"" tests)
  in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (ns :: _) -> (name, ns) :: acc
      | _ -> acc)
    res []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let print_benchmarks label results =
  List.iter
    (fun (name, ns) ->
      row "  %-46s %12.0f ns/op  (%8.2f us)\n" name ns (ns /. 1000.))
    results;
  ignore label

let stage = Bechamel.Staged.stage

let test name f = Bechamel.Test.make ~name (stage f)

(* --- shared fixtures ------------------------------------------------------------- *)

let fresh_yancfs ?(switches = 1) () =
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  for i = 1 to switches do
    ignore
      (Y.Yanc_fs.add_switch yfs
         ~name:(Y.Yanc_fs.switch_name_of_dpid (Int64.of_int i))
         ~dpid:(Int64.of_int i) ~protocol:"openflow10" ~n_buffers:256
         ~n_tables:1 ~capabilities:[] ~actions:[])
  done;
  fs, yfs

let sample_flow i =
  { Y.Flowdir.default with
    Y.Flowdir.of_match =
      { OF.Of_match.any with
        OF.Of_match.dl_type = Some 0x0800; tp_dst = Some (i land 0xffff) };
    actions = [ OF.Action.Output (OF.Action.Physical ((i mod 8) + 1)) ];
    priority = 100 }

(* ================================================================== *)
(* E8a — the headline table: kernel crossings to push one flow to N
   switches, file path vs libyanc fastpath (paper §8.1). *)
(* ================================================================== *)

let e8_crossings () =
  section
    "E8a  crossings: push one flow to each of N switches (paper 8.1)";
  row "  %8s | %16s | %12s | %18s | %12s | %6s\n" "switches" "fs-path syscalls"
    "fs-path us" "fastpath syscalls" "fastpath us" "ratio";
  List.iter
    (fun n ->
      (* slow path *)
      let fs, yfs = fresh_yancfs ~switches:n () in
      let cost = Fs.cost fs in
      Vfs.Cost.reset cost;
      for i = 1 to n do
        ignore
          (Y.Yanc_fs.create_flow yfs ~cred
             ~switch:(Y.Yanc_fs.switch_name_of_dpid (Int64.of_int i))
             ~name:"f" (sample_flow i))
      done;
      let slow = Vfs.Cost.crossings cost in
      let slow_us = Vfs.Cost.charged_ns cost /. 1000. in
      (* fastpath *)
      let fs2, yfs2 = fresh_yancfs ~switches:n () in
      let cost2 = Fs.cost fs2 in
      Vfs.Cost.reset cost2;
      let fp = Libyanc.Fastpath.create yfs2 in
      ignore
        (Libyanc.Fastpath.push_flows fp
           (List.init n (fun i ->
                ( Y.Yanc_fs.switch_name_of_dpid (Int64.of_int (i + 1)),
                  "f", sample_flow i ))));
      let fast = Vfs.Cost.crossings cost2 in
      let fast_us = Vfs.Cost.charged_ns cost2 /. 1000. in
      row "  %8d | %16d | %12.1f | %18d | %12.1f | %5dx\n" n slow slow_us fast
        fast_us
        (slow / max 1 fast))
    [ 10; 100; 1000 ]

(* E8b — wall-clock for the same contrast. *)
let e8_walltime () =
  section "E8b  wall time per flow create: fs path vs libyanc fastpath";
  let fs, yfs = fresh_yancfs () in
  ignore fs;
  let counter = ref 0 in
  let fp = Libyanc.Fastpath.create yfs in
  print_benchmarks "e8b"
    (run_benchmarks
       [ test "flow_create/fs_path" (fun () ->
             incr counter;
             ignore
               (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1"
                  ~name:(Printf.sprintf "s%d" !counter)
                  (sample_flow !counter)));
         test "flow_create/fastpath" (fun () ->
             incr counter;
             ignore
               (Libyanc.Fastpath.create_flow fp ~switch:"sw1"
                  ~name:(Printf.sprintf "q%d" !counter)
                  (sample_flow !counter))) ])

(* ================================================================== *)
(* E3 — commit latency: version bump -> programmed hardware, through a
   real driver + agent round. *)
(* ================================================================== *)

let e3_commit () =
  section "E3   flow commit -> hardware (driver+agent round trip)";
  let built = N.Topo_gen.linear 1 in
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  let mgr = Driver.Manager.create ~yfs ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  let counter = ref 0 in
  print_benchmarks "e3"
    (run_benchmarks
       [ test "commit_to_hardware/of10" (fun () ->
             incr counter;
             ignore
               (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1"
                  ~name:(Printf.sprintf "c%d" !counter)
                  (sample_flow !counter));
             Driver.Manager.step mgr ~now:0.) ]);
  let sw = Option.get (N.Network.switch built.net 1L) in
  row "  (hardware table now holds %d entries)\n"
    (match N.Sim_switch.table sw 0 with
    | Some t -> N.Flow_table.length t
    | None -> 0)

(* ================================================================== *)
(* E4 — packet-in fan-out to K private buffers (paper 3.5), and the
   zero-copy contrast (8.1). *)
(* ================================================================== *)

let e4_fanout () =
  section "E4   packet-in fan-out to K application buffers (paper 3.5)";
  let frame =
    P.Eth.to_wire
      (P.Eth.make ~src:(P.Mac.of_int 1) ~dst:(P.Mac.of_int 2)
         (P.Eth.Raw (0x9999, String.make 1400 'x')))
  in
  let tests =
    List.map
      (fun k ->
        let fs, yfs = fresh_yancfs () in
        ignore yfs;
        for i = 1 to k do
          ignore
            (Y.Eventdir.subscribe fs ~cred ~root:net_root ~switch:"sw1"
               ~app:(Printf.sprintf "app%d" i))
        done;
        (* consume as we go so the buffers stay small *)
        let published = ref 0 in
        test (Printf.sprintf "publish/apps=%d" k) (fun () ->
            incr published;
            ignore
              (Y.Eventdir.publish fs ~root:net_root ~switch:"sw1" ~in_port:1
                 ~reason:OF.Of_types.No_match ~buffer_id:None
                 ~total_len:(String.length frame) ~data:frame);
            if !published mod 64 = 0 then
              List.iter
                (fun i ->
                  ignore
                    (Y.Eventdir.consume fs ~cred ~root:net_root ~switch:"sw1"
                       ~app:(Printf.sprintf "app%d" i)))
                (List.init k (fun i -> i + 1))))
      [ 1; 2; 4; 8 ]
  in
  print_benchmarks "e4" (run_benchmarks tests);
  (* zero-copy contrast *)
  section "E4b  bulk data: event-directory copy vs libyanc shm ring (8.1)";
  let ring = Libyanc.Shm_ring.create ~capacity:1024 in
  let fs, yfs = fresh_yancfs () in
  ignore yfs;
  ignore (Y.Eventdir.subscribe fs ~cred ~root:net_root ~switch:"sw1" ~app:"a");
  let n = ref 0 in
  print_benchmarks "e4b"
    (run_benchmarks
       [ test "deliver/eventdir_file_copy" (fun () ->
             incr n;
             ignore
               (Y.Eventdir.publish fs ~root:net_root ~switch:"sw1" ~in_port:1
                  ~reason:OF.Of_types.No_match ~buffer_id:None
                  ~total_len:(String.length frame) ~data:frame);
             if !n mod 32 = 0 then
               ignore (Y.Eventdir.consume fs ~cred ~root:net_root ~switch:"sw1" ~app:"a"));
         test "deliver/shm_ring_zero_copy" (fun () ->
             ignore (Libyanc.Shm_ring.push ring frame);
             ignore (Libyanc.Shm_ring.pop ring)) ])

(* ================================================================== *)
(* Ablation — fsnotify watch granularity (DESIGN.md): a watch per
   version file vs one recursive watch on flows/. *)
(* ================================================================== *)

let ablation_notify () =
  section "ABL1 fsnotify granularity: per-version-file vs recursive watch";
  let flows = 50 in
  let noise = 200 in
  let build () =
    let fs, yfs = fresh_yancfs () in
    for i = 1 to flows do
      ignore
        (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1"
           ~name:(Printf.sprintf "f%d" i) (sample_flow i))
    done;
    fs
  in
  (* fine-grained: one watch per version file *)
  let fs1 = build () in
  let n1 = Fsnotify.Notifier.create fs1 in
  for i = 1 to flows do
    ignore
      (Fsnotify.Notifier.add_watch n1
         (Vfs.Path.child
            (Y.Layout.flow ~root:net_root ~switch:"sw1" (Printf.sprintf "f%d" i))
            "version")
         (Fsnotify.Notifier.mask [ Fsnotify.Event.Modified ]))
  done;
  (* coarse: one recursive watch *)
  let fs2 = build () in
  let n2 = Fsnotify.Notifier.create fs2 in
  ignore
    (Fsnotify.Notifier.add_watch ~recursive:true n2
       (Y.Layout.flows_dir ~root:net_root "sw1")
       Fsnotify.Notifier.all);
  (* the driver refreshes counters: noise writes that only the coarse
     watcher has to wade through *)
  let make_noise fs =
    for i = 1 to noise do
      let flow = Printf.sprintf "f%d" ((i mod flows) + 1) in
      ignore
        (Y.Flowdir.write_counters fs ~cred
           (Y.Layout.flow ~root:net_root ~switch:"sw1" flow)
           ~packets:(Int64.of_int i) ~bytes:(Int64.of_int (i * 64))
           ~duration_s:i)
    done
  in
  make_noise fs1;
  make_noise fs2;
  let fine = List.length (Fsnotify.Notifier.read_events n1) in
  let coarse = List.length (Fsnotify.Notifier.read_events n2) in
  row "  %d counter refreshes on %d flows:\n" noise flows;
  row "  per-version-file watches: %4d events delivered\n" fine;
  row "  one recursive watch:      %4d events delivered (%.0fx noisier)\n"
    coarse
    (float_of_int coarse /. float_of_int (max 1 fine))

(* ================================================================== *)
(* Ablation — flow table lookup strategy (DESIGN.md). *)
(* ================================================================== *)

let ablation_lookup () =
  section "ABL2 flow-table lookup: linear scan vs exact-match hash";
  let header frame in_port = P.Headers.of_eth ~in_port frame in
  let mk_frame i =
    P.Builder.tcp_syn
      ~src_mac:(P.Mac.of_int (0x020000000000 lor i))
      ~dst_mac:(P.Mac.of_int 0x02ffffffffff)
      ~src_ip:(P.Ipv4_addr.of_int32 (Int32.of_int (0x0a000000 lor i)))
      ~dst_ip:(P.Ipv4_addr.of_int32 0x0a0000ffl)
      ~src_port:(1024 + (i land 0xfff))
      ~dst_port:80
  in
  let tests =
    List.concat_map
      (fun size ->
        List.map
          (fun (label, strategy) ->
            let t = N.Flow_table.create ~strategy () in
            for i = 1 to size do
              N.Flow_table.add t ~now:0.
                ~of_match:(OF.Of_match.exact_of_headers (header (mk_frame i) 1))
                ~priority:10 ~actions:[] ()
            done;
            let probe = header (mk_frame (size / 2)) 1 in
            test
              (Printf.sprintf "lookup/%s/%d_flows" label size)
              (fun () -> ignore (N.Flow_table.lookup t ~now:0. probe)))
          [ "linear", N.Flow_table.Linear; "hash", N.Flow_table.Exact_hash ])
      [ 10; 100; 1000 ]
  in
  print_benchmarks "abl2" (run_benchmarks tests)

(* ================================================================== *)
(* E15 — the tuple-space classifier (DESIGN.md): entries examined per
   lookup and wall time, Linear vs Exact_hash vs Classifier, over a
   mixed-mask rule set (per-MAC forwarding + /24 subnets + port ACLs +
   exact microflows) like a router-plus-ACL controller installs. *)
(* ================================================================== *)

let e15_frame i =
  P.Builder.tcp_syn
    ~src_mac:(P.Mac.of_int (0x020000000000 lor 0xbeef))
    ~dst_mac:(P.Mac.of_int (0x020000000000 lor i))
    ~src_ip:(P.Ipv4_addr.of_int32 0x0a640001l)
    ~dst_ip:
      (P.Ipv4_addr.of_int32
         (Int32.of_int (0x0a000000 lor ((i land 0xff) lsl 8) lor 1)))
    ~src_port:(1024 + (i land 0xff))
    ~dst_port:(1024 + (i land 0x3fff))

let e15_rules size =
  List.init size (fun i ->
      match i mod 4 with
      | 0 ->
        ( 100,
          { OF.Of_match.any with
            OF.Of_match.dl_dst = Some (P.Mac.of_int (0x020000000000 lor i)) } )
      | 1 ->
        ( 200,
          { OF.Of_match.any with
            OF.Of_match.dl_type = Some 0x0800;
            nw_dst =
              Some
                (P.Ipv4_addr.Prefix.make
                   (P.Ipv4_addr.of_int32
                      (Int32.of_int (0x0a000000 lor ((i land 0xff) lsl 8))))
                   24) } )
      | 2 ->
        ( 300,
          { OF.Of_match.any with
            OF.Of_match.dl_type = Some 0x0800; nw_proto = Some 6;
            tp_dst = Some (1024 + (i land 0x3fff)) } )
      | _ ->
        400, OF.Of_match.exact_of_headers (P.Headers.of_eth ~in_port:1 (e15_frame i)))

let e15_probes n =
  Array.init n (fun k -> P.Headers.of_eth ~in_port:1 (e15_frame (k mod 256)))

let e15_table strategy size =
  let t = N.Flow_table.create ~strategy () in
  List.iter
    (fun (priority, of_match) ->
      N.Flow_table.add t ~now:0. ~of_match ~priority
        ~actions:[ OF.Action.Output (OF.Action.Physical 1) ] ())
    (e15_rules size);
  t

let e15_strategies =
  [ "linear", N.Flow_table.Linear; "hash", N.Flow_table.Exact_hash;
    "classifier", N.Flow_table.Classifier ]

let e15_classifier () =
  section "E15a classifier: entries examined per lookup over mixed-mask rules";
  row "  %6s | %-10s | %12s | %12s | %10s | %8s\n" "flows" "strategy"
    "entries/lkp" "subtbl/lkp" "micro hit%" "matched";
  let probes = e15_probes 2048 in
  List.iter
    (fun size ->
      List.iter
        (fun (label, strategy) ->
          let t = e15_table strategy size in
          let cost = N.Flow_table.cost t in
          N.Flow_table.Cost.reset cost;
          let won = ref 0 in
          Array.iter
            (fun h ->
              match N.Flow_table.lookup t ~now:0. h with
              | Some _ -> incr won
              | None -> ())
            probes;
          let lkps = float_of_int (max 1 (N.Flow_table.Cost.lookups cost)) in
          let hits = N.Flow_table.Cost.micro_hits cost in
          let cache_probes = hits + N.Flow_table.Cost.micro_misses cost in
          row "  %6d | %-10s | %12.1f | %12.2f | %9.1f%% | %8d\n" size label
            (float_of_int (N.Flow_table.Cost.entries_examined cost) /. lkps)
            (float_of_int (N.Flow_table.Cost.subtables_visited cost) /. lkps)
            (100. *. float_of_int hits /. float_of_int (max 1 cache_probes))
            !won)
        e15_strategies)
    [ 100; 300; 1000 ];
  section "E15b wall time per lookup: 1000 mixed-mask flows";
  let tests =
    List.map
      (fun (label, strategy) ->
        let t = e15_table strategy 1000 in
        let i = ref 0 in
        test
          (Printf.sprintf "lookup/%s/1000_mixed" label)
          (fun () ->
            incr i;
            ignore (N.Flow_table.lookup t ~now:0. probes.(!i land 2047))))
      e15_strategies
  in
  print_benchmarks "e15b" (run_benchmarks tests);
  section "E15c reactive workload: fat-tree ping sweep, linear vs classifier";
  row "  %-10s | %10s | %14s | %12s\n" "datapath" "frames" "entries/lookup"
    "wall s";
  List.iter
    (fun (label, strategy) ->
      let built = N.Topo_gen.fat_tree ~k:4 ~strategy () in
      let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
      Yanc.Controller.attach_switches ctl;
      let yfs = Yanc.Controller.yfs ctl in
      Yanc.Controller.add_app ctl (Apps.Topology.app (Apps.Topology.create yfs));
      Yanc.Controller.add_app ctl (Apps.Router.app (Apps.Router.create yfs));
      let t0 = Sys.time () in
      Yanc.Controller.run_for ctl 3.0;
      let net = built.N.Topo_gen.net in
      let h1 = Option.get (N.Network.host net "h1") in
      List.iteri
        (fun i _ ->
          let n = i + 1 in
          if n > 1 then begin
            N.Network.send_from_host net "h1"
              (N.Sim_host.ping h1 ~now:(N.Network.now net)
                 ~dst:(N.Topo_gen.host_ip n) ~seq:n);
            ignore
              (Yanc.Controller.run_until ctl (fun () ->
                   List.length (N.Sim_host.ping_results h1) >= n - 1))
          end)
        built.N.Topo_gen.host_names;
      let wall = Sys.time () -. t0 in
      let dcost = Yanc.Controller.datapath_cost ctl in
      let delivered, _ = N.Network.stats net in
      row "  %-10s | %10d | %14.1f | %12.3f\n" label delivered
        (float_of_int (N.Flow_table.Cost.entries_examined dcost)
        /. float_of_int (max 1 (N.Flow_table.Cost.lookups dcost)))
        wall)
    [ "linear", N.Flow_table.Linear; "classifier", N.Flow_table.Classifier ]

(* ================================================================== *)
(* E7 — distributed controller: consistency trade-offs (paper 6). *)
(* ================================================================== *)

let e7_dfs () =
  section "E7   DFS-layered distributed controller: consistency trade-offs (paper 6)";
  row "  %-26s | %14s | %16s | %14s\n" "consistency" "writer stall/op"
    "remote staleness" "ops replicated";
  let flows = 50 in
  List.iter
    (fun consistency ->
      let c = Dfs.Cluster.create ~consistency ~rtt:0.001 ~n:3 () in
      let yfs0 = Y.Yanc_fs.create (Dfs.Cluster.node c 0) in
      ignore
        (Y.Yanc_fs.add_switch yfs0 ~name:"sw1" ~dpid:1L ~protocol:"openflow10"
           ~n_buffers:0 ~n_tables:1 ~capabilities:[] ~actions:[]);
      Dfs.Cluster.flush c;
      let before = Dfs.Cluster.metrics c in
      for i = 1 to flows do
        ignore
          (Y.Yanc_fs.create_flow yfs0 ~cred ~switch:"sw1"
             ~name:(Printf.sprintf "f%d" i) (sample_flow i))
      done;
      (* staleness: how long until a replica can read the last flow *)
      let probe =
        Vfs.Path.child
          (Y.Layout.flow ~root:net_root ~switch:"sw1"
             (Printf.sprintf "f%d" flows))
          "version"
      in
      let visible () =
        Result.is_ok (Fs.read_file (Dfs.Cluster.node c 2) ~cred probe)
      in
      let staleness = ref 0. in
      while not (visible ()) do
        Dfs.Cluster.advance c 0.1;
        staleness := !staleness +. 0.1
      done;
      let m = Dfs.Cluster.metrics c in
      let stall =
        (m.Dfs.Cluster.writer_blocked_s -. before.Dfs.Cluster.writer_blocked_s)
        /. float_of_int m.Dfs.Cluster.ops_originated
      in
      row "  %-26s | %11.3f ms | %13.1f s | %14d\n"
        (Dfs.Consistency.to_string consistency)
        (stall *. 1000.) !staleness
        (m.Dfs.Cluster.ops_replicated - before.Dfs.Cluster.ops_replicated))
    [ Dfs.Consistency.Sequential;
      Dfs.Consistency.nfs;
      Dfs.Consistency.Eventual { propagation_s = 10. } ]

(* ================================================================== *)
(* E9 — reactive path setup cost on the full stack (paper 8). *)
(* ================================================================== *)

let e9_reactive () =
  section "E9   reactive router: first-packet path setup vs hardware path (paper 8)";
  row "  %-10s | %10s | %12s | %12s\n" "topology" "hops" "1st ping: syscalls"
    "2nd ping: syscalls";
  List.iter
    (fun (label, built) ->
      let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
      Yanc.Controller.attach_switches ctl;
      let topo = Apps.Topology.create (Yanc.Controller.yfs ctl) in
      let router = Apps.Router.create (Yanc.Controller.yfs ctl) in
      Yanc.Controller.add_app ctl (Apps.Topology.app topo);
      Yanc.Controller.add_app ctl (Apps.Router.app router);
      Yanc.Controller.run_for ctl 3.0;
      let cost = Fs.cost (Yanc.Controller.fs ctl) in
      let net = built.N.Topo_gen.net in
      let h = Option.get (N.Network.host net "h1") in
      let last = List.length built.N.Topo_gen.host_names in
      let ping seq =
        let before = Vfs.Cost.crossings cost in
        N.Network.send_from_host net "h1"
          (N.Sim_host.ping h ~now:(N.Network.now net)
             ~dst:(N.Topo_gen.host_ip last) ~seq);
        ignore
          (Yanc.Controller.run_until ctl (fun () ->
               List.length (N.Sim_host.ping_results h) >= seq));
        Vfs.Cost.crossings cost - before
      in
      let first = ping 1 in
      let second = ping 2 in
      row "  %-10s | %10d | %12d | %12d\n" label
        (List.length built.N.Topo_gen.dpids)
        first second)
    [ "linear-2", N.Topo_gen.linear 2;
      "linear-5", N.Topo_gen.linear 5;
      "fat-tree-4", N.Topo_gen.fat_tree ~k:4 () ]

(* ================================================================== *)
(* E6 — view translation overhead (paper 4.2). *)
(* ================================================================== *)

let e6_views () =
  section "E6   view overhead: direct flow write vs through a slice";
  let built = N.Topo_gen.linear 1 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  Yanc.Controller.run_for ctl 0.3;
  let yfs = Yanc.Controller.yfs ctl in
  let slicer =
    Result.get_ok
      (Views.Slicer.create ~master:yfs
         { Views.Slicer.view = "bench"; switches = [ "sw1", [] ];
           flowspace = OF.Of_match.any; priority_cap = 0xffff })
  in
  let vy = Views.Slicer.view_fs slicer in
  let i = ref 0 in
  print_benchmarks "e6"
    (run_benchmarks
       [ test "flow_write/direct_master" (fun () ->
             incr i;
             ignore
               (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1"
                  ~name:(Printf.sprintf "d%d" !i) (sample_flow !i)));
         test "flow_write/through_slice" (fun () ->
             incr i;
             ignore
               (Y.Yanc_fs.create_flow vy ~cred ~switch:"sw1"
                  ~name:(Printf.sprintf "v%d" !i) (sample_flow !i));
             Views.Slicer.run slicer ~now:0.) ])

(* ================================================================== *)
(* E1 — the Figure 2/3 structure, printed for eyeball comparison. *)
(* ================================================================== *)

let e1_figure () =
  section "E1   Figure 2/3: the yanc hierarchy (1 switch, 1 committed flow)";
  let _, yfs = fresh_yancfs () in
  ignore
    (Y.Yanc_fs.set_port yfs ~switch:"sw1"
       (OF.Of_types.Port_info.make ~port_no:1 ~hw_addr:(P.Mac.of_int 0x02) ()));
  ignore
    (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1" ~name:"arp_flow"
       { Y.Flowdir.default with
         Y.Flowdir.of_match =
           { OF.Of_match.any with
             OF.Of_match.dl_type = Some 0x0806;
             dl_src = Some (P.Mac.of_int 0x020000000001) };
         actions = [ OF.Action.Output (OF.Action.Controller 0) ];
         priority = 0x8000 });
  print_string (Y.Yanc_fs.tree yfs)

(* ================================================================== *)

(* ABL3 — granularity of reactive state: the paper's router installs
   exact-match flows (one per connection 5-tuple); a learning switch
   installs per-destination-MAC flows. Hardware table footprint after
   the same traffic. *)
let ablation_reactive_granularity () =
  section
    "ABL3 reactive state: exact-match router vs per-MAC learning switch";
  row "  %-18s | %14s | %16s\n" "application" "hw flow entries"
    "per host-pair conv.";
  let run_app make_app =
    let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
    let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
    Yanc.Controller.attach_switches ctl;
    make_app ctl;
    Yanc.Controller.run_for ctl 3.0;
    (* h1 talks to h2 on several TCP ports plus a ping *)
    let net = built.N.Topo_gen.net in
    let h1 = Option.get (N.Network.host net "h1") in
    let h2 = Option.get (N.Network.host net "h2") in
    List.iter (N.Sim_host.listen h2) [ 80; 443; 22 ];
    N.Network.send_from_host net "h1"
      (N.Sim_host.ping h1 ~now:(N.Network.now net) ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
    ignore
      (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ping_results h1 <> []));
    List.iteri
      (fun i port ->
        let dst_mac = N.Topo_gen.host_mac 2 in
        N.Network.send_from_host net "h1"
          [ N.Sim_host.tcp_connect h1 ~dst_ip:(N.Topo_gen.host_ip 2) ~dst_mac
              ~src_port:(40000 + i) ~dst_port:port ];
        Yanc.Controller.run_for ctl 0.2)
      [ 80; 443; 22 ];
    let sw = Option.get (N.Network.switch net 1L) in
    match N.Sim_switch.table sw 0 with
    | Some t -> N.Flow_table.length t
    | None -> 0
  in
  let router_flows =
    run_app (fun ctl ->
        let yfs = Yanc.Controller.yfs ctl in
        Yanc.Controller.add_app ctl (Apps.Topology.app (Apps.Topology.create yfs));
        Yanc.Controller.add_app ctl (Apps.Router.app (Apps.Router.create yfs)))
  in
  let learner_flows =
    run_app (fun ctl ->
        Yanc.Controller.add_app ctl
          (Apps.Learning_switch.app
             (Apps.Learning_switch.create (Yanc.Controller.yfs ctl))))
  in
  row "  %-18s | %14d | %16s\n" "router (exact)" router_flows "grows per flow";
  row "  %-18s | %14d | %16s\n" "learning (per-MAC)" learner_flows "constant";
  row "  (same traffic: 1 ping + 3 TCP connections between one host pair)\n"

(* EXT1 — QoS queues (a feature the paper's prototype lists as missing):
   offered load vs delivered rate through a token-bucket queue. *)
let ext_qos () =
  section "EXT1 QoS queues: delivered rate vs configured limit (beyond the paper's prototype)";
  row "  %10s | %12s | %14s | %10s\n" "rate Mbps" "offered MB/s" "delivered MB/s"
    "drop rate";
  List.iter
    (fun rate_mbps ->
      let s = N.Sim_switch.create ~n_ports:2 ~dpid:1L () in
      N.Sim_switch.add_queue s ~port:2 ~queue_id:1 ~rate_mbps;
      (match
         N.Sim_switch.flow_add s ~now:0. ~of_match:OF.Of_match.any ~priority:1
           ~actions:[ OF.Action.Enqueue { port = 2; queue_id = 1 } ] ()
       with
      | Ok () -> ()
      | Error e -> failwith e);
      (* offer 50 MB over one simulated second, in 1500-byte frames *)
      let frame_bytes = 1500 in
      let frames = 50_000_000 / frame_bytes in
      let frame =
        P.Eth.make ~src:(P.Mac.of_int 1) ~dst:(P.Mac.of_int 2)
          (P.Eth.Raw (0x9999, String.make (frame_bytes - 16) 'x'))
      in
      let delivered = ref 0 in
      for i = 0 to frames - 1 do
        let now = float_of_int i /. float_of_int frames in
        match N.Sim_switch.receive_frame s ~now ~in_port:1 frame with
        | [ N.Sim_switch.Transmit _ ] -> incr delivered
        | _ -> ()
      done;
      let delivered_mb =
        float_of_int (!delivered * frame_bytes) /. 1_000_000.
      in
      row "  %10d | %12.1f | %14.2f | %9.1f%%\n" rate_mbps 50.0 delivered_mb
        (100. *. float_of_int (frames - !delivered) /. float_of_int frames))
    [ 1; 10; 100 ]

(* ================================================================== *)
(* E13 — the VFS dentry/attribute cache: every yanc operation is a path
   lookup, so the OS trick of caching resolved paths (Linux's dcache)
   applies directly. Cold vs warm component walks, the whole-stack
   effect on a fastpath flow push, and what rename churn costs. *)
(* ================================================================== *)

let e13_dcache () =
  let pa = Vfs.Path.of_string_exn in
  section "E13a dcache: component walks per lookup, cold vs warm";
  row "  %6s | %15s | %20s | %6s\n" "depth" "cold components"
    "warm components/call" "ratio";
  List.iter
    (fun depth ->
      let fs = Fs.create () in
      let rec build path i =
        if i > depth then path
        else begin
          let path = Vfs.Path.child path (Printf.sprintf "d%d" i) in
          ignore (Fs.mkdir fs ~cred path);
          build path (i + 1)
        end
      in
      let file = Vfs.Path.child (build Vfs.Path.root 1) "f" in
      ignore (Fs.write_file fs ~cred file "x");
      let cost = Fs.cost fs in
      Vfs.Cost.reset cost;
      ignore (Fs.read_file fs ~cred file);
      let cold = Vfs.Cost.components cost in
      let warm_calls = 100 in
      Vfs.Cost.reset cost;
      for _ = 1 to warm_calls do
        ignore (Fs.read_file fs ~cred file)
      done;
      let warm =
        float_of_int (Vfs.Cost.components cost) /. float_of_int warm_calls
      in
      row "  %6d | %15d | %20.2f | %5.0fx\n" depth cold warm
        (float_of_int cold /. Float.max warm 0.01))
    [ 2; 4; 8; 16 ];
  (* whole-stack effect: a fastpath batch is hundreds of lookups under
     one crossing, so the cache shows up in walked components *)
  section "E13b flow push (fastpath batch of 200): dcache on vs off";
  let components_with enabled =
    let fs, yfs = fresh_yancfs () in
    Fs.set_dcache_enabled fs enabled;
    let fp = Libyanc.Fastpath.create yfs in
    let cost = Fs.cost fs in
    Vfs.Cost.reset cost;
    ignore
      (Libyanc.Fastpath.push_flows fp
         (List.init 200 (fun i -> "sw1", Printf.sprintf "f%d" i, sample_flow i)));
    Vfs.Cost.components cost
  in
  let off = components_with false in
  let on = components_with true in
  row "  components walked: %6d (cache off) | %6d (cache on) | %.1fx fewer\n"
    off on
    (float_of_int off /. float_of_int (max 1 on));
  (* rename churn: a moving namespace pays invalidations and re-walks *)
  section "E13c rename churn: cache hit rate under namespace motion";
  let fs = Fs.create () in
  ignore (Fs.mkdir_p fs ~cred (pa "/app/cfg"));
  ignore (Fs.write_file fs ~cred (pa "/app/cfg/f") "x");
  let cost = Fs.cost fs in
  let churn renames_per_lookup lookups =
    Vfs.Cost.reset cost;
    for i = 1 to lookups do
      if renames_per_lookup > 0 && i mod renames_per_lookup = 0 then begin
        ignore (Fs.rename fs ~cred ~src:(pa "/app") ~dst:(pa "/app2"));
        ignore (Fs.rename fs ~cred ~src:(pa "/app2") ~dst:(pa "/app"))
      end;
      ignore (Fs.read_file fs ~cred (pa "/app/cfg/f"))
    done;
    ( Vfs.Cost.dentry_hits cost,
      Vfs.Cost.dentry_misses cost,
      Vfs.Cost.invalidations cost )
  in
  row "  %22s | %8s | %8s | %13s\n" "workload (1000 lookups)" "hits" "misses"
    "invalidations";
  List.iter
    (fun (label, per) ->
      let hits, misses, inv = churn per 1000 in
      row "  %22s | %8d | %8d | %13d\n" label hits misses inv)
    [ "no renames", 0; "rename every 100", 100; "rename every 10", 10 ]

(* ================================================================== *)
(* E14 — event routing under fan-out: N watching apps x M switches.
   yanc's application model is event-driven through fsnotify (paper
   5.2), so write->notify dispatch is the control plane's fan-out hot
   path. The routing index (hash + trie) replaces the per-mutation
   linear watch scan; this measures watches visited per mutation and
   wall time, indexed vs the retained linear reference, under a
   flow-mod storm plus port-status churn. *)
(* ================================================================== *)

let e14_sw i ~switches =
  Y.Yanc_fs.switch_name_of_dpid (Int64.of_int ((i mod switches) + 1))

(* N apps, each holding a recursive watch on "its" switch's flow tree,
   an exact watch on the switches directory (switch_watcher-style), and
   a recursive watch on its ports directory. *)
let e14_world ~backend ~apps ~switches () =
  let fs, yfs = fresh_yancfs ~switches () in
  let notifiers =
    List.init apps (fun i ->
        let n = Fsnotify.Notifier.create ~backend fs in
        let sw = e14_sw i ~switches in
        ignore
          (Fsnotify.Notifier.add_watch ~recursive:true n
             (Y.Layout.flows_dir ~root:net_root sw)
             Fsnotify.Notifier.all);
        ignore
          (Fsnotify.Notifier.add_watch n
             (Y.Layout.switches_dir ~root:net_root)
             (Fsnotify.Notifier.mask Fsnotify.Event.[ Created; Deleted ]));
        ignore
          (Fsnotify.Notifier.add_watch ~recursive:true n
             (Y.Layout.ports_dir ~root:net_root sw)
             (Fsnotify.Notifier.mask
                Fsnotify.Event.[ Created; Modified; Attrib ]));
        n)
  in
  fs, yfs, notifiers

(* Flow-mod storm + counter refreshes + port churn; returns how many
   VFS mutations the storm produced (counted by a subscriber, the same
   stream the notifiers route). *)
let e14_storm fs yfs ~switches ~rounds ~drain_every notifiers =
  let muts = ref 0 in
  let hook = Fs.subscribe fs (fun _ -> incr muts) in
  for r = 1 to rounds do
    for s = 1 to switches do
      let sw = Y.Yanc_fs.switch_name_of_dpid (Int64.of_int s) in
      let name = Printf.sprintf "e14r%d" r in
      ignore
        (Y.Yanc_fs.create_flow yfs ~cred ~switch:sw ~name (sample_flow (r + s)));
      ignore
        (Y.Flowdir.write_counters fs ~cred
           (Y.Layout.flow ~root:net_root ~switch:sw name)
           ~packets:(Int64.of_int r) ~bytes:(Int64.of_int (r * 64))
           ~duration_s:r);
      ignore
        (Y.Yanc_fs.set_port yfs ~switch:sw
           (OF.Of_types.Port_info.make ~port_no:1 ~hw_addr:(P.Mac.of_int s) ()))
    done;
    if r mod drain_every = 0 then
      List.iter
        (fun n -> ignore (Fsnotify.Notifier.read_events ~max:4096 n))
        notifiers
  done;
  Fs.unsubscribe fs hook;
  List.iter (fun n -> ignore (Fsnotify.Notifier.read_events n)) notifiers;
  !muts

let e14_run ~backend ~apps ~switches ~rounds =
  let fs, yfs, notifiers = e14_world ~backend ~apps ~switches () in
  let cost = Fs.cost fs in
  Vfs.Cost.reset cost;
  let muts = e14_storm fs yfs ~switches ~rounds ~drain_every:5 notifiers in
  let visited = Vfs.Cost.watches_visited cost in
  let dispatched = Vfs.Cost.events_dispatched cost in
  let coalesced = Vfs.Cost.events_coalesced cost in
  List.iter Fsnotify.Notifier.close notifiers;
  muts, visited, dispatched, coalesced

let e14_routing () =
  section
    "E14a event routing fan-out: watches visited per mutation, indexed vs \
     linear";
  row "  %4s x %-4s | %6s | %12s | %12s | %7s | %10s | %9s\n" "apps" "sw"
    "muts" "linear v/mut" "indexed v/mut" "ratio" "dispatched" "coalesced";
  List.iter
    (fun (apps, switches) ->
      let muts_l, vis_l, _, _ =
        e14_run ~backend:Fsnotify.Notifier.Linear ~apps ~switches ~rounds:20
      in
      let muts_i, vis_i, disp, coal =
        e14_run ~backend:Fsnotify.Notifier.Indexed ~apps ~switches ~rounds:20
      in
      row "  %4d x %-4d | %6d | %12.1f | %12.1f | %6.1fx | %10d | %9d\n" apps
        switches muts_i
        (float_of_int vis_l /. float_of_int (max 1 muts_l))
        (float_of_int vis_i /. float_of_int (max 1 muts_i))
        (float_of_int vis_l /. float_of_int (max 1 vis_i))
        disp coal)
    [ 8, 8; 32, 16; 128, 32 ]

(* E14b — wall-clock for the same contrast: one committed-version write
   routed to 64 apps' watches. *)
let e14_walltime () =
  section
    "E14b wall time per routed version write: indexed vs linear (64 apps x \
     16 switches)";
  let mk backend =
    let fs, yfs, notifiers = e14_world ~backend ~apps:64 ~switches:16 () in
    for s = 1 to 16 do
      ignore
        (Y.Yanc_fs.create_flow yfs ~cred
           ~switch:(Y.Yanc_fs.switch_name_of_dpid (Int64.of_int s))
           ~name:"f" (sample_flow s))
    done;
    List.iter (fun n -> ignore (Fsnotify.Notifier.read_events n)) notifiers;
    let i = ref 0 in
    fun () ->
      incr i;
      let sw = e14_sw !i ~switches:16 in
      ignore
        (Fs.write_file fs ~cred
           (Vfs.Path.child (Y.Layout.flow ~root:net_root ~switch:sw "f")
              "version")
           (string_of_int !i));
      if !i mod 256 = 0 then
        List.iter
          (fun n -> ignore (Fsnotify.Notifier.read_events n))
          notifiers
  in
  print_benchmarks "e14b"
    (run_benchmarks
       [ test "route_version_write/indexed" (mk Fsnotify.Notifier.Indexed);
         test "route_version_write/linear" (mk Fsnotify.Notifier.Linear) ])

(* E13d — wall-clock for the same contrast. *)
let e13_walltime () =
  section "E13d wall time per warm lookup: dcache on vs off";
  let fs_on = Fs.create () in
  let fs_off = Fs.create () in
  Fs.set_dcache_enabled fs_off false;
  let file = Vfs.Path.of_string_exn "/d1/d2/d3/d4/f" in
  List.iter
    (fun fs ->
      ignore (Fs.mkdir_p fs ~cred (Vfs.Path.of_string_exn "/d1/d2/d3/d4"));
      ignore (Fs.write_file fs ~cred file "x"))
    [ fs_on; fs_off ];
  print_benchmarks "e13d"
    (run_benchmarks
       [ test "lookup/dcache_on" (fun () ->
             ignore (Fs.read_file fs_on ~cred file));
         test "lookup/dcache_off" (fun () ->
             ignore (Fs.read_file fs_off ~cred file)) ])

(* ================================================================== *)
(* E16 — the telemetry layer: per-stage packet-in latency from the span
   tracer, and what the tracing instrumentation itself costs. *)
(* ================================================================== *)

(* A reactive workload that exercises the whole traced pipeline:
   discovery, then a ping sweep from h1 so the router keeps installing
   fresh paths (each one: packet-in -> wake -> app -> flow write ->
   flow-mod -> install). Returns the controller and the host wall time. *)
let e16_workload ?telemetry ?tuning ~pings () =
  let built = N.Topo_gen.linear 4 in
  let ctl =
    Yanc.Controller.create ?telemetry ?tuning ~net:built.N.Topo_gen.net ()
  in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.add_app ctl (Apps.Topology.app (Apps.Topology.create yfs));
  Yanc.Controller.add_app ctl (Apps.Router.app (Apps.Router.create yfs));
  let t0 = Sys.time () in
  Yanc.Controller.run_for ctl 3.0;
  let net = built.N.Topo_gen.net in
  let h1 = Option.get (N.Network.host net "h1") in
  for seq = 1 to pings do
    (* alternate destinations so paths keep being (re)installed *)
    let dst = 2 + (seq mod 3) in
    N.Network.send_from_host net "h1"
      (N.Sim_host.ping h1 ~now:(N.Network.now net)
         ~dst:(N.Topo_gen.host_ip dst) ~seq);
    ignore
      (Yanc.Controller.run_until ~tick:0.002 ctl (fun () ->
           List.length (N.Sim_host.ping_results h1) >= seq))
  done;
  ctl, Sys.time () -. t0

let e16_tracing () =
  section
    "E16a span tracer: per-stage end-to-end latency of a packet-in (sim \
     clock)";
  let ctl, _ = e16_workload ~pings:12 () in
  let reg = Telemetry.registry (Yanc.Controller.telemetry ctl) in
  row "  %-20s | %8s | %10s | %10s | %10s\n" "stage" "spans" "p50 ms"
    "p99 ms" "max ms";
  List.iter
    (fun (name, h) ->
      if String.length name > 6 && String.sub name 0 6 = "trace." then
        row "  %-20s | %8d | %10.4f | %10.4f | %10.4f\n"
          (String.sub name 6 (String.length name - 6))
          (Telemetry.Registry.hist_count h)
          (Telemetry.Registry.percentile h 0.5 *. 1e3)
          (Telemetry.Registry.percentile h 0.99 *. 1e3)
          (Telemetry.Registry.hist_max h *. 1e3))
    (Telemetry.Registry.histograms reg);
  row
    "  (0.0000 = the stage finished in the same controller step that \
     admitted the packet-in:\n\
    \   the control loop runs below the scheduler quantum, so the sim clock \
     never advances mid-trace)\n";
  section "E16b tracing overhead: the same reactive sweep, tracer on vs off";
  let best f =
    let m = ref infinity in
    for _ = 1 to 3 do
      let _, w = f () in
      if w < !m then m := w
    done;
    !m
  in
  let off =
    best (fun () ->
        e16_workload ~telemetry:(Telemetry.create ~tracing:false ()) ~pings:12 ())
  in
  let on = best (fun () -> e16_workload ~pings:12 ()) in
  row "  tracer off %.4fs, on %.4fs (%+.1f%%)\n" off on
    ((on -. off) /. off *. 100.)

(* ================================================================== *)
(* E17 — control-channel survival: flow-install recovery latency and
   resync cost after every control channel is severed at once, plus the
   steady-state cost of the keepalive machinery when nothing is wrong. *)
(* ================================================================== *)

let e17_tuning ~keepalive =
  { Driver.Driver_intf.default_tuning with
    Driver.Driver_intf.keepalive_interval = (if keepalive then 0.25 else 0.);
    liveness_timeout = 0.75;
    backoff_base = 0.05;
    backoff_cap = 0.5 }

(* A booted controller with [rules] committed flows per switch, all
   installed and in sync. *)
let e17_rig ?(keepalive = true) ~switches ~rules () =
  let built = N.Topo_gen.linear ~hosts_per_switch:1 switches in
  let ctl =
    Yanc.Controller.create ~tuning:(e17_tuning ~keepalive) ~seed:0xE17
      ~net:built.N.Topo_gen.net ()
  in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  let mgr = Yanc.Controller.manager ctl in
  Yanc.Controller.run_for ~tick:0.05 ctl 0.5;
  List.iteri
    (fun i dpid ->
      let name = Option.get (Driver.Manager.switch_name mgr ~dpid) in
      for j = 0 to rules - 1 do
        ignore
          (Y.Yanc_fs.create_flow yfs ~cred ~switch:name
             ~name:(Printf.sprintf "r%d" j)
             { Y.Flowdir.default with
               Y.Flowdir.of_match =
                 { OF.Of_match.any with
                   OF.Of_match.tp_dst = Some (1024 + (rules * i) + j) };
               actions = [ OF.Action.Output (OF.Action.Physical 1) ];
               priority = 100 + j })
      done)
    (Driver.Manager.attached mgr);
  Yanc.Controller.run_for ~tick:0.05 ctl 0.5;
  ctl, mgr

let e17_total_bytes mgr =
  List.fold_left
    (fun acc dpid ->
      match Driver.Manager.channel mgr ~dpid with
      | Some (sw_end, ctl_end) ->
        acc
        + N.Control_channel.bytes_sent sw_end
        + N.Control_channel.bytes_sent ctl_end
      | None -> acc)
    0 (Driver.Manager.attached mgr)

let e17_sum_counters mgr f =
  List.fold_left
    (fun acc dpid ->
      match Driver.Manager.link_counters mgr ~dpid with
      | Some c -> acc + f c
      | None -> acc)
    0 (Driver.Manager.attached mgr)

(* Sever every control channel, then change the committed state while
   the switches are unreachable (one rule deleted, one added per
   switch). Recovery = every driver reconnected + resynced AND the rule
   committed during the outage actually installed — i.e. the
   fs-write -> flow-install pipeline works again end to end. Returns
   (completed, sim recovery latency, wall seconds, control bytes). *)
let e17_recover ctl mgr =
  let yfs = Yanc.Controller.yfs ctl in
  let dpids = Driver.Manager.attached mgr in
  List.iter
    (fun dpid ->
      let _sw_end, ctl_end = Option.get (Driver.Manager.channel mgr ~dpid) in
      N.Control_channel.disconnect ctl_end)
    dpids;
  List.iteri
    (fun i dpid ->
      let name = Option.get (Driver.Manager.switch_name mgr ~dpid) in
      ignore (Y.Yanc_fs.delete_flow yfs ~cred ~switch:name "r0");
      ignore
        (Y.Yanc_fs.create_flow yfs ~cred ~switch:name ~name:"outage"
           { Y.Flowdir.default with
             Y.Flowdir.of_match =
               { OF.Of_match.any with OF.Of_match.tp_dst = Some (30000 + i) };
             actions = [ OF.Action.Output (OF.Action.Physical 1) ];
             priority = 999 }))
    dpids;
  let bytes0 = e17_total_bytes mgr in
  let t0 = Yanc.Controller.now ctl in
  let w0 = Sys.time () in
  let installed dpid =
    let sw = Option.get (N.Network.switch (Yanc.Controller.net ctl) dpid) in
    List.exists
      (fun ((_, e) : int * N.Flow_table.entry) -> e.N.Flow_table.priority = 999)
      (N.Sim_switch.flow_stats sw ~now:(Yanc.Controller.now ctl)
         ~of_match:OF.Of_match.any ())
  in
  let ok =
    Yanc.Controller.run_until ~tick:0.02 ~timeout:60. ctl (fun () ->
        List.for_all
          (fun (_, st) -> st = Driver.Driver_intf.Connected)
          (Driver.Manager.statuses mgr)
        && List.for_all
             (fun dpid ->
               (match Driver.Manager.link_counters mgr ~dpid with
               | Some c -> c.Driver.Driver_intf.resyncs >= 1
               | None -> false)
               && installed dpid)
             dpids)
  in
  (ok, Yanc.Controller.now ctl -. t0, Sys.time () -. w0,
   e17_total_bytes mgr - bytes0)

let e17_recovery () =
  section
    "E17a flow-install recovery after severing every control channel \
     (rules changed mid-outage)";
  row "  %8s | %8s | %14s | %8s | %10s | %8s\n" "switches" "rules"
    "recovery sim s" "wall s" "resync ops" "ctl KiB";
  List.iter
    (fun switches ->
      let rules = 4 in
      let ctl, mgr = e17_rig ~switches ~rules () in
      let ok, sim_s, wall, bytes = e17_recover ctl mgr in
      let ops =
        e17_sum_counters mgr (fun c -> c.Driver.Driver_intf.resync_installs)
        + e17_sum_counters mgr (fun c -> c.Driver.Driver_intf.resync_deletes)
      in
      row "  %8d | %8d | %12.3f%s | %8.3f | %10d | %8.1f\n" switches rules
        sim_s
        (if ok then "  " else " !")
        wall ops
        (float_of_int bytes /. 1024.))
    [ 8; 64 ];
  section
    "E17b keepalive steady-state cost: the E16 reactive sweep, keepalives on \
     (default 1s echo) vs off";
  let no_keepalive =
    { Driver.Driver_intf.default_tuning with
      Driver.Driver_intf.keepalive_interval = 0. }
  in
  let best f =
    let m = ref infinity in
    for _ = 1 to 3 do
      let _, w = f () in
      if w < !m then m := w
    done;
    !m
  in
  let off = best (fun () -> e16_workload ~tuning:no_keepalive ~pings:12 ()) in
  let on = best (fun () -> e16_workload ~pings:12 ()) in
  row "  keepalives off %.4fs, on %.4fs (%+.1f%%)\n" off on
    ((on -. off) /. off *. 100.)

(* ================================================================== *)
(* E18 — the dirty-flow commit queue: per-commit driver cost vs table
   size. The claim: a flow-dir mutation costs O(dirty) work at the
   driver — read and program only the touched entries — with the
   full-reconcile scan reserved for cold handshakes and notify
   overflow. So latency and kernel crossings per commit must stay flat
   as the committed table grows 1k -> 100k, and a burst of writes to
   one flow must coalesce into a single flow_mod. Supersedes E3's
   honest cost (commit latency grew with table size there). *)
(* ================================================================== *)

(* Distinct rule identities well past the 16-bit tp_dst space. *)
let e18_flow i =
  { Y.Flowdir.default with
    Y.Flowdir.of_match =
      { OF.Of_match.any with
        OF.Of_match.dl_type = Some 0x0800;
        nw_dst =
          Some
            (P.Ipv4_addr.Prefix.make
               (P.Ipv4_addr.of_int32 (Int32.of_int (0x0a000000 lor i)))
               32);
        tp_dst = Some (i land 0xffff) };
    actions = [ OF.Action.Output (OF.Action.Physical 1) ];
    priority = 100 }

let e18_name i = Printf.sprintf "f%d" i

(* A handshaken 1-switch rig grown to [flows] committed-and-installed
   entries. Growth goes through the real pipeline in chunks sized to
   the notifier queue (the Classifier table keeps hardware adds cheap
   at this scale). *)
let e18_rig ~flows () =
  let built =
    N.Topo_gen.linear ~hosts_per_switch:1
      ~strategy:N.Flow_table.Classifier 1
  in
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  let mgr = Driver.Manager.create ~yfs ~net:built.N.Topo_gen.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  let i = ref 0 in
  while !i < flows do
    let stop = min flows (!i + 512) in
    while !i < stop do
      incr i;
      ignore
        (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1" ~name:(e18_name !i)
           (e18_flow !i))
    done;
    Driver.Manager.run_control mgr ~now:1.
  done;
  Driver.Manager.run_control mgr ~now:1.;
  let sw = Option.get (N.Network.switch built.N.Topo_gen.net 1L) in
  let installed =
    match N.Sim_switch.table sw 0 with
    | Some t -> N.Flow_table.length t
    | None -> 0
  in
  if installed <> flows then
    Printf.printf "  (warning: %d/%d entries installed)\n" installed flows;
  yfs, mgr

let e18_counter yfs name =
  Telemetry.Registry.value
    (Telemetry.Registry.counter
       (Telemetry.registry (Y.Yanc_fs.telemetry yfs))
       name)

(* [rounds] x: touch [dirty] flows (action rewrite, identity kept),
   one control-loop turn. Returns (crossings per round, batches,
   flushed keys) — crossings are the deterministic cost counter, so
   the O(dirty) shape is visible without wall-clock noise. *)
let e18_commit_rounds yfs mgr ~dirty ~rounds =
  let fs = Y.Yanc_fs.fs yfs in
  let cost = Fs.cost fs in
  let batches0 = e18_counter yfs "driver.commit.batches" in
  let keys0 = e18_counter yfs "driver.commit.keys" in
  let c0 = Vfs.Cost.crossings cost in
  let t0 = Sys.time () in
  for r = 1 to rounds do
    for j = 1 to dirty do
      ignore
        (Y.Flowdir.update fs ~cred
           (Y.Layout.flow ~root:net_root ~switch:"sw1" (e18_name j))
           (fun f ->
             { f with
               Y.Flowdir.actions =
                 [ OF.Action.Output (OF.Action.Physical ((r mod 4) + 1)) ] }))
    done;
    Driver.Manager.run_control mgr ~now:1.
  done;
  let wall = (Sys.time () -. t0) /. float_of_int rounds in
  ( (Vfs.Cost.crossings cost - c0) / rounds,
    wall,
    e18_counter yfs "driver.commit.batches" - batches0,
    e18_counter yfs "driver.commit.keys" - keys0 )

let e18_commit_queue () =
  section
    "E18a incremental commits: per-commit cost vs committed table size \
     (supersedes E3)";
  row "  %8s | %6s | %14s | %16s | %12s | %11s\n" "flows" "dirty"
    "crossings/rnd" "crossings/dirty" "wall/round" "wall/dirty";
  List.iter
    (fun flows ->
      let yfs, mgr = e18_rig ~flows () in
      let dirty = 64 in
      (* Wall time covers the steady-state rounds only (the histogram
         also holds the rig-growth batches, which are a different
         workload: 1024-key flushes instead of 64). *)
      let crossings, wall, _, _ = e18_commit_rounds yfs mgr ~dirty ~rounds:12 in
      row "  %8d | %6d | %14d | %16.1f | %9.2f ms | %8.1f us\n" flows dirty
        crossings
        (float_of_int crossings /. float_of_int dirty)
        (wall *. 1e3)
        (wall /. float_of_int dirty *. 1e6))
    [ 1_000; 10_000; 100_000 ];
  section "E18b write-burst coalescing: N version bumps on one flow, one tick";
  row "  %8s | %8s | %10s | %10s | %9s\n" "bumps" "marked" "coalesced"
    "flow_mods" "ratio";
  let yfs, mgr = e18_rig ~flows:256 () in
  let fs = Y.Yanc_fs.fs yfs in
  List.iter
    (fun bumps ->
      let coal0 = e18_counter yfs "driver.commit.coalesced" in
      let adds0 = e18_counter yfs "driver.commit.adds" in
      for b = 1 to bumps do
        ignore
          (Y.Flowdir.update fs ~cred
             (Y.Layout.flow ~root:net_root ~switch:"sw1" (e18_name 1))
             (fun f ->
               { f with
                 Y.Flowdir.actions =
                   [ OF.Action.Output (OF.Action.Physical ((b mod 4) + 1)) ] }))
      done;
      Driver.Manager.run_control mgr ~now:1.;
      let coalesced = e18_counter yfs "driver.commit.coalesced" - coal0 in
      let mods = e18_counter yfs "driver.commit.adds" - adds0 in
      row "  %8d | %8d | %10d | %10d | %8.0fx\n" bumps bumps coalesced mods
        (float_of_int bumps /. float_of_int (max 1 mods)))
    [ 8; 64; 512 ]

(* ================================================================== *)
(* E19 — datacenter-scale packet-in storms: fat-tree fleets, a seeded
   heavy-tailed workload, ECMP routing, and the pooled ring fast path
   against the event-directory baseline (paper §8.1 at fleet scale). *)
(* ================================================================== *)

(* Periodic stats polls off: a storm measures the packet-in path, not
   the counter refresh. *)
let e19_tuning =
  { Driver.Driver_intf.default_tuning with
    Driver.Driver_intf.stats_interval = 0. }

let e19_counter ctl name =
  let reg = Telemetry.registry (Yanc.Controller.telemetry ctl) in
  Telemetry.Registry.value (Telemetry.Registry.counter reg name)

(* Provision the fabric inventory straight into the FS: peer symlinks
   for every inter-switch link, /net/hosts entries with attachment
   points. A topology daemon would discover the same facts with
   O(links) LLDP probes; pre-provisioning keeps discovery out of the
   measurement, as a datacenter's inventory system would. *)
let e19_provision yfs (built : N.Topo_gen.built) =
  let sw = Y.Yanc_fs.switch_name_of_dpid in
  List.iter
    (fun (a, b) ->
      match (a, b) with
      | N.Network.Sw (d1, p1), N.Network.Sw (d2, p2) ->
        ignore
          (Y.Yanc_fs.set_peer yfs ~cred ~switch:(sw d1) ~port:p1
             ~peer:(Some (sw d2, p2)));
        ignore
          (Y.Yanc_fs.set_peer yfs ~cred ~switch:(sw d2) ~port:p2
             ~peer:(Some (sw d1, p1)))
      | N.Network.Sw (d, p), N.Network.Hst h
      | N.Network.Hst h, N.Network.Sw (d, p) ->
        let i = int_of_string (String.sub h 1 (String.length h - 1)) in
        ignore
          (Y.Yanc_fs.upsert_host yfs ~cred ~name:h ~mac:(N.Topo_gen.host_mac i)
             ~ip:(Some (N.Topo_gen.host_ip i)) ~attached_to:(sw d, p) ())
      | N.Network.Hst _, N.Network.Hst _ -> ())
    (N.Network.link_endpoints built.N.Topo_gen.net)

let e19_rig ?(delivery = Apps.Ecmp_router.Ring) ~k () =
  let built = N.Topo_gen.fat_tree ~k () in
  let ctl =
    Yanc.Controller.create ~tuning:e19_tuning ~net:built.N.Topo_gen.net ()
  in
  Yanc.Controller.attach_switches ctl;
  (* complete every handshake (port dirs must exist before set_peer) *)
  Yanc.Controller.run_for ctl 0.6;
  let yfs = Yanc.Controller.yfs ctl in
  e19_provision yfs built;
  let app = Apps.Ecmp_router.create ~delivery yfs in
  Yanc.Controller.add_app ctl (Apps.Ecmp_router.app app);
  (built, ctl, app)

(* Drive the storm off the sim clock: inject every arrival due by now,
   run one controller round, advance idle time only when the data plane
   is quiet (natural backpressure — sim time stalls while the controller
   catches up). A short quiet tail lets in-flight packet-ins route. *)
let e19_drive ?(tick = 0.005) ctl wl ~arrivals =
  let net = Yanc.Controller.net ctl in
  let injected = ref 0 in
  while !injected < arrivals do
    injected :=
      !injected + N.Workload.inject_until wl ~net ~upto:(N.Network.now net);
    Yanc.Controller.step ctl;
    N.Network.run net;
    if N.Network.pending_events net = 0 then N.Network.advance_idle net tick
  done;
  Yanc.Controller.run_for ~tick ctl (tick *. 50.);
  !injected

type e19_out = {
  o_k : int;
  o_delivery : string;
  o_switches : int;
  o_hosts : int;
  o_arrivals : int;
  o_pktins : int;
  o_installs : int;
  o_sim_s : float;
  o_wall_s : float;
  o_p50 : float;            (* packet-in -> install, sim seconds *)
  o_p99 : float;
  o_p50_rounds : float;     (* packet-in -> install, control rounds *)
  o_p99_rounds : float;
  o_rounds_observed : int;  (* samples behind the rounds percentiles:
                               distinguishes a measured zero (install in
                               its arrival round) from missing data *)
  o_pool_allocated : int;
  o_pool_reused : int;
  o_ring_dropped : int;
  o_batch_count : int;
  o_batch_p50 : float;
  o_batch_max : float;
}

let e19_storm ?(delivery = Apps.Ecmp_router.Ring) ?(seed = 0xD47ACE)
    ?(rate = 2000.) ~arrivals ~k () =
  let built, ctl, _app = e19_rig ~delivery ~k () in
  let hosts = List.length built.N.Topo_gen.host_names in
  let profile = { N.Workload.default_profile with N.Workload.rate } in
  let wl =
    N.Workload.create ~profile ~start:(Yanc.Controller.now ctl) ~seed ~hosts ()
  in
  let net = Yanc.Controller.net ctl in
  let reg = Telemetry.registry (Yanc.Controller.telemetry ctl) in
  let install_h = Telemetry.Registry.histogram reg "trace.switch.install" in
  let rounds_h = Telemetry.Registry.histogram reg "rounds.switch.install" in
  let batch_h = Telemetry.Registry.histogram reg "driver.pktin.batch" in
  let installs0 = e19_counter ctl "driver.commit.adds" in
  let pktins0 = e19_counter ctl "driver.pktin.published" in
  let sim0 = N.Network.now net in
  let wall0 = Sys.time () in
  let injected = e19_drive ctl wl ~arrivals in
  let wall_s = Sys.time () -. wall0 in
  let ring = Y.Yanc_fs.pktin (Yanc.Controller.yfs ctl) in
  let pool = Y.Pktin.pool ring in
  { o_k = k;
    o_delivery =
      (match delivery with
      | Apps.Ecmp_router.Ring -> "ring"
      | Apps.Ecmp_router.Eventdir -> "eventdir");
    o_switches = List.length built.N.Topo_gen.dpids;
    o_hosts = hosts;
    o_arrivals = injected;
    o_pktins = e19_counter ctl "driver.pktin.published" - pktins0;
    o_installs = e19_counter ctl "driver.commit.adds" - installs0;
    o_sim_s = N.Network.now net -. sim0;
    o_wall_s = wall_s;
    o_p50 = Telemetry.Registry.percentile install_h 0.5;
    o_p99 = Telemetry.Registry.percentile install_h 0.99;
    o_p50_rounds = Telemetry.Registry.percentile rounds_h 0.5;
    o_p99_rounds = Telemetry.Registry.percentile rounds_h 0.99;
    o_rounds_observed = Telemetry.Registry.hist_count rounds_h;
    o_pool_allocated = N.Pool.allocated pool;
    o_pool_reused = N.Pool.reused pool;
    o_ring_dropped = Y.Pktin.dropped ring;
    o_batch_count = Telemetry.Registry.hist_count batch_h;
    o_batch_p50 = Telemetry.Registry.percentile batch_h 0.5;
    o_batch_max = Telemetry.Registry.hist_max batch_h }

let e19_rates r =
  let inst = float_of_int r.o_installs in
  (inst /. (if r.o_sim_s > 0. then r.o_sim_s else 1.),
   inst /. (if r.o_wall_s > 0. then r.o_wall_s else epsilon_float))

let e19_row r =
  let per_sim, per_wall = e19_rates r in
  row "  %4d | %-8s | %8d | %6d | %8d | %8d | %8d | %7.2f | %11.0f | %12.0f | %8.2f | %8.2f | %7.0f | %7.0f\n"
    r.o_k r.o_delivery r.o_switches r.o_hosts r.o_arrivals r.o_pktins
    r.o_installs r.o_wall_s per_sim per_wall (r.o_p50 *. 1000.)
    (r.o_p99 *. 1000.) r.o_p50_rounds r.o_p99_rounds

(* The §8.1 delivery-path comparison, isolated: the same packet-in
   stream handed to one application through the pooled ring vs through
   the per-event file directories, on a k=8 fleet's switch set. The
   end-to-end storm above is dominated by path installation (5 flow
   writes per arrival), which both modes share; this measures only the
   delivery mechanism the ring replaces. Returns
   (ring events/s, eventdir events/s, ring crossings, ed crossings). *)
let e19_delivery ?(events = 10_000) ?(switches = 80) () =
  let payload = String.make 64 '\x2a' in
  let sw i = Printf.sprintf "sw%d" ((i mod switches) + 1) in
  (* ring side: publish + batched drain *)
  let fs, yfs = fresh_yancfs ~switches () in
  let ring = Y.Yanc_fs.pktin yfs in
  let consumer = Y.Pktin.subscribe ring ~name:"bench" in
  let cost = Fs.cost fs in
  Vfs.Cost.reset cost;
  let handled = ref 0 in
  let t0 = Sys.time () in
  for i = 0 to events - 1 do
    ignore
      (Y.Pktin.publish ring ~switch:(sw i) ~in_port:1
         ~reason:OF.Of_types.No_match ~buffer_id:None ~total_len:64
         ~data:payload ~at:0.);
    if i mod 64 = 63 then
      handled := !handled + Y.Pktin.drain ring consumer ~max:64 (fun _ -> ())
  done;
  handled := !handled + Y.Pktin.drain ring consumer ~max:events (fun _ -> ());
  let ring_wall = Sys.time () -. t0 in
  let ring_crossings = Vfs.Cost.crossings cost in
  assert (!handled = events);
  (* eventdir side: the same stream through per-event files *)
  let fs2, _yfs2 = fresh_yancfs ~switches () in
  for i = 1 to switches do
    ignore
      (Y.Eventdir.subscribe fs2 ~cred ~root:net_root
         ~switch:(Printf.sprintf "sw%d" i) ~app:"bench")
  done;
  let cost2 = Fs.cost fs2 in
  Vfs.Cost.reset cost2;
  let consumed = ref 0 in
  let t1 = Sys.time () in
  for i = 0 to events - 1 do
    ignore
      (Y.Eventdir.publish fs2 ~root:net_root ~switch:(sw i) ~in_port:1
         ~reason:OF.Of_types.No_match ~buffer_id:None ~total_len:64
         ~data:payload);
    if i mod 64 = 63 then
      for s = 1 to switches do
        consumed :=
          !consumed
          + List.length
              (Y.Eventdir.consume fs2 ~cred ~root:net_root
                 ~switch:(Printf.sprintf "sw%d" s) ~app:"bench")
      done
  done;
  for s = 1 to switches do
    consumed :=
      !consumed
      + List.length
          (Y.Eventdir.consume fs2 ~cred ~root:net_root
             ~switch:(Printf.sprintf "sw%d" s) ~app:"bench")
  done;
  let ed_wall = Sys.time () -. t1 in
  let ed_crossings = Vfs.Cost.crossings cost2 in
  assert (!consumed = events);
  ( float_of_int events /. (if ring_wall > 0. then ring_wall else epsilon_float),
    float_of_int events /. (if ed_wall > 0. then ed_wall else epsilon_float),
    float_of_int ring_crossings /. float_of_int events,
    float_of_int ed_crossings /. float_of_int events )

let e19_json_of path ~seed ~tick series baseline delivery =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"bench\": \"e19_scale_storm\",\n";
  out "  \"generated_by\": \"dune exec bench/main.exe -- e19 --json\",\n";
  out "  \"seed\": %d,\n" seed;
  out "  \"tick_s\": %g,\n" tick;
  out "  \"series\": [\n";
  List.iteri
    (fun i r ->
      let per_sim, per_wall = e19_rates r in
      out "    { \"k\": %d, \"delivery\": %S, \"switches\": %d, \"hosts\": %d,\n"
        r.o_k r.o_delivery r.o_switches r.o_hosts;
      out "      \"arrivals\": %d, \"packet_ins\": %d, \"installs\": %d,\n"
        r.o_arrivals r.o_pktins r.o_installs;
      out "      \"sim_s\": %.6f, \"wall_s\": %.6f,\n" r.o_sim_s r.o_wall_s;
      out "      \"installs_per_sim_s\": %.1f, \"installs_per_wall_s\": %.1f,\n"
        per_sim per_wall;
      out "      \"install_p50_s\": %.6f, \"install_p99_s\": %.6f,\n" r.o_p50
        r.o_p99;
      out
        "      \"install_p50_rounds\": %.1f, \"install_p99_rounds\": %.1f, \
         \"install_rounds_observed\": %d,\n"
        r.o_p50_rounds r.o_p99_rounds r.o_rounds_observed;
      out "      \"pool_allocated\": %d, \"pool_reused\": %d, \"ring_dropped\": %d,\n"
        r.o_pool_allocated r.o_pool_reused r.o_ring_dropped;
      out "      \"batch_count\": %d, \"batch_p50\": %.1f, \"batch_max\": %.1f }%s\n"
        r.o_batch_count r.o_batch_p50 r.o_batch_max
        (if i = List.length series - 1 then "" else ","))
    series;
  out "  ],\n";
  (match baseline with
  | Some (ring_rate, ed_rate) ->
    out "  \"baseline_k8\": { \"ring_installs_per_wall_s\": %.1f, \
         \"eventdir_installs_per_wall_s\": %.1f, \"speedup\": %.2f },\n"
      ring_rate ed_rate (ring_rate /. ed_rate)
  | None -> out "  \"baseline_k8\": null,\n");
  let ring_eps, ed_eps, ring_x, ed_x = delivery in
  out "  \"delivery_k8\": { \"ring_events_per_s\": %.0f, \
       \"eventdir_events_per_s\": %.0f, \"speedup\": %.1f,\n"
    ring_eps ed_eps (ring_eps /. ed_eps);
  out "    \"ring_crossings_per_event\": %.2f, \
       \"eventdir_crossings_per_event\": %.2f }\n"
    ring_x ed_x;
  out "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  row "  wrote %s\n" path

let e19_scale ?(ks = [ 4; 8; 16 ]) ?(json = None) () =
  section
    "E19  datacenter storm: fat-tree fleet, ECMP, pooled ring vs eventdir";
  row "  %4s | %-8s | %8s | %6s | %8s | %8s | %8s | %7s | %11s | %12s | %8s | %8s | %7s | %7s\n"
    "k" "delivery" "switches" "hosts" "arrivals" "pktins" "installs" "wall s"
    "inst/sim s" "inst/wall s" "p50 ms" "p99 ms" "p50 rnd" "p99 rnd";
  let seed = 0xD47ACE in
  let tick = 0.005 in
  (* arrivals and rate scale with k so every fleet faces a storm
     proportional to its size (375*k arrivals at 500*k flows/s). *)
  let series =
    List.map
      (fun k ->
        let r = e19_storm ~seed ~rate:(500. *. float_of_int k)
            ~arrivals:(375 * k) ~k ()
        in
        e19_row r;
        r)
      ks
  in
  (* the §8.1 comparison: same k=8 storm through per-event files *)
  let ed8 =
    e19_storm ~delivery:Apps.Ecmp_router.Eventdir ~seed ~rate:4000.
      ~arrivals:3000 ~k:8 ()
  in
  e19_row ed8;
  let baseline =
    match List.find_opt (fun r -> r.o_k = 8) series with
    | Some ring8 ->
      let _, ring_rate = e19_rates ring8 in
      let _, ed_rate = e19_rates ed8 in
      row "  ring vs eventdir @k=8: %.0f vs %.0f installs/wall s (%.1fx)\n"
        ring_rate ed_rate (ring_rate /. ed_rate);
      Some (ring_rate, ed_rate)
    | None -> None
  in
  (match (List.find_opt (fun r -> r.o_k = List.hd ks) series,
          List.find_opt (fun r -> r.o_k = List.nth ks (List.length ks - 1))
            series) with
  | Some lo, Some hi when lo.o_k <> hi.o_k ->
    let _, lo_rate = e19_rates lo in
    let _, hi_rate = e19_rates hi in
    row "  degradation: %dx the switches costs %.1fx the wall throughput\n"
      (hi.o_switches / lo.o_switches)
      (lo_rate /. hi_rate)
  | _ -> ());
  let (ring_eps, ed_eps, ring_x, ed_x) as delivery = e19_delivery () in
  row "  delivery path alone @80 switches: ring %.0f events/s (%.2f \
       crossings/event), eventdir %.0f events/s (%.2f crossings/event) — \
       %.1fx\n"
    ring_eps ring_x ed_eps ed_x (ring_eps /. ed_eps);
  match json with
  | Some path -> e19_json_of path ~seed ~tick series baseline delivery
  | None -> ()

(* ================================================================== *)
(* E20 — sharded multi-node controller: N nodes over the DFS partition
   a fat-tree by rendezvous-hashed switch ownership (paper §6 at fleet
   scale). One process simulates the whole cluster, so aggregate
   throughput is judged against the critical path — max per-node busy
   seconds (own control loop + its replica's op-log replay) — since in
   the modeled deployment each node is its own machine. Takeover
   latency is sim time from kill to reconvergence (lease expiry +
   reconcile beat + attach resync). *)

let e20_rig ?(tracing = true) ?(n = 2) ?(k = 8) () =
  let built = N.Topo_gen.fat_tree ~k () in
  let c =
    Yanc.Cluster.create ~tracing ~tuning:e19_tuning ~n
      ~net:built.N.Topo_gen.net ()
  in
  (* boot: seeded leases, first reconcile beats attach every shard *)
  if not (Yanc.Cluster.run_until ~tick:0.01 c (fun () -> Yanc.Cluster.converged c))
  then failwith "e20: cluster failed to converge at boot";
  (* provision the fabric inventory once, via node 0's replica; peers
     and hosts are not shard-routed, so replication carries them to
     every node within the visibility window *)
  e19_provision (Yanc.Controller.yfs (Yanc.Cluster.controller c 0)) built;
  Yanc.Cluster.run_for ~tick:0.01 c 0.2;
  (* one ECMP router per node, tagged so path flows installed by
     different nodes on a shared switch never collide by name *)
  let idx = ref 0 in
  Yanc.Cluster.add_app c (fun ctl ->
      let tag = Printf.sprintf "-n%d" !idx in
      incr idx;
      Apps.Ecmp_router.app
        (Apps.Ecmp_router.create ~tag (Yanc.Controller.yfs ctl)));
  (built, c)

let e20_drive ?(tick = 0.005) c wl ~arrivals =
  let net = Yanc.Cluster.net c in
  let injected = ref 0 in
  while !injected < arrivals do
    injected :=
      !injected + N.Workload.inject_until wl ~net ~upto:(N.Network.now net);
    Yanc.Cluster.step ~tick c
  done;
  Yanc.Cluster.run_for ~tick c (tick *. 50.);
  !injected

type e20_out = {
  c_n : int;
  c_k : int;
  c_switches : int;
  c_arrivals : int;
  c_installs : int;
  c_sim_s : float;
  c_wall_s : float;
  c_max_busy_s : float;
  c_sum_busy_s : float;
  c_converged : bool;
  c_ops_synced : int;
  c_per_node : (string * int * int * float) list;
      (* name, switches owned, installs, busy_s *)
}

(* installs per critical-path second: total installs over the busiest
   node's CPU seconds — what the cluster sustains when each node runs
   on its own machine. *)
let e20_rate r =
  float_of_int r.c_installs
  /. (if r.c_max_busy_s > 0. then r.c_max_busy_s else epsilon_float)

let e20_storm ?(seed = 0xC1A57E) ?(rate = 4000.) ~arrivals ~n ~k () =
  let built, c = e20_rig ~n ~k () in
  let net = Yanc.Cluster.net c in
  let hosts = List.length built.N.Topo_gen.host_names in
  let profile = { N.Workload.default_profile with N.Workload.rate } in
  let wl =
    N.Workload.create ~profile ~start:(N.Network.now net) ~seed ~hosts ()
  in
  let installs0 = Yanc.Cluster.installs c in
  let node_installs0 =
    List.map (fun i -> Yanc.Cluster.node_installs c i)
      (Yanc.Cluster.live_indexes c)
  in
  let busy0 =
    List.map (fun i -> Yanc.Cluster.busy_s c i) (Yanc.Cluster.live_indexes c)
  in
  let sim0 = N.Network.now net in
  let wall0 = Sys.time () in
  let injected = e20_drive c wl ~arrivals in
  (* settle the replication tail so every install is attributed *)
  Yanc.Cluster.run_for ~tick:0.005 c 0.25;
  let wall_s = Sys.time () -. wall0 in
  let live = Yanc.Cluster.live_indexes c in
  let busy =
    List.map2
      (fun i b0 -> Yanc.Cluster.busy_s c i -. b0)
      live busy0
  in
  let per_node =
    List.map2
      (fun (i, b) i0 ->
        ( Yanc.Cluster.name_of c i,
          List.length
            (Driver.Manager.attached
               (Yanc.Controller.manager (Yanc.Cluster.controller c i))),
          Yanc.Cluster.node_installs c i - i0,
          b ))
      (List.combine live busy) node_installs0
  in
  { c_n = n;
    c_k = k;
    c_switches = List.length built.N.Topo_gen.dpids;
    c_arrivals = injected;
    c_installs = Yanc.Cluster.installs c - installs0;
    c_sim_s = N.Network.now net -. sim0;
    c_wall_s = wall_s;
    c_max_busy_s = List.fold_left max 0. busy;
    c_sum_busy_s = List.fold_left ( +. ) 0. busy;
    c_converged = Yanc.Cluster.converged c;
    c_ops_synced = Dfs.Cluster.ops_synced (Yanc.Cluster.dfs c);
    c_per_node = per_node }

(* Takeover: storm briefly so the fleet carries installed state, kill
   the highest-indexed [kill_count] nodes at once, and time the sim
   seconds until the survivors converge (every orphan re-owned,
   hardware ≡ filesystem). *)
let e20_takeover ?(seed = 0xFA110C) ?(kill_count = 1) ~n ~k () =
  let built, c = e20_rig ~n ~k () in
  let net = Yanc.Cluster.net c in
  let hosts = List.length built.N.Topo_gen.host_names in
  let profile = { N.Workload.default_profile with N.Workload.rate = 2000. } in
  let wl =
    N.Workload.create ~profile ~start:(N.Network.now net) ~seed ~hosts ()
  in
  ignore (e20_drive ~tick:0.01 c wl ~arrivals:(60 * n));
  if not (Yanc.Cluster.run_until ~tick:0.01 c (fun () -> Yanc.Cluster.converged c))
  then failwith "e20: cluster failed to converge before the kill";
  let victims = List.init kill_count (fun i -> n - 1 - i) in
  let orphans =
    List.filter
      (fun d ->
        match Yanc.Cluster.owner_index c d with
        | Some o -> List.mem o victims
        | None -> false)
      built.N.Topo_gen.dpids
  in
  let t0 = N.Network.now net in
  List.iter (Yanc.Cluster.kill c) victims;
  let ok =
    Yanc.Cluster.run_until ~tick:0.01 ~timeout:30. c (fun () ->
        Yanc.Cluster.converged c)
  in
  let latency = N.Network.now net -. t0 in
  let reclaimed =
    List.fold_left
      (fun acc i -> acc + Yanc.Cluster.takeovers c i)
      0 (Yanc.Cluster.live_indexes c)
  in
  (ok, latency, List.length orphans, reclaimed)

let e20_row r =
  let rate = e20_rate r in
  row "  %3d | %3d | %8d | %8d | %8d | %10.3f | %10.3f | %7.2f | %13.0f | %9s\n"
    r.c_n r.c_k r.c_switches r.c_arrivals r.c_installs r.c_max_busy_s
    r.c_sum_busy_s r.c_wall_s rate
    (if r.c_converged then "yes" else "NO")

let e20_json_of path ~seed ~tick ~factor series takeovers =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n1_rate n1 = Option.map e20_rate n1 in
  let base k =
    n1_rate (List.find_opt (fun r -> r.c_n = 1 && r.c_k = k) series)
  in
  out "{\n";
  out "  \"bench\": \"e20_cluster_shard\",\n";
  out "  \"generated_by\": \"dune exec bench/main.exe -- e20 --json\",\n";
  out "  \"seed\": %d,\n" seed;
  out "  \"tick_s\": %g,\n" tick;
  out "  \"replication_factor\": %d,\n" factor;
  out "  \"lease_ttl_s\": 1.0, \"renew_every_s\": 0.25, \"reconcile_every_s\": 0.1,\n";
  out "  \"throughput_metric\": \"installs / max per-node busy seconds (critical path; one process simulates all nodes)\",\n";
  out "  \"series\": [\n";
  List.iteri
    (fun i r ->
      let rate = e20_rate r in
      let speedup =
        match base r.c_k with
        | Some b when b > 0. -> rate /. b
        | _ -> 1.
      in
      out "    { \"n\": %d, \"k\": %d, \"switches\": %d, \"arrivals\": %d, \"installs\": %d,\n"
        r.c_n r.c_k r.c_switches r.c_arrivals r.c_installs;
      out "      \"sim_s\": %.6f, \"wall_s\": %.6f, \"max_busy_s\": %.6f, \"sum_busy_s\": %.6f,\n"
        r.c_sim_s r.c_wall_s r.c_max_busy_s r.c_sum_busy_s;
      out "      \"installs_per_busy_s\": %.1f, \"speedup_vs_n1\": %.2f,\n"
        rate speedup;
      out "      \"converged\": %b, \"ops_synced\": %d,\n" r.c_converged
        r.c_ops_synced;
      out "      \"per_node\": [";
      List.iteri
        (fun j (name, sw, inst, busy) ->
          out "%s{ \"name\": %S, \"switches\": %d, \"installs\": %d, \"busy_s\": %.6f }"
            (if j = 0 then " " else ", ")
            name sw inst busy)
        r.c_per_node;
      out " ] }%s\n" (if i = List.length series - 1 then "" else ","))
    series;
  out "  ],\n";
  out "  \"takeover\": [\n";
  List.iteri
    (fun i (n, k, killed, ok, latency, orphans, reclaimed) ->
      out "    { \"n\": %d, \"k\": %d, \"killed\": %d, \"converged\": %b, \"latency_s\": %.3f, \"orphaned_shards\": %d, \"reclaimed\": %d }%s\n"
        n k killed ok latency orphans reclaimed
        (if i = List.length takeovers - 1 then "" else ","))
    takeovers;
  out "  ]\n";
  out "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  row "  wrote %s\n" path

let base_speedups series =
  List.filter_map
    (fun r ->
      if r.c_n = 1 then None
      else
        match List.find_opt (fun b -> b.c_n = 1 && b.c_k = r.c_k) series with
        | Some b when e20_rate b > 0. ->
          Some (r.c_n, r.c_k, e20_rate r /. e20_rate b)
        | _ -> None)
    series

let e20_cluster ?(json = None) () =
  section
    "E20  sharded cluster: N nodes, rendezvous switch ownership over the DFS";
  row "  %3s | %3s | %8s | %8s | %8s | %10s | %10s | %7s | %13s | %9s\n"
    "n" "k" "switches" "arrivals" "installs" "max busy s" "sum busy s"
    "wall s" "inst/busy s" "converged";
  let seed = 0xC1A57E in
  let tick = 0.005 in
  (* fixed offered load per k: the same storm hits every fleet size, so
     speedup is work conservation, not extra work *)
  let storm ?rate ~arrivals ~n ~k () =
    let r = e20_storm ~seed ?rate ~arrivals ~n ~k () in
    e20_row r;
    r
  in
  let series =
    List.map (fun n -> storm ~arrivals:3000 ~n ~k:8 ()) [ 1; 2; 4; 8 ]
    @ List.map (fun n -> storm ~rate:8000. ~arrivals:2000 ~n ~k:16 ())
        [ 1; 4 ]
  in
  (match base_speedups series with
  | [] -> ()
  | l ->
    List.iter
      (fun (n, k, s) -> row "  speedup n=%d (k=%d): %.2fx over n=1\n" n k s)
      l);
  let takeovers =
    List.map
      (fun (n, killed) ->
        let ok, latency, orphans, reclaimed =
          e20_takeover ~kill_count:killed ~n ~k:8 ()
        in
        row "  takeover: kill %d of %d -> %s in %.3f sim s (%d orphans, %d \
             reclaimed)\n"
          killed n
          (if ok then "reconverged" else "STUCK")
          latency orphans reclaimed;
        (n, 8, killed, ok, latency, orphans, reclaimed))
      [ (2, 1); (4, 1); (4, 2); (8, 2) ]
  in
  match json with
  | Some path -> e20_json_of path ~seed ~tick ~factor:2 series takeovers
  | None -> ()

(* --- E21: the observability plane's own bill ----------------------------------
   What does cluster-wide tracing cost, and does a trace actually cross
   nodes? One storm per (tracing, n) point; overhead is min-of-5
   interleaved wall (same epsilon story as the E16 gate); coverage is
   measured from the nodes' span rings themselves: a trace id seen in
   two rings is a span tree that crossed the op-log. *)

let e21_run ?(tracing = true) ?(arrivals = 200) ~n ~k () =
  let built, c = e20_rig ~tracing ~n ~k () in
  let net = Yanc.Cluster.net c in
  let hosts = List.length built.N.Topo_gen.host_names in
  let profile = { N.Workload.default_profile with N.Workload.rate = 3000. } in
  let wl =
    N.Workload.create ~profile ~start:(N.Network.now net) ~seed:0x0B5E ~hosts ()
  in
  let wall0 = Sys.time () in
  ignore (e20_drive c wl ~arrivals);
  Yanc.Cluster.run_for ~tick:0.005 c 0.1;
  (Sys.time () -. wall0, c)

(* "trace=N ... stage=S" lines from a node's trace_pipe; trace=0 spans
   (untraced background beats) don't count toward coverage. *)
let e21_parse_pipe data =
  List.filter_map
    (fun line ->
      let tok_value prefix =
        List.fold_left
          (fun acc tok ->
            let lp = String.length prefix in
            if String.length tok > lp && String.sub tok 0 lp = prefix then
              Some (String.sub tok lp (String.length tok - lp))
            else acc)
          None
          (String.split_on_char ' ' line)
      in
      match tok_value "trace=" with
      | None -> None
      | Some v -> (
        match int_of_string_opt v with
        | None | Some 0 -> None
        | Some id ->
          Some (id, Option.value ~default:"?" (tok_value "stage="))))
    (String.split_on_char '\n' data)

(* Drain every live node's ring and group by trace id: how many distinct
   traces survive in the rings, and how many of those appear in >= 2
   nodes' rings (the cross-node criterion). Bounded rings drop oldest,
   so this measures the surviving window — which is exactly what an
   operator reading the pipes gets. *)
let e21_coverage c =
  let seen : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun i ->
      let ctl = Yanc.Cluster.controller c i in
      let proc = Y.Layout.node_proc_root (Yanc.Cluster.name_of c i) in
      let data =
        match
          Fs.read_file (Yanc.Controller.fs ctl) ~cred
            (Y.Layout.proc_trace_pipe ~proc)
        with
        | Ok d -> d
        | Error _ -> ""
      in
      List.iter
        (fun (trace, _stage) ->
          let nodes =
            match Hashtbl.find_opt seen trace with
            | Some h -> h
            | None ->
              let h = Hashtbl.create 4 in
              Hashtbl.replace seen trace h;
              h
          in
          Hashtbl.replace nodes i ())
        (e21_parse_pipe data))
    (Yanc.Cluster.live_indexes c);
  let total = Hashtbl.length seen in
  let cross =
    Hashtbl.fold
      (fun _ nodes acc -> if Hashtbl.length nodes >= 2 then acc + 1 else acc)
      seen 0
  in
  (total, cross)

let e21_cluster_health c =
  match Yanc.Cluster.live_indexes c with
  | [] -> Error Vfs.Errno.ENOENT
  | i :: _ ->
    Fs.read_file
      (Yanc.Controller.fs (Yanc.Cluster.controller c i))
      ~cred
      (Y.Layout.proc_health ~proc:Y.Layout.cluster_proc_root)

let e21_observability ?(json = None) () =
  section
    "E21  cluster observability: tracing overhead (min-of-5 wall) and \
     cross-node span coverage";
  row "    n |   k | arrivals | wall_off_s | wall_on_s | overhead%% |  traces | cross-node\n";
  row "  ----+-----+----------+------------+-----------+-----------+---------+-----------\n";
  let points =
    List.map
      (fun n ->
        let wall_off = ref infinity and wall_on = ref infinity in
        let last = ref None in
        for _ = 1 to 5 do
          let w, _ = e21_run ~tracing:false ~n ~k:4 () in
          if w < !wall_off then wall_off := w;
          let w, c = e21_run ~tracing:true ~n ~k:4 () in
          if w < !wall_on then wall_on := w;
          last := Some c
        done;
        let total, cross = e21_coverage (Option.get !last) in
        let overhead =
          (!wall_on -. !wall_off) /. !wall_off *. 100.
        in
        row "  %3d | %3d | %8d | %10.4f | %9.4f | %+8.1f%% | %7d | %10d\n" n 4
          200 !wall_off !wall_on overhead total cross;
        (n, !wall_off, !wall_on, total, cross))
      [ 1; 2; 4 ]
  in
  match json with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 2048 in
    let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    out "{\n";
    out "  \"bench\": \"e21_observability\",\n";
    out "  \"generated_by\": \"dune exec bench/main.exe -- e21 --json\",\n";
    out "  \"topology\": \"fat-tree:4\",\n";
    out "  \"arrivals\": 200,\n";
    out "  \"reps\": 5,\n";
    out "  \"note\": \"wall seconds are min-of-5 interleaved; coverage is distinct trace ids surviving in the nodes' bounded span rings, cross_node = ids present in >= 2 rings\",\n";
    out "  \"points\": [\n";
    List.iteri
      (fun i (n, off, on_, total, cross) ->
        out
          "    {\"n\": %d, \"wall_off_s\": %.6f, \"wall_on_s\": %.6f, \
           \"overhead_pct\": %.2f, \"traces\": %d, \"cross_node_traces\": \
           %d}%s\n"
          n off on_
          ((on_ -. off) /. off *. 100.)
          total cross
          (if i = List.length points - 1 then "" else ","))
      points;
    out "  ]\n";
    out "}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    row "  wrote %s\n" path

(* The @bench-smoke gate: prove the acceptance ratio (warm lookups walk
   >= 5x fewer components than cold) in a fraction of a second, so
   `dune runtest` fails fast if the cache regresses. *)
(* --- E22: the policy compiler ---------------------------------------------------
   What does compiling /yanc/policy cost, and is the engine's install
   actually incremental? Compile wall time (min of 5) and emitted-rule
   counts across policy sizes, then the flow_mod bill — measured at
   the commit queue's own counters — of a full install of a 200-clause
   policy versus a one-clause edit of it. The acceptance gate (<= 10%)
   rides bench-smoke; `--json` writes BENCH_policy.json. *)

let e22_clause i =
  Printf.sprintf "filter dl_type = 0x0800 && nw_dst = 10.%d.%d.%d ; fwd(%d)"
    (i / 250) (i mod 250) (i mod 7)
    (1 + (i mod 4))

let e22_policy n = String.concat "\n| " (List.init n e22_clause)

let e22_parse text =
  match Policy.Syntax.parse text with
  | Ok ir -> ir
  | Error e -> failwith ("e22: parse: " ^ e)

let e22_compile_point n =
  let ir = e22_parse (e22_policy n) in
  let best = ref infinity in
  let rules = ref [] in
  for _ = 1 to 5 do
    let t0 = Sys.time () in
    (match Policy.Compile.to_flows ir with
    | Ok r -> rules := r
    | Error e -> failwith ("e22: compile: " ^ e));
    let w = Sys.time () -. t0 in
    if w < !best then best := w
  done;
  (n, !best, List.length !rules)

let e22_counter ctl name =
  Telemetry.Registry.value
    (Telemetry.Registry.counter
       (Telemetry.registry (Yanc.Controller.telemetry ctl))
       name)

(* Full install vs one-clause edit of the same policy, billed at the
   dirty-flow commit queue (adds + deletes actually encoded). *)
let e22_incremental ~n () =
  let built = N.Topo_gen.linear 1 in
  let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
  Yanc.Controller.attach_switches ctl;
  ignore (Yanc.Controller.add_policy_engine ctl);
  Yanc.Controller.run_for ctl 0.3;
  let fs = Yanc.Controller.fs ctl in
  let write text =
    match Fs.write_file fs ~cred (Y.Layout.policy_file "big") text with
    | Ok () -> ()
    | Error e -> failwith ("e22: write: " ^ Vfs.Errno.message e)
  in
  let mods () =
    e22_counter ctl "driver.commit.adds" + e22_counter ctl "driver.commit.deletes"
  in
  let m0 = mods () in
  write (e22_policy n);
  Yanc.Controller.run_for ctl 2.0;
  let full = mods () - m0 in
  let m1 = mods () in
  write
    (String.concat "\n| "
       (List.init n (fun i -> e22_clause (if i = n / 2 then n + 7 else i))));
  Yanc.Controller.run_for ctl 2.0;
  (full, mods () - m1)

(* Random (policy, packet) equivalence checks against the reference
   interpreter — the bench-side slice of the test suite's 500+ proof,
   generated through the concrete syntax so the parser is in the loop. *)
let e22_equivalence ~cases rng =
  let pick xs = List.nth xs (N.Prng.below rng (List.length xs)) in
  let atoms =
    [ "drop"; "id"; "fwd(1)"; "fwd(2)"; "flood"; "controller";
      "dl_vlan := 5"; "nw_tos := 7"; "tp_dst := 8080";
      "filter dl_type = 0x0800"; "filter tp_dst = 80";
      "filter nw_dst = 10.0.0.0/8"; "filter dl_vlan = 5";
      "filter ! (tp_dst = 80 && dl_type = 0x0800)" ]
  in
  let rec gen depth =
    if depth = 0 then pick atoms
    else
      match N.Prng.below rng 3 with
      | 0 -> Printf.sprintf "(%s ; %s)" (gen (depth - 1)) (gen (depth - 1))
      | 1 -> Printf.sprintf "(%s | %s)" (gen (depth - 1)) (gen (depth - 1))
      | _ -> pick atoms
  in
  let header () =
    { P.Headers.in_port = 1 + N.Prng.below rng 3;
      dl_src = P.Mac.of_int 0x0a0001;
      dl_dst = P.Mac.of_int 0x0a0002;
      dl_vlan = pick [ None; Some 5; Some 9 ];
      dl_vlan_pcp = pick [ None; Some 0 ];
      dl_type = pick [ 0x0800; 0x0806 ];
      nw_src = pick [ None; P.Ipv4_addr.of_string "10.1.2.3" ];
      nw_dst =
        pick
          [ None; P.Ipv4_addr.of_string "10.9.9.9";
            P.Ipv4_addr.of_string "192.168.0.1" ];
      nw_proto = pick [ None; Some 6 ];
      nw_tos = pick [ None; Some 0 ];
      tp_src = pick [ None; Some 1234 ];
      tp_dst = pick [ None; Some 80; Some 53 ] }
  in
  let checked = ref 0 in
  while !checked < cases do
    let p = e22_parse (gen 3) in
    match Policy.Compile.compile p with
    | Error _ -> ()  (* unrealizable under OF 1.0 — not an equivalence case *)
    | Ok cls ->
      for _ = 1 to 5 do
        let h = header () in
        if Policy.Compile.classify cls h <> Policy.Interp.eval p h then
          failwith "e22: compiled classifier disagrees with Interp.eval";
        incr checked
      done
  done;
  !checked

let e22_json_of path points (n_inc, full, inc) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"e22_policy_compiler\",\n";
  out "  \"generated_by\": \"dune exec bench/main.exe -- e22 --json\",\n";
  out "  \"compile_wall\": \"min of 5 runs, Sys.time\",\n";
  out "  \"series\": [\n";
  List.iteri
    (fun i (n, w, r) ->
      out
        "    { \"clauses\": %d, \"compile_s\": %.6f, \"rules\": %d, \
         \"rules_per_clause\": %.2f }%s\n"
        n w r
        (float_of_int r /. float_of_int n)
        (if i = List.length points - 1 then "" else ","))
    points;
  out "  ],\n";
  out
    "  \"incremental\": { \"clauses\": %d, \"full_install_flow_mods\": %d, \
     \"one_clause_edit_flow_mods\": %d, \"edit_over_full\": %.4f, \
     \"gate\": \"<= 0.10\" }\n"
    n_inc full inc
    (float_of_int inc /. float_of_int full);
  out "}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" path

let e22_policy_compiler ?(json = None) () =
  section "E22  policy compiler: NetCore-style IR -> classifier rules over the FS";
  let cases = e22_equivalence ~cases:150 (N.Prng.create ~seed:0x22E22) in
  row "  compile = eval on %d random (policy, packet) cases\n" cases;
  row "  %7s | %10s | %6s | %12s\n" "clauses" "compile s" "rules" "rules/clause";
  let points = List.map e22_compile_point [ 10; 50; 200; 500 ] in
  List.iter
    (fun (n, w, r) ->
      row "  %7d | %10.6f | %6d | %12.2f\n" n w r
        (float_of_int r /. float_of_int n))
    points;
  let n_inc = 200 in
  let full, inc = e22_incremental ~n:n_inc () in
  row
    "  incremental: full install of %d clauses = %d flow_mods, one-clause \
     edit = %d (%.1f%%)\n"
    n_inc full inc
    (100. *. float_of_int inc /. float_of_int full);
  match json with
  | Some path -> e22_json_of path points (n_inc, full, inc)
  | None -> ()

let smoke () =
  let fs = Fs.create () in
  let dir = Vfs.Path.of_string_exn "/a/b/c/d/e" in
  let file = Vfs.Path.child dir "f" in
  ignore (Fs.mkdir_p fs ~cred dir);
  ignore (Fs.write_file fs ~cred file "x");
  let cost = Fs.cost fs in
  Vfs.Cost.reset cost;
  ignore (Fs.read_file fs ~cred file);
  let cold = Vfs.Cost.components cost in
  let warm_calls = 10 in
  for _ = 1 to warm_calls do
    ignore (Fs.read_file fs ~cred file)
  done;
  let warm = Vfs.Cost.components cost - cold in
  Printf.printf
    "bench-smoke: cold lookup = %d components, %d warm lookups = %d components\n"
    cold warm_calls warm;
  if warm * 5 > cold then begin
    Printf.printf
      "bench-smoke: FAIL — warm lookups should walk >= 5x fewer components than cold\n";
    exit 1
  end;
  Printf.printf "bench-smoke: ok (warm/cold ratio holds)\n";
  (* The routing-index gate: a small E14 fan-out (40 apps x 8 switches)
     must visit >= 5x fewer watches per mutation than the linear
     reference. *)
  let muts_l, vis_l, disp_l, coal_l =
    e14_run ~backend:Fsnotify.Notifier.Linear ~apps:40 ~switches:8 ~rounds:5
  in
  let muts_i, vis_i, disp_i, coal_i =
    e14_run ~backend:Fsnotify.Notifier.Indexed ~apps:40 ~switches:8 ~rounds:5
  in
  Printf.printf
    "bench-smoke: fan-out routed %d mutations: linear visited %d watches, \
     indexed %d\n"
    muts_i vis_l vis_i;
  if muts_l <> muts_i || disp_l <> disp_i || coal_l <> coal_i then begin
    Printf.printf
      "bench-smoke: FAIL — backends disagree on routed events \
       (linear %d/%d, indexed %d/%d)\n"
      disp_l coal_l disp_i coal_i;
    exit 1
  end;
  if vis_l < 5 * vis_i then begin
    Printf.printf
      "bench-smoke: FAIL — the routing index should visit >= 5x fewer \
       watches than the linear scan\n";
    exit 1
  end;
  Printf.printf "bench-smoke: ok (indexed/linear visited ratio holds, %.1fx)\n"
    (float_of_int vis_l /. float_of_int (max 1 vis_i));
  (* The classifier gate (E15): at 1000 mixed-mask flows the classifier
     must examine >= 5x fewer entries per lookup than the linear scan,
     agree with it on every winner, and win on wall clock. *)
  let probes = e15_probes 512 in
  let run strategy =
    let t = e15_table strategy 1000 in
    let cost = N.Flow_table.cost t in
    N.Flow_table.Cost.reset cost;
    let winners =
      Array.map
        (fun h ->
          Option.map
            (fun e -> e.N.Flow_table.priority)
            (N.Flow_table.lookup t ~now:0. h))
        probes
    in
    let t0 = Sys.time () in
    for _ = 1 to 20 do
      Array.iter (fun h -> ignore (N.Flow_table.lookup t ~now:0. h)) probes
    done;
    let wall = Sys.time () -. t0 in
    winners, N.Flow_table.Cost.entries_examined cost, wall
  in
  let win_l, exam_l, wall_l = run N.Flow_table.Linear in
  let win_c, exam_c, wall_c = run N.Flow_table.Classifier in
  Printf.printf
    "bench-smoke: classifier @1000 flows: linear examined %d entries, \
     classifier %d (%.1fx); wall %.3fs vs %.3fs\n"
    exam_l exam_c
    (float_of_int exam_l /. float_of_int (max 1 exam_c))
    wall_l wall_c;
  if win_l <> win_c then begin
    Printf.printf
      "bench-smoke: FAIL — classifier disagrees with the linear scan on some \
       winner\n";
    exit 1
  end;
  if exam_l < 5 * exam_c then begin
    Printf.printf
      "bench-smoke: FAIL — the classifier should examine >= 5x fewer entries \
       than the linear scan\n";
    exit 1
  end;
  if wall_c >= wall_l then begin
    Printf.printf
      "bench-smoke: FAIL — the classifier should beat the linear scan on wall \
       time\n";
    exit 1
  end;
  Printf.printf
    "bench-smoke: ok (classifier examines %.1fx fewer entries and wins on \
     wall time)\n"
    (float_of_int exam_l /. float_of_int (max 1 exam_c));
  (* The telemetry gate (E16): tracing must cost <= 5% wall time on the
     reactive sweep, and /yanc/.proc/metrics must parse as "name value"
     lines. The sweep runs ~25ms, so scheduler jitter swamps a single
     measurement: interleave five runs of each side, compare the minima,
     and keep a small absolute epsilon for the timer's own granularity. *)
  let wall_off = ref infinity in
  let wall_on = ref infinity in
  let ctl_on = ref None in
  for _ = 1 to 5 do
    let _, w =
      e16_workload ~telemetry:(Telemetry.create ~tracing:false ()) ~pings:6 ()
    in
    if w < !wall_off then wall_off := w;
    let ctl, w = e16_workload ~pings:6 () in
    if w < !wall_on then wall_on := w;
    ctl_on := Some ctl
  done;
  let ctl_on = Option.get !ctl_on in
  let wall_off = !wall_off and wall_on = !wall_on in
  Printf.printf
    "bench-smoke: tracing off %.4fs, on %.4fs (%+.1f%%)\n" wall_off wall_on
    ((wall_on -. wall_off) /. wall_off *. 100.);
  if wall_on > (wall_off *. 1.05) +. 0.005 then begin
    Printf.printf
      "bench-smoke: FAIL — span tracing should cost <= 5%% on the reactive \
       sweep\n";
    exit 1
  end;
  let metrics =
    match
      Fs.read_file (Yanc.Controller.fs ctl_on) ~cred
        (Vfs.Path.of_string_exn "/yanc/.proc/metrics")
    with
    | Ok s -> s
    | Error e ->
      Printf.printf "bench-smoke: FAIL — /yanc/.proc/metrics: %s\n"
        (Vfs.Errno.message e);
      exit 1
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' metrics)
  in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ _name; v ] when float_of_string_opt v <> None -> ()
      | _ ->
        Printf.printf
          "bench-smoke: FAIL — /yanc/.proc/metrics line %S is not \"name \
           value\"\n"
          line;
        exit 1)
    lines;
  let has prefix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  in
  List.iter
    (fun p ->
      if not (has p) then begin
        Printf.printf
          "bench-smoke: FAIL — /yanc/.proc/metrics is missing the %s* \
           series\n"
          p;
        exit 1
      end)
    [ "vfs."; "fsnotify."; "datapath."; "sched."; "net."; "trace." ];
  Printf.printf
    "bench-smoke: ok (tracing overhead within 5%%, metrics file parses, %d \
     series)\n"
    (List.length lines);
  (* The survival gate (E17): after severing every control channel and
     changing the committed rules mid-outage, every driver must
     reconnect, resync, and install the outage-committed rule; and the
     keepalive machinery must cost <= 2% wall time at steady state
     (min-of-5 interleaved, same epsilon story as the tracing gate). *)
  let ctl, mgr = e17_rig ~switches:8 ~rules:4 () in
  let ok, sim_s, _wall, _bytes = e17_recover ctl mgr in
  let resyncs = e17_sum_counters mgr (fun c -> c.Driver.Driver_intf.resyncs) in
  let repairs =
    e17_sum_counters mgr (fun c -> c.Driver.Driver_intf.resync_installs)
    + e17_sum_counters mgr (fun c -> c.Driver.Driver_intf.resync_deletes)
  in
  Printf.printf
    "bench-smoke: recovery at 8 switches: %.3f sim s, %d resyncs, %d resync \
     repairs\n"
    sim_s resyncs repairs;
  if not ok then begin
    Printf.printf
      "bench-smoke: FAIL — control plane did not recover from the forced \
       disconnect\n";
    exit 1
  end;
  if resyncs < 8 then begin
    Printf.printf
      "bench-smoke: FAIL — every reconnected driver should have resynced \
       (%d/8)\n"
      resyncs;
    exit 1
  end;
  let no_keepalive =
    { Driver.Driver_intf.default_tuning with
      Driver.Driver_intf.keepalive_interval = 0. }
  in
  let ka_off = ref infinity in
  let ka_on = ref infinity in
  for _ = 1 to 5 do
    let _, w = e16_workload ~tuning:no_keepalive ~pings:6 () in
    if w < !ka_off then ka_off := w;
    let _, w = e16_workload ~pings:6 () in
    if w < !ka_on then ka_on := w
  done;
  Printf.printf "bench-smoke: keepalives off %.4fs, on %.4fs (%+.1f%%)\n"
    !ka_off !ka_on
    ((!ka_on -. !ka_off) /. !ka_off *. 100.);
  if !ka_on > (!ka_off *. 1.02) +. 0.005 then begin
    Printf.printf
      "bench-smoke: FAIL — keepalives should cost <= 2%% wall time at steady \
       state\n";
    exit 1
  end;
  Printf.printf "bench-smoke: ok (recovery converges, keepalive overhead \
     within 2%%)\n";
  (* The commit-queue gate (E18): driver work per commit round must be
     O(dirty), not O(flows) — crossings per round at a 4096-entry table
     within 2x of a 256-entry table — and a burst of writes to one flow
     must coalesce to a single flow_mod. Crossings are deterministic,
     so this gate has no timer jitter. *)
  let commit_crossings flows =
    let yfs, mgr = e18_rig ~flows () in
    let c, _, _, _ = e18_commit_rounds yfs mgr ~dirty:16 ~rounds:4 in
    yfs, mgr, c
  in
  let _, _, small = commit_crossings 256 in
  let yfs, mgr, big = commit_crossings 4096 in
  Printf.printf
    "bench-smoke: commit round (16 dirty): %d crossings @256 flows, %d \
     @4096 flows\n"
    small big;
  if big > 2 * small then begin
    Printf.printf
      "bench-smoke: FAIL — per-commit cost should be O(dirty): a 16x larger \
       table must stay within 2x crossings\n";
    exit 1
  end;
  let adds0 = e18_counter yfs "driver.commit.adds" in
  let coal0 = e18_counter yfs "driver.commit.coalesced" in
  for b = 1 to 32 do
    ignore
      (Y.Flowdir.update (Y.Yanc_fs.fs yfs) ~cred
         (Y.Layout.flow ~root:net_root ~switch:"sw1" (e18_name 1))
         (fun f ->
           { f with
             Y.Flowdir.actions =
               [ OF.Action.Output (OF.Action.Physical ((b mod 4) + 1)) ] }))
  done;
  Driver.Manager.run_control mgr ~now:1.;
  let burst_mods = e18_counter yfs "driver.commit.adds" - adds0 in
  let burst_coal = e18_counter yfs "driver.commit.coalesced" - coal0 in
  Printf.printf
    "bench-smoke: burst of 32 writes to one flow -> %d flow_mod(s), %d marks \
     coalesced\n"
    burst_mods burst_coal;
  if burst_mods <> 1 then begin
    Printf.printf
      "bench-smoke: FAIL — a one-tick write burst to one flow should commit \
       as exactly one flow_mod\n";
    exit 1
  end;
  Printf.printf
    "bench-smoke: ok (commit cost O(dirty), burst coalesces %.0fx)\n"
    (32. /. float_of_int (max 1 burst_mods));
  (* The storm gate (E19): a k=4 fat-tree storm through the ECMP ring
     path must sustain an installs/sec floor, and the pooled packet-in
     records must stop allocating once the working set is warm
     (allocated flat while reused grows) — the fixed seeds make the
     pool counters deterministic. *)
  let built, ctl, _app = e19_rig ~k:4 () in
  let hosts = List.length built.N.Topo_gen.host_names in
  let storm rate seed =
    { N.Workload.default_profile with N.Workload.rate }, seed
  in
  let profile, seed = storm 2000. 0x57CA1E in
  let wl =
    N.Workload.create ~profile ~start:(Yanc.Controller.now ctl) ~seed ~hosts ()
  in
  let t0 = Sys.time () in
  let warm = e19_drive ctl wl ~arrivals:600 in
  let pool = Y.Pktin.pool (Y.Yanc_fs.pktin (Yanc.Controller.yfs ctl)) in
  let alloc_warm = N.Pool.allocated pool in
  let reused_warm = N.Pool.reused pool in
  (* steady state at half the warm rate: bursts are covered by the
     warmed working set, so the pool must serve every acquire by reuse *)
  let profile2, seed2 = storm 1000. 0x57CA1F in
  let wl2 =
    N.Workload.create ~profile:profile2 ~start:(Yanc.Controller.now ctl)
      ~seed:seed2 ~hosts ()
  in
  let steady = e19_drive ctl wl2 ~arrivals:300 in
  let wall = Sys.time () -. t0 in
  let installs = e19_counter ctl "driver.commit.adds" in
  let alloc_delta = N.Pool.allocated pool - alloc_warm in
  let reused_delta = N.Pool.reused pool - reused_warm in
  Printf.printf
    "bench-smoke: k=4 storm: %d arrivals -> %d installs in %.3fs wall \
     (%.0f/s); pool steady state: +%d allocated, +%d reused\n"
    (warm + steady) installs wall
    (float_of_int installs /. wall)
    alloc_delta reused_delta;
  if installs < 2 * (warm + steady) then begin
    Printf.printf
      "bench-smoke: FAIL — every arrival should install a multi-hop path \
       (%d installs for %d arrivals)\n"
      installs (warm + steady);
    exit 1
  end;
  if float_of_int installs /. wall < 400. then begin
    Printf.printf
      "bench-smoke: FAIL — the ring path should sustain >= 400 installs/s \
       wall on a k=4 storm\n";
    exit 1
  end;
  if alloc_delta > 0 || reused_delta = 0 then begin
    Printf.printf
      "bench-smoke: FAIL — steady-state packet-in records should be \
       pool-served (allocated flat, reused growing)\n";
    exit 1
  end;
  Printf.printf
    "bench-smoke: ok (storm floor holds, pool steady state allocates zero)\n";
  (* the delivery-path gate: the pooled ring must beat the per-event
     file directories by >= 2x on the same packet-in stream *)
  let ring_eps, ed_eps, ring_x, ed_x = e19_delivery ~events:4000 () in
  Printf.printf
    "bench-smoke: delivery: ring %.0f events/s (%.2f crossings/event), \
     eventdir %.0f events/s (%.2f crossings/event)\n"
    ring_eps ring_x ed_eps ed_x;
  if ring_eps < 2. *. ed_eps then begin
    Printf.printf
      "bench-smoke: FAIL — the pooled ring should deliver >= 2x faster than \
       the event directories\n";
    exit 1
  end;
  Printf.printf "bench-smoke: ok (ring delivery %.1fx the eventdir baseline)\n"
    (ring_eps /. ed_eps);
  (* The cluster gate (E20): two nodes sharing a k=8 storm must beat
     one node by >= 1.5x on installs per critical-path (max per-node
     busy) second — the sharding dividend after paying factor-2
     replication — and killing one of two mid-flight must reconverge
     (every orphan re-owned, hardware = filesystem) within the lease +
     resync budget. Busy seconds are wall-clock, so at smoke scale a
     single run is noisy: keep the best rate per point over up to 3
     attempts (max rate = least scheduler interference) and stop as
     soon as the ratio holds. Convergence is simulation-deterministic
     and is checked on every attempt. *)
  let e20_point n =
    let r = e20_storm ~arrivals:400 ~rate:3000. ~n ~k:8 () in
    if not r.c_converged then begin
      Printf.printf
        "bench-smoke: FAIL — the cluster storm must end converged (hardware \
         = filesystem on every shard; n=%d)\n"
        n;
      exit 1
    end;
    e20_rate r
  in
  let rate1 = ref 0. and rate2 = ref 0. and attempt = ref 0 in
  while !attempt = 0 || (!attempt < 3 && !rate2 < 1.5 *. !rate1) do
    incr attempt;
    rate1 := max !rate1 (e20_point 1);
    rate2 := max !rate2 (e20_point 2)
  done;
  let rate1 = !rate1 and rate2 = !rate2 in
  Printf.printf
    "bench-smoke: cluster k=8 storm: n=1 %.0f inst/busy s, n=2 %.0f \
     (%.2fx, best of %d)\n"
    rate1 rate2 (rate2 /. rate1) !attempt;
  if rate2 < 1.5 *. rate1 then begin
    Printf.printf
      "bench-smoke: FAIL — two nodes should sustain >= 1.5x one node's \
       aggregate install rate\n";
    exit 1
  end;
  let ok, latency, orphans, reclaimed = e20_takeover ~n:2 ~k:4 () in
  Printf.printf
    "bench-smoke: takeover: kill 1 of 2 -> %s in %.3f sim s (%d orphans, %d \
     reclaimed)\n"
    (if ok then "reconverged" else "STUCK")
    latency orphans reclaimed;
  if not ok then begin
    Printf.printf
      "bench-smoke: FAIL — the survivor must reconverge after a node kill\n";
    exit 1
  end;
  if latency > 5. then begin
    Printf.printf
      "bench-smoke: FAIL — takeover should land within the lease TTL + \
       reconcile + resync budget (5 sim s)\n";
    exit 1
  end;
  if orphans > 0 && reclaimed < orphans then begin
    Printf.printf
      "bench-smoke: FAIL — every orphaned shard must be reclaimed (%d/%d)\n"
      reclaimed orphans;
    exit 1
  end;
  Printf.printf
    "bench-smoke: ok (cluster scales %.2fx at n=2, takeover %.3f sim s)\n"
    (rate2 /. rate1) latency;
  (* The observability gate (E21): cluster-wide span tracing must cost
     <= 5% wall at n=4 (min-of-5 interleaved, same epsilon as the E16
     gate), at least one trace id must appear in two nodes' rings (the
     cross-node span path is live, not just compiled), and the health
     file must judge the post-storm fleet passing — then turn crit, and
     flip the exit code, the moment a node dies pre-takeover. *)
  let obs_off = ref infinity and obs_on = ref infinity in
  let obs_c = ref None in
  (* Alternate which side runs first each rep, so process warmup and
     page-cache luck can't systematically favor one side's minimum. *)
  for rep = 1 to 7 do
    let run_off () =
      let w, _ = e21_run ~tracing:false ~arrivals:120 ~n:4 ~k:4 () in
      if w < !obs_off then obs_off := w
    in
    let run_on () =
      let w, c = e21_run ~tracing:true ~arrivals:120 ~n:4 ~k:4 () in
      if w < !obs_on then obs_on := w;
      obs_c := Some c
    in
    if rep mod 2 = 1 then begin run_off (); run_on () end
    else begin run_on (); run_off () end
  done;
  let obs_off = !obs_off and obs_on = !obs_on in
  let obs_c = Option.get !obs_c in
  Printf.printf
    "bench-smoke: n=4 tracing off %.4fs, on %.4fs (%+.1f%%)\n" obs_off obs_on
    ((obs_on -. obs_off) /. obs_off *. 100.);
  if obs_on > (obs_off *. 1.05) +. 0.005 then begin
    Printf.printf
      "bench-smoke: FAIL — cluster-wide tracing should cost <= 5%% wall at \
       n=4\n";
    exit 1
  end;
  let obs_total, obs_cross = e21_coverage obs_c in
  Printf.printf
    "bench-smoke: span rings hold %d traces, %d cross-node\n" obs_total
    obs_cross;
  if obs_cross < 1 then begin
    Printf.printf
      "bench-smoke: FAIL — at least one trace id must span two nodes' rings \
       (forward -> apply propagation)\n";
    exit 1
  end;
  let health_status () =
    match e21_cluster_health obs_c with
    | Error e ->
      Printf.printf "bench-smoke: FAIL — cluster health file: %s\n"
        (Vfs.Errno.message e);
      exit 1
    | Ok report -> (
      match Telemetry.Health.status_of_render report with
      | Some level -> level
      | None ->
        Printf.printf
          "bench-smoke: FAIL — health report has no status line:\n%s" report;
        exit 1)
  in
  let post_storm = health_status () in
  if Telemetry.Health.exit_code post_storm <> 0 then begin
    Printf.printf
      "bench-smoke: FAIL — a healthy post-storm fleet must pass health (got \
       %s)\n"
      (Telemetry.Health.level_to_string post_storm);
    exit 1
  end;
  Yanc.Cluster.kill obs_c 3;
  let post_kill = health_status () in
  if Telemetry.Health.exit_code post_kill <> 1 then begin
    Printf.printf
      "bench-smoke: FAIL — health must go crit with a node dead \
       pre-takeover (got %s)\n"
      (Telemetry.Health.level_to_string post_kill);
    exit 1
  end;
  Printf.printf
    "bench-smoke: ok (n=4 tracing overhead within 5%%, cross-node spans \
     live, health %s -> %s on kill)\n"
    (Telemetry.Health.level_to_string post_storm)
    (Telemetry.Health.level_to_string post_kill);
  (* The policy gate (E22): the compiler must agree with the reference
     interpreter on random (policy, packet) cases generated through the
     concrete syntax, and a one-clause edit of a 200-clause installed
     policy must re-program <= 10% of what the full install did (the
     engine's content-hash diff + LCS reprioritization at work). *)
  let cases = e22_equivalence ~cases:150 (N.Prng.create ~seed:0x22E22) in
  Printf.printf "bench-smoke: policy compile = eval on %d random cases\n" cases;
  let full, inc = e22_incremental ~n:200 () in
  Printf.printf
    "bench-smoke: policy full install = %d flow_mods, one-clause edit = %d\n"
    full inc;
  if full < 200 then begin
    Printf.printf
      "bench-smoke: FAIL — 200 disjoint clauses must program >= 200 rules\n";
    exit 1
  end;
  if inc * 10 > full then begin
    Printf.printf
      "bench-smoke: FAIL — a one-clause policy edit should cost <= 10%% of \
       the full install's flow_mods\n";
    exit 1
  end;
  Printf.printf "bench-smoke: ok (policy equivalence + O(changed) edits)\n"

let e_wire_volume () =
  section "AUX  control-channel bytes per operation (driver wire cost)";
  let built = N.Topo_gen.linear 1 in
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  let mgr = Driver.Manager.create ~yfs ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  (* measured indirectly via message sizes *)
  let fm10 =
    String.length
      (OF.Of10.encode ~xid:1l
         (OF.Of10.Flow_mod
            { of_match = (sample_flow 1).Y.Flowdir.of_match; cookie = 0L;
              command = OF.Of10.Add; idle_timeout = 0; hard_timeout = 0;
              priority = 1; buffer_id = None; notify_removal = false;
              actions = (sample_flow 1).Y.Flowdir.actions }))
  in
  let fm13 =
    String.length
      (OF.Of13.encode ~xid:1l
         (OF.Of13.Flow_mod
            { table_id = 0; of_match = (sample_flow 1).Y.Flowdir.of_match;
              cookie = 0L; command = OF.Of13.Add; idle_timeout = 0;
              hard_timeout = 0; priority = 1; buffer_id = None;
              notify_removal = false;
              instructions = [ OF.Of13.Apply_actions (sample_flow 1).Y.Flowdir.actions ] }))
  in
  row "  flow_mod wire size: OF1.0 = %d bytes (fixed match), OF1.3 = %d bytes (OXM)\n"
    fm10 fm13

let () =
  if Array.exists (fun a -> a = "smoke") Sys.argv then begin
    smoke ();
    exit 0
  end;
  if Array.exists (fun a -> a = "e18") Sys.argv then begin
    e18_commit_queue ();
    exit 0
  end;
  if Array.exists (fun a -> a = "e19") Sys.argv then begin
    let json =
      if Array.exists (fun a -> a = "--json") Sys.argv then
        Some "BENCH_scale.json"
      else None
    in
    let ks =
      if Array.exists (fun a -> a = "--k32") Sys.argv then [ 4; 8; 16; 32 ]
      else [ 4; 8; 16 ]
    in
    e19_scale ~ks ~json ();
    exit 0
  end;
  if Array.exists (fun a -> a = "e20" || a = "cluster") Sys.argv then begin
    let json =
      if Array.exists (fun a -> a = "--json") Sys.argv then
        Some "BENCH_cluster.json"
      else None
    in
    e20_cluster ~json ();
    exit 0
  end;
  if Array.exists (fun a -> a = "e22" || a = "policy") Sys.argv then begin
    let json =
      if Array.exists (fun a -> a = "--json") Sys.argv then
        Some "BENCH_policy.json"
      else None
    in
    e22_policy_compiler ~json ();
    exit 0
  end;
  if Array.exists (fun a -> a = "e21" || a = "obs") Sys.argv then begin
    let json =
      if Array.exists (fun a -> a = "--json") Sys.argv then
        Some "BENCH_obs.json"
      else None
    in
    e21_observability ~json ();
    exit 0
  end;
  print_endline "yanc-ml benchmark harness (see EXPERIMENTS.md for the paper mapping)";
  e1_figure ();
  e8_crossings ();
  e8_walltime ();
  e3_commit ();
  e4_fanout ();
  ablation_notify ();
  ablation_lookup ();
  e15_classifier ();
  e7_dfs ();
  e9_reactive ();
  e6_views ();
  ablation_reactive_granularity ();
  e13_dcache ();
  e13_walltime ();
  e14_routing ();
  e14_walltime ();
  e16_tracing ();
  e17_recovery ();
  e18_commit_queue ();
  e19_scale ();
  e20_cluster ();
  e22_policy_compiler ();
  ext_qos ();
  e_wire_volume ();
  print_endline "\ndone."
