(* The policy layer's proof obligations (ISSUE 10): the compiler agrees
   with the reference interpreter on every generated (policy, packet)
   pair — both at the classifier level (classify = eval) and at the
   flow-table level (a real Classifier-strategy table replaying the
   compiled action lists) — plus the algebraic laws (par commutes, seq
   associates), parse/print round-trip, byte-identical deterministic
   compiles, and the policy-engine behaviours: malformed files never
   tear the engine down, and a one-clause edit is O(changed) flow_mods. *)

module P = Policy
module M = Openflow.Of_match
module A = Openflow.Action
module H = Packet.Headers

let mac i = Packet.Mac.of_int i
let ip s = Option.get (Packet.Ipv4_addr.of_string s)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let parse_ok s = ok (P.Syntax.parse s)

(* ------------------------------------------------------------------ *)
(* Deterministic generators over Netsim.Prng — small value pools so   *)
(* matches, rewrites and packets collide often.                       *)
(* ------------------------------------------------------------------ *)

let pick rng xs = List.nth xs (Netsim.Prng.below rng (List.length xs))

let gen_headers rng : H.t =
  let opt xs = pick rng (None :: List.map Option.some xs) in
  {
    in_port = 1 + Netsim.Prng.below rng 4;
    dl_src = mac (pick rng [ 0x0a0001; 0x0a0002; 0x0a0003 ]);
    dl_dst = mac (pick rng [ 0x0a0001; 0x0a0002; 0x0b0001 ]);
    dl_vlan = opt [ 5; 10 ];
    dl_vlan_pcp = opt [ 0; 3 ];
    dl_type = pick rng [ 0x0800; 0x0806; 0x88cc ];
    nw_src = opt [ ip "10.0.0.1"; ip "10.1.2.3"; ip "192.168.0.9" ];
    nw_dst = opt [ ip "10.0.0.1"; ip "10.0.0.2"; ip "172.16.0.5" ];
    nw_proto = opt [ 6; 17 ];
    nw_tos = opt [ 0; 46 ];
    tp_src = opt [ 80; 5353 ];
    tp_dst = opt [ 80; 443 ];
  }

let field_tests =
  [
    ("in_port", "1");
    ("in_port", "3");
    ("dl_type", "0x0800");
    ("dl_type", "0x0806");
    ("dl_src", "00:00:00:0a:00:01");
    ("dl_dst", "00:00:00:0a:00:02");
    ("dl_vlan", "5");
    ("nw_src", "10.0.0.0/8");
    ("nw_src", "10.1.0.0/16");
    ("nw_dst", "10.0.0.1");
    ("nw_proto", "6");
    ("nw_tos", "46");
    ("tp_src", "80");
    ("tp_dst", "443");
  ]

let gen_test rng =
  let f, v = pick rng field_tests in
  P.Ir.Test (ok (M.set_field M.any f v))

let rec gen_pred rng depth =
  if depth = 0 then
    match Netsim.Prng.below rng 6 with
    | 0 -> P.Ir.True
    | 1 -> P.Ir.False
    | _ -> gen_test rng
  else
    match Netsim.Prng.below rng 8 with
    | 0 -> P.Ir.True
    | 1 -> P.Ir.False
    | 2 | 3 -> gen_test rng
    | 4 -> P.Ir.And (gen_pred rng (depth - 1), gen_pred rng (depth - 1))
    | 5 -> P.Ir.Or (gen_pred rng (depth - 1), gen_pred rng (depth - 1))
    | 6 -> P.Ir.Not (gen_pred rng (depth - 1))
    | _ -> gen_test rng

let gen_mod rng =
  pick rng
    [
      A.Set_vlan 5;
      A.Set_vlan_pcp 3;
      A.Set_dl_dst (mac 0x0b0001);
      A.Set_dl_src (mac 0x0a0003);
      A.Set_nw_src (ip "10.9.9.9");
      A.Set_nw_dst (ip "10.0.0.2");
      A.Set_nw_tos 7;
      A.Set_tp_src 8080;
      A.Set_tp_dst 443;
    ]

let gen_fwd rng =
  P.Ir.Fwd
    (pick rng
       [
         A.Physical 1;
         A.Physical 2;
         A.Physical 3;
         A.Flood;
         A.All;
         A.In_port;
         A.Controller 0;
         A.Controller 128;
       ])

let rec gen_policy rng depth =
  if depth = 0 then
    match Netsim.Prng.below rng 4 with
    | 0 -> P.Ir.Filter (gen_pred rng 1)
    | 1 | 2 -> gen_fwd rng
    | _ -> P.Ir.Mod (gen_mod rng)
  else
    match Netsim.Prng.below rng 8 with
    | 0 -> P.Ir.Filter (gen_pred rng 2)
    | 1 -> gen_fwd rng
    | 2 -> P.Ir.Mod (gen_mod rng)
    | 3 | 4 -> P.Ir.Seq (gen_policy rng (depth - 1), gen_policy rng (depth - 1))
    | 5 | 6 -> P.Ir.Par (gen_policy rng (depth - 1), gen_policy rng (depth - 1))
    | _ ->
        P.Ir.Ite
          ( gen_pred rng 2,
            gen_policy rng (depth - 1),
            gen_policy rng (depth - 1) )

(* ------------------------------------------------------------------ *)
(* Unit: parsing and printing                                         *)
(* ------------------------------------------------------------------ *)

let test_parse_basics () =
  Alcotest.(check bool) "drop" true (parse_ok "drop" = P.Ir.drop);
  Alcotest.(check bool) "id" true (parse_ok "id" = P.Ir.id);
  Alcotest.(check bool)
    "fwd" true
    (parse_ok "fwd(3)" = P.Ir.Fwd (A.Physical 3));
  Alcotest.(check bool) "flood" true (parse_ok "flood" = P.Ir.Fwd A.Flood);
  Alcotest.(check bool)
    "controller" true
    (parse_ok "controller" = P.Ir.Fwd (A.Controller 0));
  Alcotest.(check bool)
    "controller(64)" true
    (parse_ok "controller(64)" = P.Ir.Fwd (A.Controller 64));
  Alcotest.(check bool)
    "mod" true
    (parse_ok "dl_vlan := 10" = P.Ir.Mod (A.Set_vlan 10));
  (match parse_ok "filter dl_type = 0x0800 ; fwd(1)" with
  | P.Ir.Seq (P.Ir.Filter (P.Ir.Test m), P.Ir.Fwd (A.Physical 1)) ->
      Alcotest.(check (option int)) "dl_type" (Some 0x0800) m.M.dl_type
  | p -> Alcotest.failf "unexpected parse: %s" (P.Syntax.to_string p));
  (match parse_ok "if nw_src = 10.0.0.0/8 then (fwd(1)) else (drop)" with
  | P.Ir.Ite (P.Ir.Test _, P.Ir.Fwd (A.Physical 1), P.Ir.Filter P.Ir.False) ->
      ()
  | p -> Alcotest.failf "unexpected parse: %s" (P.Syntax.to_string p));
  (* comments and whitespace *)
  (match
     parse_ok "# monitor web traffic\nfilter tp_dst = 80 ; controller | id"
   with
  | P.Ir.Par (P.Ir.Seq (_, _), P.Ir.Filter P.Ir.True) -> ()
  | p -> Alcotest.failf "unexpected parse: %s" (P.Syntax.to_string p))

let test_parse_errors () =
  let err s =
    match P.Syntax.parse s with
    | Error _ -> ()
    | Ok p -> Alcotest.failf "parsed %S as %s" s (P.Syntax.to_string p)
  in
  err "";
  err "   # just a comment\n";
  err "fwd(0)";
  err "fwd(-2)";
  err "filter bogus_field = 3";
  err "nw_proto := 6";
  (* nw_proto has no OF 1.0 set action *)
  err "filter dl_type = zzz";
  err "fwd(1) extra";
  err "if true then fwd(1)";
  err "(fwd(1)";
  err "fwd(1) ;"

let test_precedence () =
  (* `;` binds tighter than `|`; both right-nest. *)
  Alcotest.(check bool)
    "seq over par" true
    (parse_ok "fwd(1) ; fwd(2) | fwd(3)"
    = P.Ir.Par (P.Ir.Seq (P.Ir.Fwd (A.Physical 1), P.Ir.Fwd (A.Physical 2)),
                P.Ir.Fwd (A.Physical 3)));
  Alcotest.(check bool)
    "parens force par first" true
    (parse_ok "fwd(1) ; (fwd(2) | fwd(3))"
    = P.Ir.Seq (P.Ir.Fwd (A.Physical 1),
                P.Ir.Par (P.Ir.Fwd (A.Physical 2), P.Ir.Fwd (A.Physical 3))));
  (* && over || *)
  match parse_ok "filter true && false || true" with
  | P.Ir.Filter (P.Ir.Or (P.Ir.And (P.Ir.True, P.Ir.False), P.Ir.True)) -> ()
  | p -> Alcotest.failf "unexpected parse: %s" (P.Syntax.to_string p)

(* ------------------------------------------------------------------ *)
(* Unit: interpreter semantics                                        *)
(* ------------------------------------------------------------------ *)

let some_headers : H.t =
  {
    in_port = 1;
    dl_src = mac 0x0a0001;
    dl_dst = mac 0x0a0002;
    dl_vlan = None;
    dl_vlan_pcp = None;
    dl_type = 0x0800;
    nw_src = Some (ip "10.0.0.1");
    nw_dst = Some (ip "10.0.0.2");
    nw_proto = Some 6;
    nw_tos = Some 0;
    tp_src = Some 1234;
    tp_dst = Some 80;
  }

let test_eval_basics () =
  let emitted p h = P.Interp.emitted (P.Interp.eval (parse_ok p) h) h in
  Alcotest.(check int) "drop" 0 (List.length (emitted "drop" some_headers));
  Alcotest.(check int)
    "id emits nothing (no output)" 0
    (List.length (emitted "id" some_headers));
  (match emitted "fwd(7)" some_headers with
  | [ (h, A.Physical 7) ] ->
      Alcotest.(check bool) "unmodified" true (h = some_headers)
  | _ -> Alcotest.fail "fwd(7)");
  (* seq sees the rewritten packet *)
  (match emitted "nw_tos := 46 ; filter nw_tos = 46 ; fwd(1)" some_headers with
  | [ (h, A.Physical 1) ] ->
      Alcotest.(check (option int)) "tos rewritten" (Some 46) h.H.nw_tos
  | _ -> Alcotest.fail "mod;filter;fwd");
  (* the filter sees the original value when it runs first *)
  Alcotest.(check int)
    "filter-first misses" 0
    (List.length
       (emitted "filter nw_tos = 46 ; nw_tos := 46 ; fwd(1)" some_headers));
  (* par duplicates to both ports *)
  (match emitted "fwd(1) | fwd(2)" some_headers with
  | [ (_, A.Physical 1); (_, A.Physical 2) ] -> ()
  | _ -> Alcotest.fail "par fan-out");
  (* a fwd followed by a mod still outputs (NetKAT-style: the packet
     materializes at the end of the seq chain, rewrites included) *)
  match emitted "fwd(1) ; dl_vlan := 10" some_headers with
  | [ (h, A.Physical 1) ] ->
      Alcotest.(check (option int)) "vlan applied" (Some 10) h.H.dl_vlan
  | _ -> Alcotest.fail "fwd;mod"

(* ------------------------------------------------------------------ *)
(* The equivalence sweep: classify (compile p) = eval p, and the      *)
(* compiled action lists replayed through a real Classifier flow      *)
(* table agree with the interpreter's emitted packets.                *)
(* ------------------------------------------------------------------ *)

let equivalence_cases ~policies ~packets_per ~seed () =
  let rng = Netsim.Prng.create ~seed in
  let atom_checked = ref 0 and table_checked = ref 0 in
  for _ = 1 to policies do
    let p = gen_policy rng 3 in
    let cls = ok (P.Compile.compile p) in
    let flows = P.Compile.to_flows p in
    let table =
      match flows with
      | Error _ -> None (* unrealizable atom sets: classifier level only *)
      | Ok rules ->
          let t = Netsim.Flow_table.create ~strategy:Classifier () in
          List.iter
            (fun (r : P.Compile.flow_rule) ->
              Netsim.Flow_table.add t ~now:0. ~of_match:r.of_match
                ~priority:r.priority ~actions:r.actions ())
            rules;
          Some t
    in
    for _ = 1 to packets_per do
      let h = gen_headers rng in
      let want = P.Interp.eval p h in
      let got = P.Compile.classify cls h in
      if got <> want then
        Alcotest.failf "classify/eval mismatch on %s:@ eval %a@ classify %a"
          (P.Syntax.to_string p) P.Ir.pp_atoms want P.Ir.pp_atoms got;
      incr atom_checked;
      match table with
      | None -> ()
      | Some t ->
          let actions =
            match Netsim.Flow_table.lookup t ~now:0. h with
            | Some e -> e.actions
            | None -> []
          in
          let want_emit = P.Interp.emitted want h in
          let got_emit = P.Interp.replay actions h in
          if got_emit <> want_emit then
            Alcotest.failf "flow-table/eval mismatch on %s"
              (P.Syntax.to_string p);
          incr table_checked
    done
  done;
  (!atom_checked, !table_checked)

let test_equivalence () =
  let atoms, tables =
    equivalence_cases ~policies:300 ~packets_per:4 ~seed:0x70110C ()
  in
  Alcotest.(check bool)
    (Fmt.str "atom-level cases >= 1200 (got %d)" atoms)
    true (atoms >= 1200);
  (* the ISSUE gate: >= 500 end-to-end (real flow table) cases *)
  Alcotest.(check bool)
    (Fmt.str "flow-table cases >= 500 (got %d)" tables)
    true (tables >= 500)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let arb_policy =
  let gen st =
    let rng = Netsim.Prng.create ~seed:(QCheck.Gen.int_bound 0xFFFFFF st) in
    gen_policy rng (1 + QCheck.Gen.int_bound 2 st)
  in
  QCheck.make ~print:P.Syntax.to_string gen

let arb_policy_pair =
  QCheck.pair arb_policy arb_policy

let arb_headers =
  QCheck.make
    ~print:(Fmt.to_to_string H.pp)
    (fun st ->
      gen_headers (Netsim.Prng.create ~seed:(QCheck.Gen.int_bound 0xFFFFFF st)))

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (to_string p) = p" ~count:300 arb_policy
    (fun p ->
      match P.Syntax.parse (P.Syntax.to_string p) with
      | Ok p' -> p' = p
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e)

let prop_par_commutes =
  QCheck.Test.make ~name:"par commutes under eval" ~count:200
    (QCheck.pair arb_policy_pair arb_headers)
    (fun ((p, q), h) ->
      P.Interp.eval (P.Ir.Par (p, q)) h = P.Interp.eval (P.Ir.Par (q, p)) h)

let prop_seq_assoc =
  QCheck.Test.make ~name:"seq associates under eval" ~count:200
    (QCheck.pair (QCheck.triple arb_policy arb_policy arb_policy) arb_headers)
    (fun ((p, q, r), h) ->
      P.Interp.eval (P.Ir.Seq (P.Ir.Seq (p, q), r)) h
      = P.Interp.eval (P.Ir.Seq (p, P.Ir.Seq (q, r))) h)

let prop_deterministic =
  QCheck.Test.make ~name:"two compiles are byte-identical" ~count:100
    arb_policy (fun p ->
      match (P.Compile.to_flows p, P.Compile.to_flows p) with
      | Ok a, Ok b -> P.Compile.render a = P.Compile.render b
      | Error a, Error b -> a = b
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Unit: compiler structure                                           *)
(* ------------------------------------------------------------------ *)

let clause i =
  Fmt.str "filter dl_type = 0x0800 && nw_dst = 10.%d.%d.%d ; fwd(%d)"
    (i / 250) (i mod 250) (i mod 7) (1 + (i mod 4))

let big_policy n = String.concat "\n| " (List.init n clause)

let test_disjoint_clauses_stay_linear () =
  let n = 200 in
  let rules = ok (P.Compile.to_flows (parse_ok (big_policy n))) in
  (* disjoint nw_dst clauses: one rule per clause + the catch-all drop *)
  Alcotest.(check bool)
    (Fmt.str "rule count %d <= %d" (List.length rules) (n + 1))
    true
    (List.length rules <= n + 1);
  (* distinct descending priorities, all inside the policy band *)
  let prios = List.map (fun (r : P.Compile.flow_rule) -> r.priority) rules in
  Alcotest.(check bool)
    "descending" true
    (List.for_all2 ( > ) (List.filteri (fun i _ -> i < List.length prios - 1) prios)
       (List.tl prios));
  List.iter
    (fun p ->
      Alcotest.(check bool) "in band" true
        (p > P.Compile.priority_floor && p < P.Compile.priority_base))
    prios

let test_unrealizable_honest () =
  (* two outputs each needing the other's field at its original value,
     nothing pinned by the match: must be a compile error, not a wrong
     action list *)
  (match P.Compile.to_flows
           (parse_ok "(dl_vlan := 5 ; fwd(1)) | (nw_tos := 7 ; fwd(2))")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unrealizable");
  (* same atoms, but the match pins both fields: realizable *)
  let rules =
    ok
      (P.Compile.to_flows
         (parse_ok
            "filter dl_vlan = 9 && nw_tos = 3 ; ((dl_vlan := 5 ; fwd(1)) | \
             (nw_tos := 7 ; fwd(2)))"))
  in
  Alcotest.(check bool) "has rules" true (List.length rules >= 1)

let test_stable_names () =
  (* an unchanged clause keeps its content-addressed name across an
     edit elsewhere in the policy *)
  let names p =
    List.filter_map
      (fun (r : P.Compile.flow_rule) ->
        if r.actions = [] then None else Some (r.name, r.of_match))
      (ok (P.Compile.to_flows (parse_ok p)))
  in
  let a = names (big_policy 50) in
  let b = names (String.concat "\n| " (clause 99 :: List.init 50 clause)) in
  List.iter
    (fun (n, m) ->
      match List.find_opt (fun (_, m') -> M.equal m m') b with
      | Some (n', _) ->
          Alcotest.(check string) "stable name" n n'
      | None -> Alcotest.fail "clause disappeared")
    a

let test_prefix_pin_is_32_only () =
  (* the second output needs nw_dst back at its original value; a /8
     prefix cannot restore it (which original?), a /32 can *)
  (match
     P.Compile.to_flows
       (parse_ok
          "filter nw_dst = 10.0.0.0/8 && dl_vlan = 9 ; ((nw_dst := 10.2.2.2 \
           ; fwd(1)) | (dl_vlan := 5 ; fwd(2)))")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unrealizable under /8");
  let rules =
    ok
      (P.Compile.to_flows
         (parse_ok
            "filter nw_dst = 10.0.0.1 && dl_vlan = 9 ; ((nw_dst := 10.2.2.2 \
             ; fwd(1)) | (dl_vlan := 5 ; fwd(2)))"))
  in
  Alcotest.(check bool) "realizable under /32" true (List.length rules >= 1)

(* ------------------------------------------------------------------ *)
(* The engine: policy files -> fsnotify -> recompile -> diffed        *)
(* install through the commit queue.                                  *)
(* ------------------------------------------------------------------ *)

let cred = Vfs.Cred.root

type rig = {
  ctl : Yanc.Controller.t;
  eng : Apps.Policy_engine.t;
  fs : Vfs.Fs.t;
  net : Netsim.Network.t;
}

let rig ?(switches = 2) () =
  let built = Netsim.Topo_gen.linear switches in
  let ctl = Yanc.Controller.create ~net:built.Netsim.Topo_gen.net () in
  Yanc.Controller.attach_switches ctl;
  let eng = Yanc.Controller.add_policy_engine ctl in
  Yanc.Controller.run_for ctl 0.5;
  { ctl; eng; fs = Yanc.Controller.fs ctl; net = built.Netsim.Topo_gen.net }

let write_policy r name text =
  ok
    (Result.map_error Vfs.Errno.to_string
       (Vfs.Fs.write_file r.fs ~cred (Yancfs.Layout.policy_file name) text));
  Yanc.Controller.run_for r.ctl 0.5

let counter r name =
  Telemetry.Registry.value
    (Telemetry.Registry.counter
       (Telemetry.registry (Yanc.Controller.telemetry r.ctl))
       name)

let pol_flows r switch =
  Yancfs.Yanc_fs.flow_name_set (Yanc.Controller.yfs r.ctl) ~cred switch
  |> Yancfs.Yanc_fs.Name_set.filter (fun n ->
         String.length n > 4 && String.sub n 0 4 = "pol_")
  |> Yancfs.Yanc_fs.Name_set.elements

(* The convergence invariant: each switch's pol_* flows in the file
   system are exactly the desired rules (same names, each with the
   desired match and actions, file priorities in the desired order),
   and the hardware table holds exactly the same (match, actions) set
   in the policy priority band. *)
let assert_converged ?(msg = "") r =
  let desired = Apps.Policy_engine.desired r.eng in
  let by_name =
    List.map (fun (d : P.Compile.flow_rule) -> (d.name, d)) desired
  in
  List.iter
    (fun switch ->
      let installed = pol_flows r switch in
      Alcotest.(check (list string))
        (Fmt.str "%s%s: flow files = desired rules" msg switch)
        (List.sort compare (List.map fst by_name))
        (List.sort compare installed);
      let flows =
        List.map
          (fun name ->
            ( name,
              ok
                (Yancfs.Yanc_fs.read_flow (Yanc.Controller.yfs r.ctl) ~cred
                   ~switch name) ))
          installed
      in
      List.iter
        (fun (name, (f : Yancfs.Flowdir.t)) ->
          let d = List.assoc name by_name in
          Alcotest.(check bool)
            (Fmt.str "%s%s/%s match+actions" msg switch name)
            true
            (M.equal f.of_match d.of_match && f.actions = d.actions))
        flows;
      (* file priorities realize the desired order *)
      let order_of_files =
        List.sort
          (fun (_, (a : Yancfs.Flowdir.t)) (_, b) ->
            compare b.priority a.priority)
          flows
        |> List.map fst
      in
      Alcotest.(check (list string))
        (Fmt.str "%s%s: priority order" msg switch)
        (List.map (fun (d : P.Compile.flow_rule) -> d.name) desired)
        order_of_files;
      (* hardware agrees *)
      let dpid = Option.get (Yancfs.Yanc_fs.switch_dpid (Yanc.Controller.yfs r.ctl) switch) in
      let sw = Option.get (Netsim.Network.switch r.net dpid) in
      let hw =
        match Netsim.Sim_switch.table sw 0 with
        | None -> []
        | Some t ->
            List.filter_map
              (fun (e : Netsim.Flow_table.entry) ->
                if e.priority > P.Compile.priority_floor
                   && e.priority < P.Compile.priority_base
                then Some (e.of_match, e.actions)
                else None)
              (Netsim.Flow_table.entries t)
      in
      let want =
        List.map (fun (d : P.Compile.flow_rule) -> (d.of_match, d.actions)) desired
      in
      Alcotest.(check int)
        (Fmt.str "%s%s: hardware rule count" msg switch)
        (List.length want) (List.length hw);
      Alcotest.(check bool)
        (Fmt.str "%s%s: hardware rules" msg switch)
        true
        (List.sort compare hw = List.sort compare want))
    (Yancfs.Yanc_fs.switch_names (Yanc.Controller.yfs r.ctl))

let test_engine_install_and_update () =
  let r = rig () in
  write_policy r "web" "filter dl_type = 0x0800 && tp_dst = 80 ; fwd(1)";
  Alcotest.(check bool)
    "rules compiled" true
    (List.length (Apps.Policy_engine.desired r.eng) >= 1);
  assert_converged ~msg:"install: " r;
  (* a second file composes in parallel *)
  write_policy r "arp" "filter dl_type = 0x0806 ; controller";
  assert_converged ~msg:"compose: " r;
  (* editing a file recompiles *)
  write_policy r "web" "filter dl_type = 0x0800 && tp_dst = 443 ; fwd(2)";
  assert_converged ~msg:"edit: " r;
  (* deleting every file uninstalls *)
  ok
    (Result.map_error Vfs.Errno.to_string
       (Vfs.Fs.unlink r.fs ~cred (Yancfs.Layout.policy_file "web")));
  ok
    (Result.map_error Vfs.Errno.to_string
       (Vfs.Fs.unlink r.fs ~cred (Yancfs.Layout.policy_file "arp")));
  Yanc.Controller.run_for r.ctl 0.5;
  Alcotest.(check int)
    "uninstalled" 0
    (List.length (Apps.Policy_engine.desired r.eng) + List.length (pol_flows r "sw1"))

let test_engine_late_switch () =
  (* a switch that appears after the policy is installed gets it too *)
  let r = rig ~switches:1 () in
  write_policy r "p" "filter dl_type = 0x0800 ; flood";
  assert_converged ~msg:"before: " r;
  let yfs = Yanc.Controller.yfs r.ctl in
  ok
    (Result.map_error Vfs.Errno.to_string
       (Yancfs.Yanc_fs.add_switch yfs
          ~name:(Yancfs.Yanc_fs.switch_name_of_dpid 77L) ~dpid:77L
          ~protocol:"sim" ~n_buffers:256 ~n_tables:1 ~capabilities:[]
          ~actions:[]));
  Yanc.Controller.run_for r.ctl 0.5;
  let sw77 = Yancfs.Yanc_fs.switch_name_of_dpid 77L in
  Alcotest.(check bool)
    "late switch has the policy" true
    (pol_flows r sw77 <> [])

let read_errors r name =
  Vfs.Fs.read_file r.fs ~cred (Yancfs.Layout.policy_error name)

let test_engine_survives_malformed () =
  let r = rig ~switches:1 () in
  write_policy r "good" "filter dl_type = 0x0806 ; controller";
  assert_converged ~msg:"good: " r;
  let installed = List.length (Apps.Policy_engine.desired r.eng) in
  let errors0 = counter r "policy.compile_errors" in
  (* 1: syntax error *)
  write_policy r "bad_syntax" "filter dl_type = ; fwd(";
  (* 2: unknown field *)
  write_policy r "bad_field" "filter dl_himalaya = 3 ; fwd(1)";
  (* 3: empty file *)
  write_policy r "bad_empty" "";
  List.iter
    (fun name ->
      match read_errors r name with
      | Ok msg ->
          Alcotest.(check bool)
            (Fmt.str ".errors/%s non-empty" name)
            true
            (String.length msg > 0)
      | Error e ->
          Alcotest.failf ".errors/%s missing: %s" name (Vfs.Errno.to_string e))
    [ "bad_syntax"; "bad_field"; "bad_empty" ];
  Alcotest.(check bool)
    "policy.compile_errors counted" true
    (counter r "policy.compile_errors" >= errors0 + 3);
  (* the engine is alive and the good policy is still installed *)
  Alcotest.(check int)
    "good rules kept" installed
    (List.length (Apps.Policy_engine.desired r.eng));
  assert_converged ~msg:"after bad: " r;
  (* fixing a bad file clears its error and recompiles *)
  write_policy r "bad_field" "filter dl_type = 0x0800 ; fwd(1)";
  (match read_errors r "bad_field" with
  | Error Vfs.Errno.ENOENT -> ()
  | Ok _ -> Alcotest.fail ".errors/bad_field should be cleared"
  | Error e -> Alcotest.failf "unexpected: %s" (Vfs.Errno.to_string e));
  Alcotest.(check bool)
    "recompiled with the fix" true
    (List.length (Apps.Policy_engine.desired r.eng) > installed);
  assert_converged ~msg:"after fix: " r

let test_engine_unrealizable_keeps_last_good () =
  let r = rig ~switches:1 () in
  write_policy r "p" "filter tp_dst = 80 ; fwd(1)";
  let good = Apps.Policy_engine.desired r.eng in
  Alcotest.(check bool) "installed" true (good <> []);
  (* an unrealizable composition: compile error at the policy level *)
  write_policy r "q" "(dl_vlan := 5 ; fwd(1)) | (nw_tos := 7 ; fwd(2))";
  (match read_errors r "_policy" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail ".errors/_policy missing");
  Alcotest.(check (list string))
    "last good rules kept"
    (List.map (fun (d : P.Compile.flow_rule) -> d.name) good)
    (List.map
       (fun (d : P.Compile.flow_rule) -> d.name)
       (Apps.Policy_engine.desired r.eng));
  assert_converged ~msg:"kept: " r;
  ok
    (Result.map_error Vfs.Errno.to_string
       (Vfs.Fs.unlink r.fs ~cred (Yancfs.Layout.policy_file "q")));
  Yanc.Controller.run_for r.ctl 0.5;
  match read_errors r "_policy" with
  | Error Vfs.Errno.ENOENT -> assert_converged ~msg:"recovered: " r
  | _ -> Alcotest.fail ".errors/_policy should be cleared"

let test_engine_incremental_commits () =
  (* the ISSUE gate: a one-clause edit of a >=200-rule installed policy
     issues <= 10% of the flow_mods a full install does, measured at
     the driver.commit.* counters *)
  let r = rig ~switches:1 () in
  let n = 200 in
  let mods r = counter r "driver.commit.adds" + counter r "driver.commit.deletes" in
  let before_full = mods r in
  write_policy r "big" (big_policy n);
  Yanc.Controller.run_for r.ctl 2.0;
  assert_converged ~msg:"full: " r;
  let full_cost = mods r - before_full in
  Alcotest.(check bool)
    (Fmt.str "full install programs >= %d rules (cost %d)" n full_cost)
    true (full_cost >= n);
  (* rewrite one clause *)
  let edited =
    String.concat "\n| "
      (List.init n (fun i -> if i = 100 then clause 999 else clause i))
  in
  let before_edit = mods r in
  write_policy r "big" edited;
  Yanc.Controller.run_for r.ctl 2.0;
  assert_converged ~msg:"edited: " r;
  let edit_cost = mods r - before_edit in
  Alcotest.(check bool)
    (Fmt.str "one-clause edit cost %d <= 10%% of full %d" edit_cost full_cost)
    true
    (edit_cost * 10 <= full_cost)

let test_proc_policy_report () =
  let r = rig ~switches:1 () in
  write_policy r "p" "filter dl_type = 0x0806 ; controller";
  write_policy r "broken" "fwd(";
  let report =
    ok
      (Result.map_error Vfs.Errno.to_string
         (Vfs.Fs.read_file r.fs ~cred
            (Yancfs.Layout.proc_policy ~proc:Yancfs.Layout.default_proc_root)))
  in
  let has needle =
    let nl = String.length needle and rl = String.length report in
    let rec go i = i + nl <= rl && (String.sub report i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "lists files" true (has "files 2");
  Alcotest.(check bool) "flags the broken file" true (has "file broken error")

let () =
  Alcotest.run "policy"
    [
      ( "syntax",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "precedence" `Quick test_precedence;
        ] );
      ("interp", [ Alcotest.test_case "basics" `Quick test_eval_basics ]);
      ( "equivalence",
        [ Alcotest.test_case "compile = eval (1200 cases)" `Quick test_equivalence ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_par_commutes; prop_seq_assoc; prop_deterministic ] );
      ( "compiler",
        [
          Alcotest.test_case "disjoint clauses stay linear" `Quick
            test_disjoint_clauses_stay_linear;
          Alcotest.test_case "unrealizable is an error" `Quick
            test_unrealizable_honest;
          Alcotest.test_case "content-addressed names are stable" `Quick
            test_stable_names;
          Alcotest.test_case "only /32 prefixes pin restores" `Quick
            test_prefix_pin_is_32_only;
        ] );
      ( "engine",
        [
          Alcotest.test_case "install, compose, edit, uninstall" `Quick
            test_engine_install_and_update;
          Alcotest.test_case "late switch gets the policy" `Quick
            test_engine_late_switch;
          Alcotest.test_case "malformed files do not tear it down" `Quick
            test_engine_survives_malformed;
          Alcotest.test_case "unrealizable compose keeps last good" `Quick
            test_engine_unrealizable_keeps_last_good;
          Alcotest.test_case "one-clause edit is O(changed) flow_mods" `Quick
            test_engine_incremental_commits;
          Alcotest.test_case "/yanc/.proc/policy report" `Quick
            test_proc_policy_report;
        ] );
    ]
