(* Tests for the distributed file-system layer (paper §6): replication,
   consistency models, partitions, and the distributed-controller
   proof of concept. *)

module Fs = Vfs.Fs
module Path = Vfs.Path
module Y = Yancfs

let cred = Vfs.Cred.root

let p = Path.of_string_exn

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.Errno.to_string e)

let read_on node path =
  match Fs.read_file node ~cred (p path) with
  | Ok v -> Some v
  | Error _ -> None

let test_sequential_everywhere_at_once () =
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~n:3 () in
  ok (Fs.mkdir (Dfs.Cluster.node c 0) ~cred (p "/net"));
  ok (Fs.write_file (Dfs.Cluster.node c 0) ~cred (p "/net/flag") "up");
  (* no advance needed: sequential writes block until replicated *)
  Alcotest.(check (option string)) "node 1 sees it" (Some "up")
    (read_on (Dfs.Cluster.node c 1) "/net/flag");
  Alcotest.(check (option string)) "node 2 sees it" (Some "up")
    (read_on (Dfs.Cluster.node c 2) "/net/flag");
  Alcotest.(check bool) "converged" true (Dfs.Cluster.converged c)

let test_sequential_writer_blocks () =
  let c =
    Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~rtt:0.002 ~n:4 ()
  in
  ok (Fs.write_file (Dfs.Cluster.node c 0) ~cred (p "/f") "x");
  let m = Dfs.Cluster.metrics c in
  (* one create + one write op, each stalls 3 RTTs (3 other replicas) *)
  Alcotest.(check bool) "writer paid replication rounds" true
    (m.Dfs.Cluster.writer_blocked_s >= 0.012 -. 1e-9);
  Alcotest.(check int) "replicated to 3 peers per op" 6 m.Dfs.Cluster.ops_replicated

let test_close_to_open_staleness_window () =
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.nfs ~n:2 () in
  ok (Fs.write_file (Dfs.Cluster.node c 0) ~cred (p "/f") "v1");
  (* NFS attribute cache: not yet visible remotely *)
  Alcotest.(check (option string)) "stale remote read" None
    (read_on (Dfs.Cluster.node c 1) "/f");
  Dfs.Cluster.advance c 1.0;
  Alcotest.(check (option string)) "still inside the 3s window" None
    (read_on (Dfs.Cluster.node c 1) "/f");
  Dfs.Cluster.advance c 2.5;
  Alcotest.(check (option string)) "visible after the window" (Some "v1")
    (read_on (Dfs.Cluster.node c 1) "/f");
  Alcotest.(check bool) "converged" true (Dfs.Cluster.converged c)

let test_eventual_propagation () =
  let c =
    Dfs.Cluster.create
      ~consistency:(Dfs.Consistency.Eventual { propagation_s = 0.5 })
      ~n:3 ()
  in
  ok (Fs.write_file (Dfs.Cluster.node c 2) ~cred (p "/f") "from-2");
  Alcotest.(check bool) "pending" true (Dfs.Cluster.pending c > 0);
  Dfs.Cluster.advance c 0.6;
  Alcotest.(check (option string)) "reached node 0" (Some "from-2")
    (read_on (Dfs.Cluster.node c 0) "/f");
  (* writes on replicas do not echo back forever *)
  Alcotest.(check bool) "no echo storm" true (Dfs.Cluster.converged c)

let test_flush () =
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.nfs ~n:2 () in
  ok (Fs.write_file (Dfs.Cluster.node c 0) ~cred (p "/f") "x");
  Dfs.Cluster.flush c;
  Alcotest.(check (option string)) "flush forces visibility" (Some "x")
    (read_on (Dfs.Cluster.node c 1) "/f")

let test_all_op_kinds_replicate () =
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~n:2 () in
  let a = Dfs.Cluster.node c 0
  and b = Dfs.Cluster.node c 1 in
  ok (Fs.mkdir_p a ~cred (p "/d/sub"));
  ok (Fs.write_file a ~cred (p "/d/f") "1");
  ok (Fs.symlink a ~cred ~target:"/d/f" (p "/d/l"));
  ok (Fs.chmod a ~cred (p "/d/f") 0o600);
  ok (Fs.setxattr a ~cred (p "/d/f") ~name:"k" ~value:"v");
  ok (Fs.rename a ~cred ~src:(p "/d/f") ~dst:(p "/d/g"));
  Alcotest.(check (option string)) "content after rename" (Some "1")
    (read_on b "/d/g");
  Alcotest.(check string) "symlink" "/d/f" (ok (Fs.readlink b ~cred (p "/d/l")));
  Alcotest.(check string) "xattr" "v"
    (ok (Fs.getxattr b ~cred (p "/d/g") ~name:"k"));
  Alcotest.(check int) "mode" 0o600 (ok (Fs.stat b ~cred (p "/d/g"))).Fs.mode;
  ok (Fs.rmdir ~recursive:true a ~cred (p "/d"));
  Alcotest.(check bool) "tree removal replicated" false (Fs.exists b ~cred (p "/d"))

let test_partition_and_heal () =
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~n:3 () in
  ok (Fs.mkdir (Dfs.Cluster.node c 0) ~cred (p "/net"));
  Dfs.Cluster.set_partitioned c 2 true;
  ok (Fs.write_file (Dfs.Cluster.node c 0) ~cred (p "/net/during") "cutoff");
  Alcotest.(check (option string)) "node 1 got it" (Some "cutoff")
    (read_on (Dfs.Cluster.node c 1) "/net/during");
  Alcotest.(check (option string)) "node 2 did not" None
    (read_on (Dfs.Cluster.node c 2) "/net/during");
  (* writes on the partitioned node queue too *)
  ok (Fs.write_file (Dfs.Cluster.node c 2) ~cred (p "/net/island") "lonely");
  Alcotest.(check (option string)) "island write local only" None
    (read_on (Dfs.Cluster.node c 0) "/net/island");
  (* heal: both directions reconcile *)
  Dfs.Cluster.set_partitioned c 2 false;
  Alcotest.(check (option string)) "node 2 caught up" (Some "cutoff")
    (read_on (Dfs.Cluster.node c 2) "/net/during");
  Alcotest.(check (option string)) "island published" (Some "lonely")
    (read_on (Dfs.Cluster.node c 0) "/net/island");
  Alcotest.(check bool) "converged after heal" true (Dfs.Cluster.converged c)

let test_visibility_delay_values () =
  Alcotest.(check (float 1e-9)) "sequential" 0.
    (Dfs.Consistency.visibility_delay Dfs.Consistency.Sequential);
  Alcotest.(check (float 1e-9)) "nfs" 3.0
    (Dfs.Consistency.visibility_delay Dfs.Consistency.nfs);
  Alcotest.(check (float 1e-9)) "sequential writer stall"
    0.006
    (Dfs.Consistency.write_blocks_for Dfs.Consistency.Sequential ~rtt:0.002
       ~replicas:4);
  Alcotest.(check (float 1e-9)) "async writer free" 0.
    (Dfs.Consistency.write_blocks_for Dfs.Consistency.nfs ~rtt:0.002 ~replicas:4)

(* --- the §6 proof of concept: a distributed yanc controller ------------------------- *)

let test_distributed_controller () =
  (* Node A hosts the driver (it owns the control channel to the
     switch); node B is a remote controller machine. A flow written on
     node B's replica must reach the hardware through node A's driver —
     "when an application on another machine writes to a file
     representing a flow entry, that will show up on the device". *)
  let built = Netsim.Topo_gen.linear ~hosts_per_switch:2 1 in
  let fs_a = Fs.create () in
  let fs_b = Fs.create () in
  let yfs_a = Y.Yanc_fs.create fs_a in
  let yfs_b = Y.Yanc_fs.create fs_b in
  let cluster =
    Dfs.Cluster.of_replicas ~consistency:Dfs.Consistency.Sequential [ fs_a; fs_b ]
  in
  let mgr = Driver.Manager.create ~yfs:yfs_a ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  (* the handshake's writes replicated to node B *)
  Alcotest.(check (list string)) "node B sees the switch" [ "sw1" ]
    (Y.Yanc_fs.switch_names yfs_b);
  (* remote admin on node B pushes a flow *)
  (match
     Apps.Flow_pusher.push_config yfs_b ~cred
       "sw1 name=flood priority=1 action.0.out=flood"
   with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "pushed %d" n
  | Error e -> Alcotest.fail e);
  (* replication delivered it to node A, whose driver programs hardware *)
  Driver.Manager.run_control mgr ~now:1.;
  let sw = Option.get (Netsim.Network.switch built.net 1L) in
  (match Netsim.Sim_switch.table sw 0 with
  | Some t -> Alcotest.(check int) "hardware programmed from remote write" 1
                (Netsim.Flow_table.length t)
  | None -> Alcotest.fail "no table");
  (* and the data plane works *)
  let h1 = Option.get (Netsim.Network.host built.net "h1") in
  Netsim.Network.send_from_host built.net "h1"
    (Netsim.Sim_host.ping h1 ~now:0. ~dst:(Netsim.Topo_gen.host_ip 2) ~seq:1);
  Netsim.Network.run built.net;
  Alcotest.(check int) "ping through remotely-written flow" 1
    (List.length (Netsim.Sim_host.ping_results h1));
  ignore cluster

let test_distributed_counters_flow_back () =
  (* Counters written by node A's driver become visible on node B. *)
  let built = Netsim.Topo_gen.linear ~hosts_per_switch:2 1 in
  let fs_a = Fs.create () in
  let fs_b = Fs.create () in
  let yfs_a = Y.Yanc_fs.create fs_a in
  let yfs_b = Y.Yanc_fs.create fs_b in
  let cluster =
    Dfs.Cluster.of_replicas ~consistency:(Dfs.Consistency.Eventual { propagation_s = 0.1 })
      [ fs_a; fs_b ]
  in
  let mgr = Driver.Manager.create ~yfs:yfs_a ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  Dfs.Cluster.advance cluster 0.2;
  ignore
    (Apps.Flow_pusher.push_config yfs_a ~cred
       "sw1 name=flood priority=1 action.0.out=flood");
  Driver.Manager.run_control mgr ~now:1.;
  let h1 = Option.get (Netsim.Network.host built.net "h1") in
  Netsim.Network.send_from_host built.net "h1"
    (Netsim.Sim_host.ping h1 ~now:0. ~dst:(Netsim.Topo_gen.host_ip 2) ~seq:1);
  Netsim.Network.run built.net;
  (* past the stats interval *)
  Driver.Manager.run_control mgr ~now:6.;
  Dfs.Cluster.advance cluster 1.0;
  let counters =
    Y.Layout.flow_counters ~root:(Y.Yanc_fs.root yfs_b) ~switch:"sw1" "flood"
  in
  match Fs.read_file fs_b ~cred (Path.child counters "packets") with
  | Ok v ->
    Alcotest.(check bool) "remote node reads live counters" true
      (int_of_string (String.trim v) > 0)
  | Error e -> Alcotest.failf "counters missing remotely: %s" (Vfs.Errno.to_string e)

let test_xattr_consistency_strict () =
  (* §5.1: an xattr marks a subtree as requiring strict consistency even
     in an eventually consistent cluster. *)
  let c =
    Dfs.Cluster.create
      ~consistency:(Dfs.Consistency.Eventual { propagation_s = 60. })
      ~n:2 ()
  in
  let a = Dfs.Cluster.node c 0 in
  ok (Fs.mkdir a ~cred (p "/net"));
  Dfs.Cluster.flush c;
  ok (Fs.mkdir a ~cred (p "/net/critical"));
  Dfs.Cluster.flush c;
  ok
    (Fs.setxattr a ~cred (p "/net/critical") ~name:Dfs.Cluster.consistency_xattr
       ~value:"strict");
  Dfs.Cluster.flush c;
  (* writes under the annotated dir are synchronous... *)
  ok (Fs.write_file a ~cred (p "/net/critical/flow") "now");
  Alcotest.(check (option string)) "strict write visible immediately" (Some "now")
    (read_on (Dfs.Cluster.node c 1) "/net/critical/flow");
  (* ...while ordinary writes still lag *)
  ok (Fs.write_file a ~cred (p "/net/lazy") "later");
  Alcotest.(check (option string)) "default write still lazy" None
    (read_on (Dfs.Cluster.node c 1) "/net/lazy");
  Alcotest.(check string) "introspection" "sequential"
    (Dfs.Consistency.to_string
       (Dfs.Cluster.effective_consistency c ~origin:0 (p "/net/critical/flow")))

let test_xattr_consistency_relaxed () =
  (* the inverse: a "relaxed" subtree defers even under Sequential *)
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~n:2 () in
  let a = Dfs.Cluster.node c 0 in
  ok (Fs.mkdir a ~cred (p "/bulk"));
  ok
    (Fs.setxattr a ~cred (p "/bulk") ~name:Dfs.Cluster.consistency_xattr
       ~value:"relaxed");
  ok (Fs.write_file a ~cred (p "/bulk/stats") "big");
  Alcotest.(check (option string)) "relaxed write deferred" None
    (read_on (Dfs.Cluster.node c 1) "/bulk/stats");
  Dfs.Cluster.advance c 2.0;
  Alcotest.(check (option string)) "arrives later" (Some "big")
    (read_on (Dfs.Cluster.node c 1) "/bulk/stats")

let test_work_distribution_across_nodes () =
  (* The paper's PoC "distributed computational workload among multiple
     machines": sw1's driver runs on node A, sw2's on node B, and the
     flow-pushing administrator on node C — three machines, one logical
     controller. *)
  let built = Netsim.Topo_gen.linear ~hosts_per_switch:1 2 in
  let fs_a = Fs.create ()
  and fs_b = Fs.create ()
  and fs_c = Fs.create () in
  let yfs_a = Y.Yanc_fs.create fs_a
  and yfs_b = Y.Yanc_fs.create fs_b
  and yfs_c = Y.Yanc_fs.create fs_c in
  let _cluster =
    Dfs.Cluster.of_replicas ~consistency:Dfs.Consistency.Sequential
      [ fs_a; fs_b; fs_c ]
  in
  let mgr_a = Driver.Manager.create ~yfs:yfs_a ~net:built.net () in
  let mgr_b = Driver.Manager.create ~yfs:yfs_b ~net:built.net () in
  Driver.Manager.attach mgr_a ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.attach mgr_b ~dpid:2L ~version:Driver.Manager.V13;
  Driver.Manager.run_control mgr_a ~now:0.;
  Driver.Manager.run_control mgr_b ~now:0.;
  (* node C (no driver at all) sees both switches and pushes to both *)
  Alcotest.(check (list string)) "node C sees both" [ "sw1"; "sw2" ]
    (Y.Yanc_fs.switch_names yfs_c);
  (match
     Apps.Flow_pusher.push_config yfs_c ~cred
       "* name=flood priority=1 action.0.out=flood"
   with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "pushed %d" n
  | Error e -> Alcotest.fail e);
  Driver.Manager.run_control mgr_a ~now:1.;
  Driver.Manager.run_control mgr_b ~now:1.;
  let h1 = Option.get (Netsim.Network.host built.net "h1") in
  Netsim.Network.send_from_host built.net "h1"
    (Netsim.Sim_host.ping h1 ~now:0. ~dst:(Netsim.Topo_gen.host_ip 2) ~seq:1);
  Netsim.Network.run built.net;
  Alcotest.(check int) "ping across switches driven by different machines" 1
    (List.length (Netsim.Sim_host.ping_results h1))

let test_kandoo_style_device_local_control () =
  (* §7.1: the device itself runs yanc and application software, under
     the direction of the global view. Node 0 is "the switch" (driver +
     a local learning app over its own replica); node 1 is the remote
     controller machine, which only observes files — yet sees the local
     app's flows appear, and can override them. *)
  let built = Netsim.Topo_gen.linear ~hosts_per_switch:2 1 in
  let device_fs = Fs.create () in
  let server_fs = Fs.create () in
  let device_yfs = Y.Yanc_fs.create device_fs in
  let server_yfs = Y.Yanc_fs.create server_fs in
  let _cluster =
    Dfs.Cluster.of_replicas ~consistency:Dfs.Consistency.Sequential
      [ device_fs; server_fs ]
  in
  let mgr = Driver.Manager.create ~yfs:device_yfs ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  let learner = Apps.Learning_switch.create device_yfs in
  (* traffic makes the device-local app learn and install flows *)
  let h1 = Option.get (Netsim.Network.host built.net "h1") in
  Netsim.Network.send_from_host built.net "h1"
    (Netsim.Sim_host.ping h1 ~now:0. ~dst:(Netsim.Topo_gen.host_ip 2) ~seq:1);
  let budget = ref 50 in
  while Netsim.Sim_host.ping_results h1 = [] && !budget > 0 do
    decr budget;
    Netsim.Network.run built.net;
    Apps.Learning_switch.run learner ~now:0.;
    Driver.Manager.run_control mgr ~now:0.
  done;
  Alcotest.(check bool) "local control plane works" true
    (Netsim.Sim_host.ping_results h1 <> []);
  (* the remote server sees the device-resident app's flows as files *)
  let remote_view = Y.Yanc_fs.flow_names server_yfs ~cred "sw1" in
  Alcotest.(check bool) "server observes locally-installed flows" true
    (List.length remote_view >= 1);
  (* and global policy written at the server lands on the device *)
  ignore
    (Apps.Flow_pusher.push_config server_yfs ~cred
       "sw1 name=global-override priority=60000 match.dl_type=0x0800 \
        match.nw_proto=6 match.tp_dst=23 action.0.out=drop");
  Driver.Manager.run_control mgr ~now:1.;
  let sw = Option.get (Netsim.Network.switch built.net 1L) in
  let has_override =
    match Netsim.Sim_switch.table sw 0 with
    | Some t ->
      List.exists
        (fun (e : Netsim.Flow_table.entry) -> e.priority = 60000)
        (Netsim.Flow_table.entries t)
    | None -> false
  in
  Alcotest.(check bool) "global override programmed on the device" true has_override

let test_metrics () =
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.nfs ~n:3 () in
  for i = 1 to 5 do
    ok (Fs.write_file (Dfs.Cluster.node c 0) ~cred (p (Printf.sprintf "/f%d" i)) "x")
  done;
  let m = Dfs.Cluster.metrics c in
  (* 5 files x (create + write) = 10 origin ops *)
  Alcotest.(check int) "ops originated" 10 m.Dfs.Cluster.ops_originated;
  Alcotest.(check bool) "queue high-water" true (m.Dfs.Cluster.max_queue >= 10);
  Dfs.Cluster.flush c;
  let m2 = Dfs.Cluster.metrics c in
  (* each fresh file's [Create] is made redundant by its whole-file
     [Write] (replay creates on ENOENT), so only the 5 writes travel *)
  Alcotest.(check int) "replicated to both peers" 10 m2.Dfs.Cluster.ops_replicated

let test_fsnotify_fires_on_replica () =
  (* The property the distributed driver depends on: watchers on a
     replica see replicated ops. *)
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~n:2 () in
  let remote = Dfs.Cluster.node c 1 in
  let notifier = Fsnotify.Notifier.create remote in
  ignore (Fs.mkdir remote ~cred (p "/watched"));
  ignore
    (Fsnotify.Notifier.add_watch notifier (p "/watched") Fsnotify.Notifier.all);
  ok (Fs.write_file (Dfs.Cluster.node c 0) ~cred (p "/watched/f") "remote-write");
  let events = Fsnotify.Notifier.read_events notifier in
  Alcotest.(check bool) "watcher fired for a remote write" true
    (List.exists (fun (e : Fsnotify.Event.t) -> e.name = Some "f") events)

let test_dcache_invalidated_by_replication () =
  (* Replicated ops arrive via [Fs.replay ~emit:false] — they must
     invalidate the replica's dentry/attribute cache exactly as local
     mutations do, or warm replica reads serve stale state. *)
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~n:2 () in
  let origin = Dfs.Cluster.node c 0 in
  let remote = Dfs.Cluster.node c 1 in
  let alice = Vfs.Cred.make ~uid:100 ~gid:100 () in
  ok (Fs.mkdir origin ~cred (p "/d"));
  ok (Fs.write_file origin ~cred (p "/d/f") "v1");
  (* warm the remote cache: positive, negative, and a permission decision *)
  Alcotest.(check (option string)) "warm positive" (Some "v1") (read_on remote "/d/f");
  Alcotest.(check (option string)) "warm negative" None (read_on remote "/d/g");
  Alcotest.(check bool) "warm alice decision" true
    (Result.is_ok (Fs.read_file remote ~cred:alice (p "/d/f")));
  (* structural invalidation: replicated create kills the negative entry *)
  ok (Fs.write_file origin ~cred (p "/d/g") "new");
  Alcotest.(check (option string)) "negative expired" (Some "new")
    (read_on remote "/d/g");
  (* attribute invalidation: replicated chmod revokes the cached decision *)
  ok (Fs.chmod origin ~cred (p "/d") 0o700);
  Alcotest.(check bool) "alice revoked on replica" true
    (Fs.read_file remote ~cred:alice (p "/d/f") = Error Vfs.Errno.EACCES);
  (* prefix invalidation: replicated rename moves warm paths *)
  ok (Fs.rename origin ~cred ~src:(p "/d") ~dst:(p "/e"));
  Alcotest.(check (option string)) "old prefix dead" None (read_on remote "/d/f");
  Alcotest.(check (option string)) "new prefix live" (Some "v1")
    (read_on remote "/e/f")

let () =
  Alcotest.run "dfs"
    [ ( "consistency",
        [ Alcotest.test_case "sequential immediate" `Quick
            test_sequential_everywhere_at_once;
          Alcotest.test_case "sequential writer blocks" `Quick
            test_sequential_writer_blocks;
          Alcotest.test_case "close-to-open staleness" `Quick
            test_close_to_open_staleness_window;
          Alcotest.test_case "eventual propagation" `Quick test_eventual_propagation;
          Alcotest.test_case "flush" `Quick test_flush;
          Alcotest.test_case "model parameters" `Quick test_visibility_delay_values ] );
      ( "replication",
        [ Alcotest.test_case "all op kinds" `Quick test_all_op_kinds_replicate;
          Alcotest.test_case "partition + heal" `Quick test_partition_and_heal;
          Alcotest.test_case "xattr strict override" `Quick
            test_xattr_consistency_strict;
          Alcotest.test_case "xattr relaxed override" `Quick
            test_xattr_consistency_relaxed;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "fsnotify on replica" `Quick test_fsnotify_fires_on_replica;
          Alcotest.test_case "dcache invalidated by replication" `Quick
            test_dcache_invalidated_by_replication ] );
      ( "distributed-controller",
        [ Alcotest.test_case "remote write reaches hardware" `Quick
            test_distributed_controller;
          Alcotest.test_case "counters flow back" `Quick
            test_distributed_counters_flow_back;
          Alcotest.test_case "kandoo-style device-local control" `Quick
            test_kandoo_style_device_local_control;
          Alcotest.test_case "work distribution across machines" `Quick
            test_work_distribution_across_nodes ] ) ]
