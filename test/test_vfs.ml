(* Unit and property tests for the VFS substrate. *)

module Fs = Vfs.Fs
module Path = Vfs.Path
module Cred = Vfs.Cred

let cred = Cred.root

let p = Path.of_string_exn

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error %s" what (Vfs.Errno.to_string e)

let check_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" what (Vfs.Errno.to_string expected)
  | Error e ->
    Alcotest.(check string) what (Vfs.Errno.to_string expected) (Vfs.Errno.to_string e)

let fresh () = Fs.create ()

(* --- Path ---------------------------------------------------------------- *)

let test_path_parse () =
  Alcotest.(check string) "root" "/" (Path.to_string (p "/"));
  Alcotest.(check string) "simple" "/a/b" (Path.to_string (p "/a/b"));
  Alcotest.(check string) "trailing slash" "/a" (Path.to_string (p "/a/"));
  Alcotest.(check string) "double slash" "/a/b" (Path.to_string (p "/a//b"));
  Alcotest.(check string) "dot" "/a/b" (Path.to_string (p "/a/./b"));
  Alcotest.(check string) "dotdot" "/b" (Path.to_string (p "/a/../b"));
  Alcotest.(check string) "dotdot at root" "/a" (Path.to_string (p "/../a"));
  Alcotest.(check bool) "empty is error" true (Result.is_error (Path.of_string ""))

let test_path_relatives () =
  Alcotest.(check string) "relative parses from root" "/x/y" (Path.to_string (p "x/y"));
  Alcotest.(check (option string)) "parent" (Some "/a")
    (Option.map Path.to_string (Path.parent (p "/a/b")));
  Alcotest.(check (option string)) "parent of root" None
    (Option.map Path.to_string (Path.parent Path.root));
  Alcotest.(check (option string)) "basename" (Some "b") (Path.basename (p "/a/b"));
  Alcotest.(check bool) "prefix yes" true (Path.is_prefix (p "/a") (p "/a/b/c"));
  Alcotest.(check bool) "prefix no" false (Path.is_prefix (p "/a/b") (p "/a"));
  Alcotest.(check bool) "prefix not component-split" false
    (Path.is_prefix (p "/a") (p "/ab"));
  Alcotest.(check (option string)) "strip_prefix" (Some "/b/c")
    (Option.map Path.to_string (Path.strip_prefix ~prefix:(p "/a") (p "/a/b/c")))

let test_path_valid_name () =
  Alcotest.(check bool) "plain" true (Path.valid_name "sw1");
  Alcotest.(check bool) "empty" false (Path.valid_name "");
  Alcotest.(check bool) "dot" false (Path.valid_name ".");
  Alcotest.(check bool) "dotdot" false (Path.valid_name "..");
  Alcotest.(check bool) "slash" false (Path.valid_name "a/b");
  Alcotest.(check bool) "nul" false (Path.valid_name "a\000b");
  Alcotest.(check bool) "long" false (Path.valid_name (String.make 256 'x'))

(* --- Perm / Acl ------------------------------------------------------------ *)

let test_perm_check () =
  let owner = Cred.make ~uid:10 ~gid:20 () in
  let groupie = Cred.make ~uid:11 ~gid:20 () in
  let other = Cred.make ~uid:12 ~gid:21 () in
  let check c a = Vfs.Perm.check ~mode:0o640 ~owner:10 ~group:20 c a in
  Alcotest.(check bool) "owner read" true (check owner Vfs.Perm.r_ok);
  Alcotest.(check bool) "owner write" true (check owner Vfs.Perm.w_ok);
  Alcotest.(check bool) "owner no exec" false (check owner Vfs.Perm.x_ok);
  Alcotest.(check bool) "group read" true (check groupie Vfs.Perm.r_ok);
  Alcotest.(check bool) "group no write" false (check groupie Vfs.Perm.w_ok);
  Alcotest.(check bool) "other nothing" false (check other Vfs.Perm.r_ok);
  Alcotest.(check bool) "root everything" true
    (Vfs.Perm.check ~mode:0 ~owner:10 ~group:20 Cred.root Vfs.Perm.w_ok)

let test_perm_string () =
  Alcotest.(check string) "755" "drwxr-xr-x" (Vfs.Perm.to_string ~kind:'d' 0o755);
  Alcotest.(check string) "640" "-rw-r-----" (Vfs.Perm.to_string ~kind:'-' 0o640);
  Alcotest.(check (option int)) "parse" (Some 0o755) (Vfs.Perm.of_string "rwxr-xr-x");
  Alcotest.(check (option int)) "parse bad" None (Vfs.Perm.of_string "rwxr-xr-q")

let test_acl_check () =
  let alice = Cred.make ~uid:100 ~gid:100 () in
  let bob = Cred.make ~uid:101 ~gid:101 () in
  (* file owned by 1:1, mode 600, but ACL grants bob read *)
  let acl =
    Vfs.Acl.add
      (Vfs.Acl.add Vfs.Acl.empty { Vfs.Acl.tag = Vfs.Acl.User 101; perms = 4 })
      { Vfs.Acl.tag = Vfs.Acl.Mask; perms = 7 }
  in
  let check c a = Vfs.Acl.check ~acl ~mode:0o600 ~owner:1 ~group:1 c a in
  Alcotest.(check bool) "bob can read via acl" true (check bob Vfs.Perm.r_ok);
  Alcotest.(check bool) "bob cannot write" false (check bob Vfs.Perm.w_ok);
  Alcotest.(check bool) "alice cannot read" false (check alice Vfs.Perm.r_ok)

let test_acl_mask () =
  let bob = Cred.make ~uid:101 ~gid:101 () in
  let acl =
    Vfs.Acl.add
      (Vfs.Acl.add Vfs.Acl.empty { Vfs.Acl.tag = Vfs.Acl.User 101; perms = 7 })
      { Vfs.Acl.tag = Vfs.Acl.Mask; perms = 4 }
  in
  let check a = Vfs.Acl.check ~acl ~mode:0o600 ~owner:1 ~group:1 bob a in
  Alcotest.(check bool) "mask caps write" false (check Vfs.Perm.w_ok);
  Alcotest.(check bool) "mask allows read" true (check Vfs.Perm.r_ok)

let test_acl_text_roundtrip () =
  let acl =
    [ { Vfs.Acl.tag = Vfs.Acl.User 7; perms = 6 };
      { Vfs.Acl.tag = Vfs.Acl.Group 9; perms = 4 };
      { Vfs.Acl.tag = Vfs.Acl.Mask; perms = 6 } ]
  in
  Alcotest.(check bool) "validates" true (Vfs.Acl.validate acl);
  let text = Vfs.Acl.to_text ~mode:0o640 acl in
  match Vfs.Acl.of_text text with
  | Error e -> Alcotest.failf "parse back: %s" e
  | Ok parsed ->
    let has tag perms =
      List.exists (fun e -> e.Vfs.Acl.tag = tag && e.perms = perms) parsed
    in
    Alcotest.(check bool) "user entry kept" true (has (Vfs.Acl.User 7) 6);
    Alcotest.(check bool) "group entry kept" true (has (Vfs.Acl.Group 9) 4);
    Alcotest.(check bool) "mask kept" true (has Vfs.Acl.Mask 6)

let test_acl_validate () =
  let dup =
    [ { Vfs.Acl.tag = Vfs.Acl.User 7; perms = 6 };
      { Vfs.Acl.tag = Vfs.Acl.User 7; perms = 4 };
      { Vfs.Acl.tag = Vfs.Acl.Mask; perms = 7 } ]
  in
  Alcotest.(check bool) "duplicate user invalid" false (Vfs.Acl.validate dup);
  let no_mask = [ { Vfs.Acl.tag = Vfs.Acl.User 7; perms = 6 } ] in
  Alcotest.(check bool) "named without mask invalid" false (Vfs.Acl.validate no_mask)

(* --- Basic FS operations ----------------------------------------------------- *)

let test_mkdir_and_readdir () =
  let fs = fresh () in
  check_ok "mkdir a" (Fs.mkdir fs ~cred (p "/a"));
  check_ok "mkdir a/b" (Fs.mkdir fs ~cred (p "/a/b"));
  check_ok "mkdir a/c" (Fs.mkdir fs ~cred (p "/a/c"));
  Alcotest.(check (list string)) "readdir sorted" [ "b"; "c" ]
    (check_ok "readdir" (Fs.readdir fs ~cred (p "/a")));
  check_err "mkdir exists" Vfs.Errno.EEXIST (Fs.mkdir fs ~cred (p "/a"));
  check_err "mkdir missing parent" Vfs.Errno.ENOENT (Fs.mkdir fs ~cred (p "/x/y"))

let test_mkdir_p () =
  let fs = fresh () in
  check_ok "mkdir_p" (Fs.mkdir_p fs ~cred (p "/a/b/c/d"));
  Alcotest.(check bool) "deep dir exists" true (Fs.is_dir fs ~cred (p "/a/b/c/d"));
  check_ok "mkdir_p idempotent" (Fs.mkdir_p fs ~cred (p "/a/b/c/d"))

let test_file_write_read () =
  let fs = fresh () in
  check_ok "mkdir" (Fs.mkdir fs ~cred (p "/d"));
  check_ok "write" (Fs.write_file fs ~cred (p "/d/f") "hello");
  Alcotest.(check string) "read" "hello"
    (check_ok "read" (Fs.read_file fs ~cred (p "/d/f")));
  check_ok "overwrite" (Fs.write_file fs ~cred (p "/d/f") "bye");
  Alcotest.(check string) "truncating write" "bye"
    (check_ok "read2" (Fs.read_file fs ~cred (p "/d/f")));
  check_ok "append" (Fs.append_file fs ~cred (p "/d/f") "!!");
  Alcotest.(check string) "append result" "bye!!"
    (check_ok "read3" (Fs.read_file fs ~cred (p "/d/f")))

let test_create_excl () =
  let fs = fresh () in
  check_ok "create" (Fs.create_file fs ~cred (p "/f"));
  check_err "create again" Vfs.Errno.EEXIST (Fs.create_file fs ~cred (p "/f"));
  Alcotest.(check string) "empty" "" (check_ok "read" (Fs.read_file fs ~cred (p "/f")))

let test_truncate () =
  let fs = fresh () in
  check_ok "write" (Fs.write_file fs ~cred (p "/f") "abcdef");
  check_ok "shrink" (Fs.truncate fs ~cred (p "/f") 3);
  Alcotest.(check string) "shrunk" "abc" (check_ok "r" (Fs.read_file fs ~cred (p "/f")));
  check_ok "grow" (Fs.truncate fs ~cred (p "/f") 5);
  Alcotest.(check string) "zero filled" "abc\000\000"
    (check_ok "r2" (Fs.read_file fs ~cred (p "/f")));
  check_err "negative" Vfs.Errno.EINVAL (Fs.truncate fs ~cred (p "/f") (-1))

let test_unlink () =
  let fs = fresh () in
  check_ok "write" (Fs.write_file fs ~cred (p "/f") "x");
  check_ok "unlink" (Fs.unlink fs ~cred (p "/f"));
  check_err "gone" Vfs.Errno.ENOENT (Fs.read_file fs ~cred (p "/f"));
  check_ok "mkdir" (Fs.mkdir fs ~cred (p "/d"));
  check_err "unlink dir" Vfs.Errno.EISDIR (Fs.unlink fs ~cred (p "/d"))

let test_rmdir () =
  let fs = fresh () in
  check_ok "mkdir" (Fs.mkdir fs ~cred (p "/d"));
  check_ok "mkdir sub" (Fs.mkdir fs ~cred (p "/d/s"));
  check_err "not empty" Vfs.Errno.ENOTEMPTY (Fs.rmdir fs ~cred (p "/d"));
  check_ok "recursive" (Fs.rmdir ~recursive:true fs ~cred (p "/d"));
  Alcotest.(check bool) "gone" false (Fs.exists fs ~cred (p "/d"));
  check_err "rmdir file" Vfs.Errno.ENOTDIR
    (let _ = Fs.write_file fs ~cred (p "/f") "" in
     Fs.rmdir fs ~cred (p "/f"))

let test_rename () =
  let fs = fresh () in
  check_ok "w" (Fs.write_file fs ~cred (p "/f") "data");
  check_ok "mv" (Fs.rename fs ~cred ~src:(p "/f") ~dst:(p "/g"));
  check_err "src gone" Vfs.Errno.ENOENT (Fs.read_file fs ~cred (p "/f"));
  Alcotest.(check string) "content survives" "data"
    (check_ok "read" (Fs.read_file fs ~cred (p "/g")));
  (* replace an existing file atomically *)
  check_ok "w2" (Fs.write_file fs ~cred (p "/h") "old");
  check_ok "mv over" (Fs.rename fs ~cred ~src:(p "/g") ~dst:(p "/h"));
  Alcotest.(check string) "replaced" "data"
    (check_ok "read2" (Fs.read_file fs ~cred (p "/h")))

let test_rename_dirs () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/a/b"));
  check_ok "w" (Fs.write_file fs ~cred (p "/a/b/f") "x");
  check_ok "mv tree" (Fs.rename fs ~cred ~src:(p "/a") ~dst:(p "/z"));
  Alcotest.(check string) "subtree moved" "x"
    (check_ok "read" (Fs.read_file fs ~cred (p "/z/b/f")));
  (* cannot move a directory into itself *)
  check_err "into itself" Vfs.Errno.EINVAL
    (Fs.rename fs ~cred ~src:(p "/z") ~dst:(p "/z/b/deeper"));
  (* cannot replace non-empty dir *)
  check_ok "mk2" (Fs.mkdir_p fs ~cred (p "/w/inner"));
  check_ok "mk3" (Fs.mkdir fs ~cred (p "/v"));
  check_err "replace non-empty" Vfs.Errno.ENOTEMPTY
    (Fs.rename fs ~cred ~src:(p "/v") ~dst:(p "/w"))

let test_symlink_readlink () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir fs ~cred (p "/d"));
  check_ok "w" (Fs.write_file fs ~cred (p "/d/f") "via-link");
  check_ok "ln" (Fs.symlink fs ~cred ~target:"/d/f" (p "/l"));
  Alcotest.(check string) "readlink" "/d/f"
    (check_ok "rl" (Fs.readlink fs ~cred (p "/l")));
  Alcotest.(check string) "read through link" "via-link"
    (check_ok "read" (Fs.read_file fs ~cred (p "/l")));
  (* relative target *)
  check_ok "ln rel" (Fs.symlink fs ~cred ~target:"f" (p "/d/rel"));
  Alcotest.(check string) "relative resolve" "via-link"
    (check_ok "read rel" (Fs.read_file fs ~cred (p "/d/rel")))

let test_symlink_loop () =
  let fs = fresh () in
  check_ok "a->b" (Fs.symlink fs ~cred ~target:"/b" (p "/a"));
  check_ok "b->a" (Fs.symlink fs ~cred ~target:"/a" (p "/b"));
  check_err "loop" Vfs.Errno.ELOOP (Fs.read_file fs ~cred (p "/a"))

let test_symlink_dir_traverse () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/real/sub"));
  check_ok "w" (Fs.write_file fs ~cred (p "/real/sub/f") "deep");
  check_ok "ln" (Fs.symlink fs ~cred ~target:"/real" (p "/alias"));
  Alcotest.(check string) "traverse through symlinked dir" "deep"
    (check_ok "read" (Fs.read_file fs ~cred (p "/alias/sub/f")));
  Alcotest.(check string) "canonicalize" "/real/sub/f"
    (Path.to_string (check_ok "canon" (Fs.canonicalize fs ~cred (p "/alias/sub/f"))))

let test_stat_lstat () =
  let fs = fresh () in
  check_ok "w" (Fs.write_file fs ~cred (p "/f") "1234");
  check_ok "ln" (Fs.symlink fs ~cred ~target:"/f" (p "/l"));
  let st = check_ok "stat" (Fs.stat fs ~cred (p "/l")) in
  Alcotest.(check bool) "stat follows" true (st.Fs.kind = Fs.File);
  Alcotest.(check int) "size" 4 st.Fs.size;
  let lst = check_ok "lstat" (Fs.lstat fs ~cred (p "/l")) in
  Alcotest.(check bool) "lstat does not follow" true (lst.Fs.kind = Fs.Symlink);
  let dst = check_ok "stat dir" (Fs.stat fs ~cred Path.root) in
  Alcotest.(check bool) "root is dir" true (dst.Fs.kind = Fs.Dir)

let test_nlink () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/d/s1"));
  check_ok "mk2" (Fs.mkdir fs ~cred (p "/d/s2"));
  check_ok "w" (Fs.write_file fs ~cred (p "/d/f") "");
  let st = check_ok "stat" (Fs.stat fs ~cred (p "/d")) in
  Alcotest.(check int) "nlink = 2 + subdirs" 4 st.Fs.nlink

(* --- permissions in the tree ------------------------------------------------- *)

let alice = Cred.make ~uid:100 ~gid:100 ()
let bob = Cred.make ~uid:200 ~gid:200 ()

let test_permission_enforcement () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir fs ~cred (p "/shared"));
  check_ok "chmod 777" (Fs.chmod fs ~cred (p "/shared") 0o777);
  check_ok "alice writes" (Fs.write_file fs ~cred:alice (p "/shared/a") "mine");
  (* alice's file is 644: bob can read, not write *)
  Alcotest.(check string) "bob reads" "mine"
    (check_ok "read" (Fs.read_file fs ~cred:bob (p "/shared/a")));
  check_err "bob cannot write" Vfs.Errno.EACCES
    (Fs.write_file fs ~cred:bob (p "/shared/a") "stolen");
  (* private dir *)
  check_ok "alice mkdir" (Fs.mkdir ~mode:0o700 fs ~cred:alice (p "/shared/private"));
  check_ok "alice writes inside"
    (Fs.write_file fs ~cred:alice (p "/shared/private/s") "secret");
  check_err "bob cannot traverse" Vfs.Errno.EACCES
    (Fs.read_file fs ~cred:bob (p "/shared/private/s"));
  check_err "bob cannot list" Vfs.Errno.EACCES
    (Fs.readdir fs ~cred:bob (p "/shared/private"))

let test_chmod_chown_rules () =
  let fs = fresh () in
  check_ok "mk 777" (Fs.chmod fs ~cred Path.root 0o777);
  check_ok "alice file" (Fs.write_file fs ~cred:alice (p "/af") "x");
  check_err "bob cannot chmod alice's file" Vfs.Errno.EPERM
    (Fs.chmod fs ~cred:bob (p "/af") 0o777);
  check_ok "alice chmods own" (Fs.chmod fs ~cred:alice (p "/af") 0o600);
  check_err "alice cannot chown" Vfs.Errno.EPERM
    (Fs.chown fs ~cred:alice (p "/af") ~uid:200 ~gid:200);
  check_ok "root chowns" (Fs.chown fs ~cred (p "/af") ~uid:200 ~gid:200);
  let st = check_ok "stat" (Fs.stat fs ~cred (p "/af")) in
  Alcotest.(check int) "new owner" 200 st.Fs.uid

let test_acl_on_fs () =
  let fs = fresh () in
  check_ok "mk 777 root" (Fs.chmod fs ~cred Path.root 0o777);
  check_ok "alice writes" (Fs.write_file fs ~cred:alice (p "/f") "data");
  check_ok "alice chmod 600" (Fs.chmod fs ~cred:alice (p "/f") 0o600);
  check_err "bob denied" Vfs.Errno.EACCES (Fs.read_file fs ~cred:bob (p "/f"));
  let acl =
    [ { Vfs.Acl.tag = Vfs.Acl.User 200; perms = 4 };
      { Vfs.Acl.tag = Vfs.Acl.Mask; perms = 7 } ]
  in
  check_ok "alice sets acl" (Fs.set_acl fs ~cred:alice (p "/f") acl);
  Alcotest.(check string) "bob allowed via acl" "data"
    (check_ok "read" (Fs.read_file fs ~cred:bob (p "/f")));
  check_err "bob still cannot write" Vfs.Errno.EACCES
    (Fs.write_file fs ~cred:bob (p "/f") "nope");
  check_err "invalid acl rejected" Vfs.Errno.EINVAL
    (Fs.set_acl fs ~cred:alice (p "/f")
       [ { Vfs.Acl.tag = Vfs.Acl.User 200; perms = 4 } ])

let test_readonly () =
  let fs = fresh () in
  check_ok "w" (Fs.write_file fs ~cred (p "/f") "x");
  Fs.set_readonly fs true;
  check_err "write denied" Vfs.Errno.EROFS (Fs.write_file fs ~cred (p "/f") "y");
  check_err "mkdir denied" Vfs.Errno.EROFS (Fs.mkdir fs ~cred (p "/d"));
  Alcotest.(check string) "reads fine" "x"
    (check_ok "read" (Fs.read_file fs ~cred (p "/f")));
  Fs.set_readonly fs false;
  check_ok "writable again" (Fs.write_file fs ~cred (p "/f") "y")

(* --- xattrs -------------------------------------------------------------------- *)

let test_xattrs () =
  let fs = fresh () in
  check_ok "w" (Fs.write_file fs ~cred (p "/f") "");
  check_ok "set" (Fs.setxattr fs ~cred (p "/f") ~name:"user.consistency" ~value:"strict");
  check_ok "set2" (Fs.setxattr fs ~cred (p "/f") ~name:"user.zone" ~value:"dmz");
  Alcotest.(check string) "get" "strict"
    (check_ok "get" (Fs.getxattr fs ~cred (p "/f") ~name:"user.consistency"));
  Alcotest.(check (list string)) "list" [ "user.consistency"; "user.zone" ]
    (check_ok "list" (Fs.listxattr fs ~cred (p "/f")));
  check_ok "remove" (Fs.removexattr fs ~cred (p "/f") ~name:"user.zone");
  check_err "gone" Vfs.Errno.ENOENT (Fs.getxattr fs ~cred (p "/f") ~name:"user.zone");
  check_err "remove missing" Vfs.Errno.ENOENT
    (Fs.removexattr fs ~cred (p "/f") ~name:"user.zone")

(* --- fds -------------------------------------------------------------------------- *)

let test_fd_basic () =
  let fs = fresh () in
  let fd =
    check_ok "open creat"
      (Fs.openfile fs ~cred (p "/f") [ Fs.O_rdwr; Fs.O_creat ])
  in
  Alcotest.(check int) "pwrite" 5 (check_ok "w" (Fs.pwrite fs fd ~off:0 "hello"));
  Alcotest.(check string) "pread" "ell"
    (check_ok "r" (Fs.pread fs fd ~off:1 ~len:3));
  Alcotest.(check string) "pread eof" ""
    (check_ok "r2" (Fs.pread fs fd ~off:99 ~len:4));
  check_ok "close" (Fs.close fs fd);
  check_err "closed fd" Vfs.Errno.EBADF (Fs.pread fs fd ~off:0 ~len:1)

let test_fd_flags () =
  let fs = fresh () in
  check_ok "w" (Fs.write_file fs ~cred (p "/f") "seed");
  check_err "excl on existing" Vfs.Errno.EEXIST
    (Result.map (fun _ -> ())
       (Fs.openfile fs ~cred (p "/f") [ Fs.O_wronly; Fs.O_creat; Fs.O_excl ]));
  let fd =
    check_ok "trunc" (Fs.openfile fs ~cred (p "/f") [ Fs.O_wronly; Fs.O_trunc ])
  in
  check_ok "close" (Fs.close fs fd);
  Alcotest.(check string) "truncated" ""
    (check_ok "read" (Fs.read_file fs ~cred (p "/f")));
  let fd2 =
    check_ok "append" (Fs.openfile fs ~cred (p "/f") [ Fs.O_wronly; Fs.O_append ])
  in
  ignore (check_ok "w1" (Fs.pwrite fs fd2 ~off:0 "a"));
  ignore (check_ok "w2" (Fs.pwrite fs fd2 ~off:0 "b"));
  check_ok "close2" (Fs.close fs fd2);
  Alcotest.(check string) "appended" "ab"
    (check_ok "read2" (Fs.read_file fs ~cred (p "/f")))

(* --- hooks, replay, policies ----------------------------------------------------- *)

let test_mutation_stream () =
  let fs = fresh () in
  let seen = ref [] in
  let hook = Fs.subscribe fs (fun op -> seen := op :: !seen) in
  check_ok "mkdir" (Fs.mkdir fs ~cred (p "/d"));
  check_ok "write" (Fs.write_file fs ~cred (p "/d/f") "x");
  check_ok "rm" (Fs.unlink fs ~cred (p "/d/f"));
  let kinds =
    List.rev_map
      (function
        | Vfs.Op.Mkdir _ -> "mkdir"
        | Vfs.Op.Create _ -> "create"
        | Vfs.Op.Write _ -> "write"
        | Vfs.Op.Truncate _ -> "truncate"
        | Vfs.Op.Unlink _ -> "unlink"
        | _ -> "other")
      !seen
  in
  Alcotest.(check (list string)) "op sequence"
    [ "mkdir"; "create"; "write"; "unlink" ]
    kinds;
  Fs.unsubscribe fs hook;
  check_ok "after unsub" (Fs.mkdir fs ~cred (p "/d2"));
  Alcotest.(check int) "no more ops" 4 (List.length !seen)

let test_replay_replicates () =
  let src = fresh () in
  let dst = fresh () in
  let hook = Fs.subscribe src (fun op -> ignore (Fs.replay dst op)) in
  check_ok "mk" (Fs.mkdir_p src ~cred (p "/net/switches/sw1"));
  check_ok "w" (Fs.write_file src ~cred (p "/net/switches/sw1/id") "1");
  check_ok "ln" (Fs.symlink src ~cred ~target:"/net" (p "/alias"));
  check_ok "chmod" (Fs.chmod src ~cred (p "/net") 0o700);
  Alcotest.(check string) "file replicated" "1"
    (check_ok "read" (Fs.read_file dst ~cred (p "/net/switches/sw1/id")));
  Alcotest.(check string) "symlink replicated" "/net"
    (check_ok "rl" (Fs.readlink dst ~cred (p "/alias")));
  let st = check_ok "stat" (Fs.stat dst ~cred (p "/net")) in
  Alcotest.(check int) "mode replicated" 0o700 st.Fs.mode;
  check_ok "rm" (Fs.rmdir ~recursive:true src ~cred (p "/net"));
  Alcotest.(check bool) "removal replicated" false (Fs.exists dst ~cred (p "/net"));
  Fs.unsubscribe src hook

let test_replay_idempotent () =
  let fs = fresh () in
  let op = Vfs.Op.Mkdir { path = p "/d"; mode = 0o755 } in
  check_ok "first" (Fs.replay fs op);
  check_ok "second" (Fs.replay fs op);
  check_ok "unlink missing ok" (Fs.replay fs (Vfs.Op.Unlink { path = p "/nope" }))

let test_rmdir_policy () =
  let fs = fresh () in
  Fs.set_rmdir_policy fs (fun path -> Path.basename path = Some "auto");
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/auto/sub"));
  check_ok "policy recursive rmdir" (Fs.rmdir fs ~cred (p "/auto"));
  check_ok "mk2" (Fs.mkdir_p fs ~cred (p "/manual/sub"));
  check_err "other dirs unchanged" Vfs.Errno.ENOTEMPTY (Fs.rmdir fs ~cred (p "/manual"))

let test_symlink_policy () =
  let fs = fresh () in
  Fs.set_symlink_policy fs (fun _ ~target -> target <> "/forbidden");
  check_err "rejected" Vfs.Errno.EINVAL
    (Fs.symlink fs ~cred ~target:"/forbidden" (p "/l"));
  check_ok "allowed" (Fs.symlink fs ~cred ~target:"/fine" (p "/l"))

(* --- cost model -------------------------------------------------------------------- *)

let test_cost_counting () =
  let fs = fresh () in
  let c = Fs.cost fs in
  Vfs.Cost.reset c;
  check_ok "mk" (Fs.mkdir fs ~cred (p "/d"));
  check_ok "w" (Fs.write_file fs ~cred (p "/d/f") "x");
  ignore (check_ok "r" (Fs.read_file fs ~cred (p "/d/f")));
  Alcotest.(check int) "three syscalls" 3 (Vfs.Cost.crossings c);
  Alcotest.(check bool) "cost charged" true (Vfs.Cost.charged_ns c > 0.)

let test_cost_suspended () =
  let fs = fresh () in
  let c = Fs.cost fs in
  Vfs.Cost.reset c;
  Vfs.Cost.suspended c (fun () ->
      check_ok "mk" (Fs.mkdir fs ~cred (p "/d"));
      check_ok "w" (Fs.write_file fs ~cred (p "/d/f") "x"));
  Alcotest.(check int) "free inside suspension" 0 (Vfs.Cost.crossings c);
  Vfs.Cost.syscall c;
  Alcotest.(check int) "counting resumes" 1 (Vfs.Cost.crossings c)

(* --- walk / tree --------------------------------------------------------------------- *)

let test_walk () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/a/b"));
  check_ok "w1" (Fs.write_file fs ~cred (p "/a/f1") "");
  check_ok "w2" (Fs.write_file fs ~cred (p "/a/b/f2") "");
  let visited = ref [] in
  check_ok "walk"
    (Fs.walk fs ~cred (p "/a") (fun path _ -> visited := Path.to_string path :: !visited));
  Alcotest.(check (list string)) "pre-order"
    [ "/a"; "/a/b"; "/a/b/f2"; "/a/f1" ]
    (List.rev !visited)

let contains hay needle =
  let nl = String.length needle
  and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let test_tree_rendering () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/net/switches"));
  check_ok "mk2" (Fs.mkdir fs ~cred (p "/net/hosts"));
  check_ok "ln" (Fs.symlink fs ~cred ~target:"/x" (p "/net/link"));
  let text = check_ok "tree" (Fs.tree fs ~cred (p "/net")) in
  Alcotest.(check bool) "mentions hosts" true (contains text "hosts");
  Alcotest.(check bool) "symlink arrow" true (contains text "link -> /x")

let test_fold_accumulator () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/a/b"));
  check_ok "w1" (Fs.write_file fs ~cred (p "/a/f1") "xx");
  check_ok "w2" (Fs.write_file fs ~cred (p "/a/b/f2") "yyy");
  let bytes =
    check_ok "fold"
      (Fs.fold fs ~cred (p "/a") ~init:0 (fun acc _ st ->
           (if st.Fs.kind = Fs.File then acc + st.Fs.size else acc), `Continue))
  in
  Alcotest.(check int) "file sizes summed" 5 bytes

let test_fold_skip_subtree () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/a/skip/deep"));
  check_ok "mk2" (Fs.mkdir fs ~cred (p "/a/keep"));
  check_ok "w" (Fs.write_file fs ~cred (p "/a/skip/deep/f") "");
  let visited =
    check_ok "fold"
      (Fs.fold fs ~cred (p "/a") ~init:[] (fun acc path _ ->
           let acc = Path.to_string path :: acc in
           if Path.to_string path = "/a/skip" then acc, `Skip_subtree
           else acc, `Continue))
  in
  Alcotest.(check (list string)) "pruned below /a/skip"
    [ "/a"; "/a/keep"; "/a/skip" ] (List.rev visited)

let test_fold_early_stop () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir fs ~cred (p "/a"));
  List.iter
    (fun n -> check_ok "w" (Fs.write_file fs ~cred (p ("/a/" ^ n)) ""))
    [ "f1"; "f2"; "f3"; "f4" ];
  let seen =
    check_ok "fold"
      (Fs.fold fs ~cred (p "/a") ~init:0 (fun acc _ _ ->
           let acc = acc + 1 in
           acc, (if acc >= 3 then `Stop else `Continue)))
  in
  Alcotest.(check int) "stopped after three entries" 3 seen

let test_kind_of () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir fs ~cred (p "/d"));
  check_ok "w" (Fs.write_file fs ~cred (p "/d/f") "x");
  check_ok "ln" (Fs.symlink fs ~cred ~target:"/d/f" (p "/ln"));
  (match Fs.kind_of fs ~cred (p "/d") with
  | Ok Fs.Dir -> ()
  | _ -> Alcotest.fail "expected Dir");
  (match Fs.kind_of fs ~cred (p "/d/f") with
  | Ok Fs.File -> ()
  | _ -> Alcotest.fail "expected File");
  (match Fs.kind_of ~follow:false fs ~cred (p "/ln") with
  | Ok Fs.Symlink -> ()
  | _ -> Alcotest.fail "expected Symlink");
  (match Fs.kind_of fs ~cred (p "/ln") with
  | Ok Fs.File -> ()
  | _ -> Alcotest.fail "expected followed File");
  check_err "missing is ENOENT" Vfs.Errno.ENOENT
    (Result.map (fun _ -> ()) (Fs.kind_of fs ~cred (p "/nope")))

let test_kind_of_eacces_vs_enoent () =
  (* The reason kind_of exists: [exists]/[is_dir] conflate "not there"
     with "not allowed to look". kind_of keeps them apart. *)
  let fs = fresh () in
  let alice = Cred.make ~uid:100 ~gid:100 () in
  check_ok "mk" (Fs.mkdir_p fs ~cred (p "/priv/sub"));
  check_ok "w" (Fs.write_file fs ~cred (p "/priv/f") "x");
  check_ok "lock" (Fs.chmod fs ~cred (p "/priv") 0o700);
  check_err "denied, not missing" Vfs.Errno.EACCES
    (Result.map (fun _ -> ()) (Fs.kind_of fs ~cred:alice (p "/priv/f")));
  check_err "missing, not denied" Vfs.Errno.ENOENT
    (Result.map (fun _ -> ()) (Fs.kind_of fs ~cred:alice (p "/nope")));
  (* the bool forms flatten both to false *)
  Alcotest.(check bool) "exists conflates" false
    (Fs.exists fs ~cred:alice (p "/priv/f"));
  Alcotest.(check bool) "is_dir conflates" false
    (Fs.is_dir fs ~cred:alice (p "/priv/sub"))

(* --- edge cases ----------------------------------------------------------------------- *)

let test_edge_not_a_directory () =
  let fs = fresh () in
  check_ok "w" (Fs.write_file fs ~cred (p "/f") "data");
  check_err "component is a file" Vfs.Errno.ENOTDIR
    (Fs.write_file fs ~cred (p "/f/child") "x");
  check_err "readdir on file" Vfs.Errno.ENOTDIR (Fs.readdir fs ~cred (p "/f"));
  check_err "open dir for write" Vfs.Errno.EISDIR
    (let _ = Fs.mkdir fs ~cred (p "/d") in
     Result.map (fun _ -> ()) (Fs.openfile fs ~cred (p "/d") [ Fs.O_wronly ]))

let test_edge_append_creates () =
  let fs = fresh () in
  check_ok "append to missing file creates it"
    (Fs.append_file fs ~cred (p "/log") "line1\n");
  check_ok "append again" (Fs.append_file fs ~cred (p "/log") "line2\n");
  Alcotest.(check string) "both lines" "line1\nline2\n"
    (check_ok "read" (Fs.read_file fs ~cred (p "/log")))

let test_edge_fd_path () =
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir fs ~cred (p "/d"));
  check_ok "ln" (Fs.symlink fs ~cred ~target:"/d" (p "/alias"));
  let fd =
    check_ok "open through symlink"
      (Fs.openfile fs ~cred (p "/alias/f") [ Fs.O_rdwr; Fs.O_creat ])
  in
  Alcotest.(check string) "fd path is canonical" "/d/f"
    (Path.to_string (check_ok "fd_path" (Fs.fd_path fs fd)))

let test_edge_bytes_accounting () =
  let fs = fresh () in
  let _, b0 = Fs.size_info fs in
  check_ok "w" (Fs.write_file fs ~cred (p "/f") (String.make 100 'x'));
  let _, b1 = Fs.size_info fs in
  Alcotest.(check int) "100 bytes tracked" 100 (b1 - b0);
  check_ok "shrink" (Fs.truncate fs ~cred (p "/f") 40);
  let _, b2 = Fs.size_info fs in
  Alcotest.(check int) "truncate releases" 40 (b2 - b0);
  check_ok "rm" (Fs.unlink fs ~cred (p "/f"));
  let _, b3 = Fs.size_info fs in
  Alcotest.(check int) "unlink releases all" 0 (b3 - b0)

let test_edge_xattr_permissions () =
  let fs = fresh () in
  check_ok "root 777" (Fs.chmod fs ~cred Path.root 0o777);
  check_ok "alice file" (Fs.write_file fs ~cred:alice (p "/af") "x");
  check_ok "alice chmod 644" (Fs.chmod fs ~cred:alice (p "/af") 0o644);
  check_err "bob cannot setxattr" Vfs.Errno.EACCES
    (Fs.setxattr fs ~cred:bob (p "/af") ~name:"k" ~value:"v");
  check_err "empty name invalid" Vfs.Errno.EINVAL
    (Fs.setxattr fs ~cred:alice (p "/af") ~name:"" ~value:"v")

let test_edge_acl_text_garbage () =
  Alcotest.(check bool) "garbage entry" true
    (Result.is_error (Vfs.Acl.of_text "user:banana:rwx"));
  Alcotest.(check bool) "bad perms" true
    (Result.is_error (Vfs.Acl.of_text "user:1:rwz"));
  Alcotest.(check bool) "comments skipped" true
    (Vfs.Acl.of_text "# just a comment\n" = Ok [])

let test_edge_eexist_without_write_perm () =
  (* Linux semantics: lookup precedes the write check, so mkdir of an
     existing name under an unwritable parent is EEXIST, not EACCES —
     what makes idempotent view entry work for tenants. *)
  let fs = fresh () in
  check_ok "mk" (Fs.mkdir fs ~cred (p "/ro"));
  check_ok "sub" (Fs.mkdir fs ~cred (p "/ro/existing"));
  check_ok "chmod 755" (Fs.chmod fs ~cred (p "/ro") 0o755);
  check_err "existing -> eexist" Vfs.Errno.EEXIST
    (Fs.mkdir fs ~cred:alice (p "/ro/existing"));
  check_err "new -> eacces" Vfs.Errno.EACCES (Fs.mkdir fs ~cred:alice (p "/ro/new"))

(* --- property-based tests ------------------------------------------------------------ *)

let path_gen =
  let comp = QCheck.Gen.oneofl [ "a"; "b"; "c"; "sw1"; "flows"; "x9" ] in
  QCheck.Gen.(map (fun l -> "/" ^ String.concat "/" l) (list_size (int_range 1 6) comp))

let prop_path_roundtrip =
  QCheck.Test.make ~name:"path parse/print roundtrip is stable" ~count:200
    (QCheck.make path_gen) (fun s ->
      match Path.of_string s with
      | Error _ -> false
      | Ok p1 -> (
        match Path.of_string (Path.to_string p1) with
        | Error _ -> false
        | Ok p2 -> Path.equal p1 p2))

let prop_write_read =
  QCheck.Test.make ~name:"write/read roundtrip of arbitrary bytes" ~count:100
    QCheck.(string_gen QCheck.Gen.char) (fun data ->
      let fs = fresh () in
      match Fs.write_file fs ~cred (p "/f") data with
      | Error _ -> false
      | Ok () -> Fs.read_file fs ~cred (p "/f") = Ok data)

let prop_rename_preserves =
  QCheck.Test.make ~name:"rename preserves content" ~count:100
    QCheck.(string_gen QCheck.Gen.printable) (fun data ->
      let fs = fresh () in
      ignore (Fs.write_file fs ~cred (p "/f") data);
      ignore (Fs.rename fs ~cred ~src:(p "/f") ~dst:(p "/g"));
      Fs.read_file fs ~cred (p "/g") = Ok data
      && not (Fs.exists fs ~cred (p "/f")))

let prop_object_count =
  QCheck.Test.make ~name:"size_info tracks object creation/removal" ~count:50
    QCheck.(int_range 1 20) (fun n ->
      let fs = fresh () in
      let before, _ = Fs.size_info fs in
      for i = 1 to n do
        ignore (Fs.mkdir fs ~cred (p (Printf.sprintf "/d%d" i)))
      done;
      let mid, _ = Fs.size_info fs in
      for i = 1 to n do
        ignore (Fs.rmdir fs ~cred (p (Printf.sprintf "/d%d" i)))
      done;
      let after, _ = Fs.size_info fs in
      mid = before + n && after = before)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_path_roundtrip; prop_write_read; prop_rename_preserves; prop_object_count ]

let () =
  Alcotest.run "vfs"
    [ ( "path",
        [ Alcotest.test_case "parse" `Quick test_path_parse;
          Alcotest.test_case "relatives" `Quick test_path_relatives;
          Alcotest.test_case "valid_name" `Quick test_path_valid_name ] );
      ( "perm-acl",
        [ Alcotest.test_case "mode bits" `Quick test_perm_check;
          Alcotest.test_case "mode strings" `Quick test_perm_string;
          Alcotest.test_case "acl grants" `Quick test_acl_check;
          Alcotest.test_case "acl mask" `Quick test_acl_mask;
          Alcotest.test_case "acl text roundtrip" `Quick test_acl_text_roundtrip;
          Alcotest.test_case "acl validation" `Quick test_acl_validate ] );
      ( "ops",
        [ Alcotest.test_case "mkdir/readdir" `Quick test_mkdir_and_readdir;
          Alcotest.test_case "mkdir_p" `Quick test_mkdir_p;
          Alcotest.test_case "write/read" `Quick test_file_write_read;
          Alcotest.test_case "create excl" `Quick test_create_excl;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "unlink" `Quick test_unlink;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "rename dirs" `Quick test_rename_dirs;
          Alcotest.test_case "symlink" `Quick test_symlink_readlink;
          Alcotest.test_case "symlink loop" `Quick test_symlink_loop;
          Alcotest.test_case "symlink traverse" `Quick test_symlink_dir_traverse;
          Alcotest.test_case "stat/lstat" `Quick test_stat_lstat;
          Alcotest.test_case "nlink" `Quick test_nlink ] );
      ( "security",
        [ Alcotest.test_case "permissions" `Quick test_permission_enforcement;
          Alcotest.test_case "chmod/chown" `Quick test_chmod_chown_rules;
          Alcotest.test_case "acl on fs" `Quick test_acl_on_fs;
          Alcotest.test_case "readonly" `Quick test_readonly;
          Alcotest.test_case "xattrs" `Quick test_xattrs ] );
      ( "fds",
        [ Alcotest.test_case "basic" `Quick test_fd_basic;
          Alcotest.test_case "flags" `Quick test_fd_flags ] );
      ( "hooks",
        [ Alcotest.test_case "mutation stream" `Quick test_mutation_stream;
          Alcotest.test_case "replay replicates" `Quick test_replay_replicates;
          Alcotest.test_case "replay idempotent" `Quick test_replay_idempotent;
          Alcotest.test_case "rmdir policy" `Quick test_rmdir_policy;
          Alcotest.test_case "symlink policy" `Quick test_symlink_policy ] );
      ( "cost",
        [ Alcotest.test_case "counting" `Quick test_cost_counting;
          Alcotest.test_case "suspension" `Quick test_cost_suspended ] );
      ( "traversal",
        [ Alcotest.test_case "walk" `Quick test_walk;
          Alcotest.test_case "tree" `Quick test_tree_rendering;
          Alcotest.test_case "fold accumulator" `Quick test_fold_accumulator;
          Alcotest.test_case "fold skip subtree" `Quick test_fold_skip_subtree;
          Alcotest.test_case "fold early stop" `Quick test_fold_early_stop;
          Alcotest.test_case "kind_of" `Quick test_kind_of;
          Alcotest.test_case "kind_of eacces vs enoent" `Quick
            test_kind_of_eacces_vs_enoent ] );
      ( "edge-cases",
        [ Alcotest.test_case "not-a-directory" `Quick test_edge_not_a_directory;
          Alcotest.test_case "append creates" `Quick test_edge_append_creates;
          Alcotest.test_case "fd path" `Quick test_edge_fd_path;
          Alcotest.test_case "byte accounting" `Quick test_edge_bytes_accounting;
          Alcotest.test_case "xattr permissions" `Quick test_edge_xattr_permissions;
          Alcotest.test_case "acl text garbage" `Quick test_edge_acl_text_garbage;
          Alcotest.test_case "eexist before eacces" `Quick
            test_edge_eexist_without_write_perm ] );
      "properties", qcheck_cases ]
