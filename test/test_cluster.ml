(* The sharded multi-node controller: shard-map properties (QCheck),
   boot-time ownership, cross-node flow writes riding the DFS to the
   owner's hardware, and kill/takeover reconvergence. *)

module N = Netsim
module Y = Yancfs
module D = Driver
module SM = Dfs.Shard_map

let cred = Vfs.Cred.root

(* --- shard map: property tests ----------------------------------------------- *)

(* Membership generator: distinct names out of a small pool, ≥1. *)
let members_gen =
  QCheck.Gen.(
    map
      (fun bits ->
        let all = List.init 8 (fun i -> Printf.sprintf "n%d" i) in
        let picked = List.filteri (fun i _ -> (bits lsr i) land 1 = 1) all in
        if picked = [] then [ "n0" ] else picked)
      (int_range 1 255))

let arb_members = QCheck.make ~print:(String.concat ",") members_gen

let arb_dpid =
  QCheck.make
    ~print:Int64.to_string
    QCheck.Gen.(map Int64.of_int (int_range 1 100000))

let shuffle seed l =
  let st = Random.State.make [| seed |] in
  let tagged = List.map (fun x -> (Random.State.bits st, x)) l in
  List.map snd (List.sort compare tagged)

let prop_deterministic =
  QCheck.Test.make ~name:"owner is a pure function of (dpid, member set)"
    ~count:500
    QCheck.(triple arb_members arb_dpid small_int)
    (fun (members, dpid, seed) ->
      SM.owner ~members ~dpid = SM.owner ~members:(shuffle seed members) ~dpid)

let prop_minimal_movement_leave =
  QCheck.Test.make
    ~name:"node leave moves only the departed node's shards" ~count:200
    arb_members
    (fun members ->
      QCheck.assume (List.length members >= 2);
      let dpids = List.init 200 (fun i -> Int64.of_int (i + 1)) in
      let departed = List.hd members in
      let rest = List.tl members in
      List.for_all
        (fun dpid ->
          let before = SM.owner ~members ~dpid in
          let after = SM.owner ~members:rest ~dpid in
          if before = Some departed then after <> Some departed
          else after = before)
        dpids)

let prop_minimal_movement_join =
  QCheck.Test.make
    ~name:"node join moves shards only onto the joiner" ~count:200
    arb_members
    (fun members ->
      QCheck.assume (not (List.mem "fresh" members));
      let dpids = List.init 200 (fun i -> Int64.of_int (i + 1)) in
      let joined = "fresh" :: members in
      List.for_all
        (fun dpid ->
          let before = SM.owner ~members ~dpid in
          let after = SM.owner ~members:joined ~dpid in
          after = before || after = Some "fresh")
        dpids)

let prop_replicas_owner_first =
  QCheck.Test.make
    ~name:"replica set is owner-first, distinct, size min(k,n)" ~count:300
    QCheck.(pair arb_members arb_dpid)
    (fun (members, dpid) ->
      let reps = SM.replicas ~members ~k:2 ~dpid in
      List.length reps = min 2 (List.length members)
      && List.sort_uniq compare reps = List.sort compare reps
      && (match (reps, SM.owner ~members ~dpid) with
         | r :: _, Some o -> r = o
         | [], None -> true
         | _ -> false))

let prop_balanced_cap =
  QCheck.Test.make
    ~name:"balanced assignment is total and respects the load cap" ~count:300
    QCheck.(pair arb_members small_int)
    (fun (members, sz) ->
      let d = 1 + (sz mod 200) in
      let dpids = List.init d (fun i -> Int64.of_int (i + 1)) in
      let map = SM.assign_balanced ~members ~dpids () in
      let n = List.length members in
      let cap =
        max 1 (int_of_float (ceil (1.10 *. float_of_int d /. float_of_int n)))
      in
      List.length map = d
      && List.sort_uniq compare (List.map fst map) = dpids
      && List.for_all
           (fun m ->
             List.length (List.filter (fun (_, o) -> o = m) map) <= cap)
           members)

let prop_balanced_deterministic =
  QCheck.Test.make
    ~name:"balanced assignment is a pure function of the two sets" ~count:200
    QCheck.(pair arb_members small_int)
    (fun (members, seed) ->
      let dpids = List.init 150 (fun i -> Int64.of_int (i + 1)) in
      SM.assign_balanced ~members ~dpids ()
      = SM.assign_balanced ~members:(shuffle seed members)
          ~dpids:(shuffle (seed + 1) dpids) ())

let prop_balanced_movement_leave =
  QCheck.Test.make
    ~name:"balanced leave moves only departed or overflow shards" ~count:200
    arb_members
    (fun members ->
      QCheck.assume (List.length members >= 2);
      let dpids = List.init 200 (fun i -> Int64.of_int (i + 1)) in
      let departed = List.hd members in
      let rest = List.tl members in
      let before = SM.assign_balanced ~members ~dpids () in
      let after = SM.assign_balanced ~members:rest ~dpids () in
      List.for_all
        (fun dpid ->
          let b = List.assoc dpid before and a = List.assoc dpid after in
          (* A surviving shard that moves must be part of the bounded
             overflow tail: off its rendezvous first choice on at least
             one side of the change. *)
          b = departed || a = b
          || Some b <> SM.owner ~members ~dpid
          || Some a <> SM.owner ~members:rest ~dpid)
        dpids)

(* --- cluster fixtures --------------------------------------------------------- *)

let fast_tuning =
  { D.Driver_intf.default_tuning with D.Driver_intf.stats_interval = 0. }

let boot ?(n = 2) ?(k = 4) () =
  let built = N.Topo_gen.fat_tree ~k () in
  let c =
    Yanc.Cluster.create ~tuning:fast_tuning ~n ~net:built.N.Topo_gen.net ()
  in
  Yanc.Cluster.run_for ~tick:0.02 c 1.0;
  (built, c)

(* --- unit tests --------------------------------------------------------------- *)

let test_boot_ownership () =
  let built, c = boot () in
  Alcotest.(check (list int64)) "every shard owned" [] (Yanc.Cluster.unowned c);
  Alcotest.(check bool) "cluster converged after boot" true
    (Yanc.Cluster.run_until ~tick:0.02 c (fun () -> Yanc.Cluster.converged c));
  (* ownership matches the bounded-load shard map *)
  let members = List.map (Yanc.Cluster.name_of c) (Yanc.Cluster.live_indexes c) in
  let expected_map =
    SM.assign_balanced ~members ~dpids:built.N.Topo_gen.dpids ()
  in
  List.iter
    (fun dpid ->
      let expected = List.assoc_opt dpid expected_map in
      let actual =
        Option.map (Yanc.Cluster.name_of c) (Yanc.Cluster.owner_index c dpid)
      in
      Alcotest.(check (option string))
        (Printf.sprintf "dpid %Ld owner" dpid)
        expected actual)
    built.N.Topo_gen.dpids;
  let counts =
    List.map (fun i -> List.length (D.Manager.attached
        (Yanc.Controller.manager (Yanc.Cluster.controller c i))))
      (Yanc.Cluster.live_indexes c)
  in
  Alcotest.(check int) "all switches attached once"
    (List.length built.N.Topo_gen.dpids)
    (List.fold_left ( + ) 0 counts)

let test_cross_node_flow_reaches_owner_hardware () =
  let built, c = boot () in
  ignore (Yanc.Cluster.run_until ~tick:0.02 c (fun () -> Yanc.Cluster.converged c));
  (* pick a switch NOT owned by node 0 and write a flow via node 0 *)
  let dpid =
    List.find
      (fun d -> Yanc.Cluster.owner_index c d <> Some 0)
      built.N.Topo_gen.dpids
  in
  let swname = Y.Yanc_fs.switch_name_of_dpid dpid in
  let yfs0 = Yanc.Controller.yfs (Yanc.Cluster.controller c 0) in
  let flow =
    { Y.Flowdir.default with
      Y.Flowdir.of_match =
        { Openflow.Of_match.any with Openflow.Of_match.in_port = Some 1 };
      actions = [ Openflow.Action.Output (Openflow.Action.Physical 2) ];
      priority = 77 }
  in
  (match Y.Yanc_fs.create_flow yfs0 ~cred ~switch:swname ~name:"xnode" flow with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "create_flow: %s" (Vfs.Errno.to_string e));
  (* replication (0.05 s visibility) + owner's commit + install *)
  Alcotest.(check bool) "flow reached the owner's hardware" true
    (Yanc.Cluster.run_until ~tick:0.02 c (fun () ->
         match N.Network.switch built.N.Topo_gen.net dpid with
         | None -> false
         | Some sw ->
           List.exists
             (fun ((_, e) : int * N.Flow_table.entry) -> e.priority = 77)
             (N.Sim_switch.flow_stats sw
                ~now:(N.Network.now built.N.Topo_gen.net)
                ~of_match:Openflow.Of_match.any ())));
  Alcotest.(check bool) "still converged" true
    (Yanc.Cluster.run_until ~tick:0.02 c (fun () -> Yanc.Cluster.converged c))

let test_kill_one_of_two_takeover () =
  let built, c = boot () in
  ignore (Yanc.Cluster.run_until ~tick:0.02 c (fun () -> Yanc.Cluster.converged c));
  (* give the fleet some installed state to carry across the takeover *)
  let yfs0 = Yanc.Controller.yfs (Yanc.Cluster.controller c 0) in
  List.iteri
    (fun i dpid ->
      let swname = Y.Yanc_fs.switch_name_of_dpid dpid in
      let flow =
        { Y.Flowdir.default with
          Y.Flowdir.of_match =
            { Openflow.Of_match.any with Openflow.Of_match.in_port = Some 1 };
          actions = [ Openflow.Action.Output (Openflow.Action.Physical 2) ];
          priority = 100 + i }
      in
      ignore (Y.Yanc_fs.create_flow yfs0 ~cred ~switch:swname ~name:"seed" flow))
    built.N.Topo_gen.dpids;
  Alcotest.(check bool) "seeded state converged" true
    (Yanc.Cluster.run_until ~tick:0.02 c (fun () -> Yanc.Cluster.converged c));
  let victim = 1 in
  let orphaned =
    List.filter
      (fun d -> Yanc.Cluster.owner_index c d = Some victim)
      built.N.Topo_gen.dpids
  in
  Alcotest.(check bool) "victim owned something" true (orphaned <> []);
  let t_kill = N.Network.now built.N.Topo_gen.net in
  Yanc.Cluster.kill c victim;
  let ok =
    Yanc.Cluster.run_until ~tick:0.02 ~timeout:10. c (fun () ->
        Yanc.Cluster.converged c)
  in
  let takeover_s = N.Network.now built.N.Topo_gen.net -. t_kill in
  Alcotest.(check bool) "reconverged after kill" true ok;
  Alcotest.(check bool) "takeover within lease + resync budget" true
    (takeover_s < 5.);
  (* every orphaned shard now lives on the survivor *)
  List.iter
    (fun d ->
      Alcotest.(check (option int))
        (Printf.sprintf "dpid %Ld re-owned" d)
        (Some 0)
        (Yanc.Cluster.owner_index c d))
    orphaned;
  Alcotest.(check bool) "survivor recorded takeovers" true
    (Yanc.Cluster.takeovers c 0 >= List.length orphaned)

let test_sync_subtree_antientropy () =
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~n:3 () in
  (* route everything under /data to replica 1 only, leaving 2 stale *)
  Dfs.Cluster.set_route c
    (Some
       (fun op ~origin:_ ->
         let s = Vfs.Path.to_string (Vfs.Op.path op) in
         if String.length s >= 5 && String.sub s 0 5 = "/data" then Some [ 1 ]
         else None));
  let fs0 = Dfs.Cluster.node c 0 in
  let p = Vfs.Path.of_string_exn in
  ignore (Vfs.Fs.mkdir_p fs0 ~cred (p "/data/sub"));
  ignore (Vfs.Fs.write_file fs0 ~cred (p "/data/sub/f") "payload");
  ignore (Vfs.Fs.symlink fs0 ~cred ~target:"sub/f" (p "/data/link"));
  let fs2 = Dfs.Cluster.node c 2 in
  Alcotest.(check bool) "replica 2 stale before sync" true
    (Result.is_error (Vfs.Fs.read_file fs2 ~cred (p "/data/sub/f")));
  let n = Dfs.Cluster.sync_subtree c ~from_:0 ~to_:2 (p "/data") in
  Alcotest.(check bool) "sync emitted ops" true (n > 0);
  Alcotest.(check string) "file content synced" "payload"
    (Result.get_ok (Vfs.Fs.read_file fs2 ~cred (p "/data/sub/f")));
  Alcotest.(check string) "symlink synced" "sub/f"
    (Result.get_ok (Vfs.Fs.readlink fs2 ~cred (p "/data/link")))

(* --- cluster observability ---------------------------------------------------- *)

let read_node_proc c i file =
  let proc = Y.Layout.node_proc_root (Yanc.Cluster.name_of c i) in
  Vfs.Fs.read_file
    (Yanc.Controller.fs (Yanc.Cluster.controller c i))
    ~cred (file ~proc)

let tok_value line key =
  List.find_map
    (fun tok ->
      let kl = String.length key in
      if String.length tok > kl && String.sub tok 0 kl = key then
        Some (String.sub tok kl (String.length tok - kl))
      else None)
    (String.split_on_char ' ' line)

(* (trace, stage) per pipe line, untraced spans excluded *)
let pipe_spans data =
  List.filter_map
    (fun line ->
      match (tok_value line "trace=", tok_value line "stage=") with
      | Some tr, Some st when tr <> "0" -> Some (int_of_string tr, st)
      | _ -> None)
    (String.split_on_char '\n' data)

let boot_traced ?(n = 2) ?(k = 4) ?seed () =
  let built = N.Topo_gen.fat_tree ~k () in
  let c =
    Yanc.Cluster.create ~tracing:true ~tuning:fast_tuning ?seed ~n
      ~net:built.N.Topo_gen.net ()
  in
  ignore
    (Yanc.Cluster.run_until ~tick:0.02 c (fun () -> Yanc.Cluster.converged c));
  (built, c)

(* One cross-node write under a client-side trace, the yancctl pattern:
   fresh trace → span over create_flow on node 0's replica for a switch
   owned elsewhere, stamping the flow's correlation key so the owner's
   driver resumes the trace at install time. *)
let traced_write built c =
  let dpid =
    List.find
      (fun d -> Yanc.Cluster.owner_index c d <> Some 0)
      built.N.Topo_gen.dpids
  in
  let swname = Y.Yanc_fs.switch_name_of_dpid dpid in
  let ctl0 = Yanc.Cluster.controller c 0 in
  let tr = Telemetry.tracer (Yanc.Controller.telemetry ctl0) in
  let id = Telemetry.Tracer.fresh tr in
  Fun.protect
    ~finally:(fun () -> Telemetry.Tracer.clear tr)
    (fun () ->
      Telemetry.Tracer.span tr ~stage:"test.flow_write" (fun () ->
          Telemetry.Tracer.stamp tr (Y.Layout.trace_key_flow ~switch:swname "t");
          let flow =
            { Y.Flowdir.default with
              Y.Flowdir.of_match =
                { Openflow.Of_match.any with Openflow.Of_match.in_port = Some 1 };
              actions = [ Openflow.Action.Output (Openflow.Action.Physical 2) ];
              priority = 77 }
          in
          match
            Y.Yanc_fs.create_flow (Yanc.Controller.yfs ctl0) ~cred
              ~switch:swname ~name:"t" flow
          with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "create_flow: %s" (Vfs.Errno.to_string e)));
  (id, dpid)

let test_one_trace_two_rings () =
  let built, c = boot_traced () in
  let id, dpid = traced_write built c in
  Alcotest.(check bool) "trace id minted" true (id <> 0);
  Yanc.Cluster.run_for ~tick:0.01 c 0.5;
  let owner =
    match Yanc.Cluster.owner_index c dpid with
    | Some i -> i
    | None -> Alcotest.fail "written switch unowned"
  in
  Alcotest.(check bool) "write targeted a foreign owner" true (owner <> 0);
  let spans i =
    match read_node_proc c i Y.Layout.proc_trace_pipe with
    | Ok d -> pipe_spans d
    | Error e -> Alcotest.failf "trace_pipe: %s" (Vfs.Errno.to_string e)
  in
  let stages_of l =
    List.filter_map (fun (t, st) -> if t = id then Some st else None) l
  in
  let st0 = stages_of (spans 0) and st_owner = stages_of (spans owner) in
  Alcotest.(check bool) "origin ring holds the client span" true
    (List.mem "test.flow_write" st0);
  Alcotest.(check bool) "origin ring holds dfs.forward" true
    (List.mem "dfs.forward" st0);
  Alcotest.(check bool) "owner ring resumed the same trace (dfs.apply)" true
    (List.mem "dfs.apply" st_owner);
  Alcotest.(check bool) "owner ring reached hardware (switch.install)" true
    (List.mem "switch.install" st_owner)

let test_cross_node_trace_determinism () =
  let run_once () =
    let built, c = boot_traced ~seed:42 () in
    ignore (traced_write built c);
    Yanc.Cluster.run_for ~tick:0.01 c 0.5;
    List.sort compare
      (List.concat_map
         (fun i ->
           match read_node_proc c i Y.Layout.proc_trace_pipe with
           | Ok d -> pipe_spans d
           | Error _ -> [])
         (Yanc.Cluster.live_indexes c))
  in
  let a = run_once () in
  let b = run_once () in
  Alcotest.(check bool) "traced spans present" true (a <> []);
  Alcotest.(check (list (pair int string)))
    "same seed, same cross-node span set" a b

(* A replication storm against a deliberately tiny trace ring: the ring
   overruns, and the accounting stays exact — every span ever recorded
   is either still drainable or counted dropped. *)
let test_ring_overflow_accounting_under_storm () =
  let reg = Telemetry.Registry.create () in
  let tr = Telemetry.Tracer.create ~capacity:8 reg in
  Telemetry.Tracer.set_enabled tr true;
  let c = Dfs.Cluster.create ~n:2 () in
  Dfs.Cluster.set_tracing c (Some ((fun _ -> Some tr), fun _ -> None));
  let fs0 = Dfs.Cluster.node c 0 in
  let p = Vfs.Path.of_string_exn in
  ignore (Vfs.Fs.mkdir_p fs0 ~cred (p "/storm"));
  Dfs.Cluster.flush c;
  let writes = 100 in
  for i = 1 to writes do
    ignore (Telemetry.Tracer.fresh tr);
    ignore
      (Vfs.Fs.write_file fs0 ~cred (p (Printf.sprintf "/storm/f%d" i)) "x");
    Telemetry.Tracer.clear tr
  done;
  Dfs.Cluster.flush c;
  let recorded = Telemetry.Tracer.spans_recorded tr in
  let dropped = Telemetry.Tracer.drops tr in
  let drained = List.length (Telemetry.Tracer.drain tr) in
  Alcotest.(check bool) "storm recorded at least one span per write" true
    (recorded >= writes);
  Alcotest.(check bool) "ring overran" true (dropped > 0);
  Alcotest.(check bool) "window bounded by capacity" true (drained <= 8);
  Alcotest.(check int) "accounting exact: recorded = dropped + drained"
    recorded (dropped + drained)

let test_rollup_matches_hand_merge () =
  let built, c = boot_traced () in
  ignore (traced_write built c);
  Yanc.Cluster.run_for ~tick:0.01 c 0.5;
  let live = Yanc.Cluster.live_indexes c in
  let regs =
    List.map
      (fun i ->
        Telemetry.registry (Yanc.Controller.telemetry (Yanc.Cluster.controller c i)))
      live
  in
  let roll = Yanc.Cluster.rollup_snapshot c in
  let get name =
    match Telemetry.Registry.find roll name with
    | Some v -> v
    | None -> Alcotest.failf "rollup missing %s" name
  in
  (* histogram: bucket-wise hand-merge with an independent upper-bound
     percentile walk must reproduce the rollup's flattened stats *)
  let series = "trace.dfs.apply" in
  let hs = List.map (fun r -> Telemetry.Registry.histogram r series) regs in
  let bucket i =
    List.fold_left (fun acc h -> acc + Telemetry.Registry.hist_bucket h i) 0 hs
  in
  let buckets = Array.init 63 bucket in
  let count = Array.fold_left ( + ) 0 buckets in
  Alcotest.(check bool) "apply spans landed" true (count > 0);
  let max_v =
    List.fold_left (fun acc h -> max acc (Telemetry.Registry.hist_max h)) 0. hs
  in
  let hand_percentile q =
    let rank =
      max 1 (min count (int_of_float (ceil (q *. float_of_int count))))
    in
    let i = ref 0 and cum = ref buckets.(0) in
    while !cum < rank && !i < 62 do
      incr i;
      cum := !cum + buckets.(!i)
    done;
    min (float_of_int (1 lsl (min 62 (!i + 1))) *. 1e-9) max_v
  in
  Alcotest.(check (float 0.)) "rollup count = summed buckets"
    (float_of_int count)
    (get (series ^ ".count"));
  Alcotest.(check (float 1e-15)) "rollup p50 = hand-merged percentile"
    (hand_percentile 0.5)
    (get (series ^ ".p50"));
  Alcotest.(check (float 1e-15)) "rollup p99 = hand-merged percentile"
    (hand_percentile 0.99)
    (get (series ^ ".p99"));
  Alcotest.(check (float 1e-15)) "rollup max = max of maxes" max_v
    (get (series ^ ".max"));
  Alcotest.(check (float 0.)) "rollup counts the live fleet"
    (float_of_int (List.length live))
    (get "cluster.live_nodes");
  (* the same rollup is served as a file at /yanc/cluster/.proc/metrics *)
  match
    Vfs.Fs.read_file
      (Yanc.Controller.fs (Yanc.Cluster.controller c (List.hd live)))
      ~cred
      (Y.Layout.proc_metrics ~proc:Y.Layout.cluster_proc_root)
  with
  | Error e -> Alcotest.failf "cluster metrics: %s" (Vfs.Errno.to_string e)
  | Ok data ->
    Alcotest.(check bool) "metrics file carries the merged series" true
      (List.exists
         (fun line ->
           match String.split_on_char ' ' line with
           | [ name; value ] ->
             name = series ^ ".count" && float_of_string value = float_of_int count
           | _ -> false)
         (String.split_on_char '\n' data))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_deterministic; prop_minimal_movement_leave;
      prop_minimal_movement_join; prop_replicas_owner_first;
      prop_balanced_cap; prop_balanced_deterministic;
      prop_balanced_movement_leave ]

let () =
  Alcotest.run "cluster"
    [ ("shard_map", qcheck_cases);
      ( "cluster",
        [ Alcotest.test_case "boot ownership" `Quick test_boot_ownership;
          Alcotest.test_case "cross-node flow reaches owner hardware" `Quick
            test_cross_node_flow_reaches_owner_hardware;
          Alcotest.test_case "kill one of two: takeover converges" `Quick
            test_kill_one_of_two_takeover;
          Alcotest.test_case "sync_subtree anti-entropy" `Quick
            test_sync_subtree_antientropy ] );
      ( "observability",
        [ Alcotest.test_case "one trace spans two rings" `Quick
            test_one_trace_two_rings;
          Alcotest.test_case "cross-node trace is deterministic" `Quick
            test_cross_node_trace_determinism;
          Alcotest.test_case "ring overflow accounting under a storm" `Quick
            test_ring_overflow_accounting_under_storm;
          Alcotest.test_case "cluster rollup matches a hand-merge" `Quick
            test_rollup_matches_hand_merge ] ) ]
