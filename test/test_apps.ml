(* Tests for the system applications: topology discovery, flow pusher,
   learning switch, router, ARP/DHCP daemons, auditor, accounting,
   migrator. Everything runs through the full controller assembly. *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module P = Packet
module Fs = Vfs.Fs

let cred = Vfs.Cred.root

let net_root = Y.Layout.default_root

let controller built =
  let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
  Yanc.Controller.attach_switches ctl;
  ctl

(* --- topology daemon (E5) -------------------------------------------------------- *)

let test_topology_linear () =
  let built = N.Topo_gen.linear 3 in
  let ctl = controller built in
  let topo = Apps.Topology.create (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.run_for ctl 3.0;
  let links = Apps.Topology.links topo in
  Alcotest.(check int) "2 links" 2 (List.length links);
  Alcotest.(check bool) "sw1-sw2" true
    (List.mem (("sw1", 1), ("sw2", 1)) links);
  Alcotest.(check bool) "sw2-sw3" true
    (List.mem (("sw2", 2), ("sw3", 1)) links);
  (* ground truth agrees with the simulator *)
  let yfs = Yanc.Controller.yfs ctl in
  List.iter
    (fun ((s1, p1), (s2, p2)) ->
      Alcotest.(check (option (pair string int)))
        (Printf.sprintf "symmetric %s/%d" s1 p1)
        (Some (s1, p1))
        (Y.Yanc_fs.peer_of yfs ~cred ~switch:s2 ~port:p2))
    links

let test_topology_fat_tree () =
  let built = N.Topo_gen.fat_tree ~k:4 () in
  let ctl = controller built in
  let topo = Apps.Topology.create (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.run_for ctl 4.0;
  (* k=4 fat tree: 8 core-agg + 16 agg-edge = wait: per pod 2x2 agg-edge
     (4) and per agg 2 core uplinks (4) -> 16 + 16 hosts links excluded *)
  let links = Apps.Topology.links topo in
  Alcotest.(check int) "all 32 fabric links discovered" 32 (List.length links)

let test_topology_link_failure_expiry () =
  let built = N.Topo_gen.linear 2 in
  let ctl = controller built in
  let topo = Apps.Topology.create ~probe_interval:0.5 ~ttl:1.0 (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.run_for ctl 2.0;
  Alcotest.(check int) "link up" 1 (List.length (Apps.Topology.links topo));
  N.Network.set_link_up built.net (N.Network.Sw (1L, 1)) false;
  Yanc.Controller.run_for ctl 3.0;
  Alcotest.(check int) "link aged out" 0 (List.length (Apps.Topology.links topo));
  N.Network.set_link_up built.net (N.Network.Sw (1L, 1)) true;
  Yanc.Controller.run_for ctl 3.0;
  Alcotest.(check int) "link rediscovered" 1 (List.length (Apps.Topology.links topo))

(* --- static flow pusher (E9) ------------------------------------------------------- *)

let test_pusher_parse () =
  let config =
    "# drop ssh at the edge\n\
     sw1 name=ssh-drop priority=40000 match.dl_type=0x0800 match.nw_proto=6 \
     match.tp_dst=22 action.0.out=drop\n\n\
     * name=flood priority=1 action.0.out=flood\n"
  in
  match Apps.Flow_pusher.parse config with
  | Error e -> Alcotest.fail e
  | Ok [ ssh; flood ] ->
    Alcotest.(check string) "switch" "sw1" ssh.Apps.Flow_pusher.switch;
    Alcotest.(check string) "name" "ssh-drop" ssh.Apps.Flow_pusher.name;
    Alcotest.(check int) "priority" 40000 ssh.Apps.Flow_pusher.flow.Y.Flowdir.priority;
    Alcotest.(check (option int)) "tp_dst" (Some 22)
      ssh.Apps.Flow_pusher.flow.Y.Flowdir.of_match.OF.Of_match.tp_dst;
    Alcotest.(check string) "wildcard switch" "*" flood.Apps.Flow_pusher.switch
  | Ok l -> Alcotest.failf "expected 2 specs, got %d" (List.length l)

let test_pusher_parse_errors () =
  Alcotest.(check bool) "missing name" true
    (Result.is_error (Apps.Flow_pusher.parse "sw1 priority=1"));
  Alcotest.(check bool) "bad key" true
    (Result.is_error (Apps.Flow_pusher.parse "sw1 name=x nonsense=1"));
  Alcotest.(check bool) "bad value with line number" true
    (match Apps.Flow_pusher.parse "\nsw1 name=x priority=banana" with
    | Error e -> String.length e > 6 && String.sub e 0 6 = "line 2"
    | Ok _ -> false)

let test_pusher_end_to_end () =
  let built = N.Topo_gen.linear 2 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.run_for ctl 0.2;
  (match
     Apps.Flow_pusher.push_config yfs ~cred "* name=flood priority=1 action.0.out=flood"
   with
  | Ok n -> Alcotest.(check int) "wrote to both switches" 2 n
  | Error e -> Alcotest.fail e);
  Yanc.Controller.run_for ctl 0.2;
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  Alcotest.(check bool) "ping via pushed flows" true
    (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ping_results h1 <> []))

(* --- learning switch ---------------------------------------------------------------- *)

let test_learning_switch () =
  let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
  let ctl = controller built in
  let learner = Apps.Learning_switch.create (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Learning_switch.app learner);
  Yanc.Controller.run_for ctl 0.5;
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  Alcotest.(check bool) "first ping (via flood + learn)" true
    (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ping_results h1 <> []));
  Alcotest.(check bool) "macs learned" true (Apps.Learning_switch.macs_learned learner >= 2);
  (* after learning, flows exist for both destinations *)
  let yfs = Yanc.Controller.yfs ctl in
  Alcotest.(check bool) "learned flows installed" true
    (List.length (Y.Yanc_fs.flow_names yfs ~cred "sw1") >= 2);
  (* second ping: hardware path *)
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 2) ~seq:2);
  Alcotest.(check bool) "second ping" true
    (Yanc.Controller.run_until ctl (fun () ->
         List.length (N.Sim_host.ping_results h1) >= 2))

(* --- reactive router (E9) ------------------------------------------------------------- *)

let router_rig topo =
  let ctl = controller topo in
  let topo_app = Apps.Topology.create (Yanc.Controller.yfs ctl) in
  let router = Apps.Router.create (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo_app);
  Yanc.Controller.add_app ctl (Apps.Router.app router);
  Yanc.Controller.run_for ctl 3.0;
  ctl, router

let ping_ok ctl net ~from_host ~to_n =
  let h = Option.get (N.Network.host net from_host) in
  let before = List.length (N.Sim_host.ping_results h) in
  N.Network.send_from_host net from_host
    (N.Sim_host.ping h ~now:(N.Network.now net) ~dst:(N.Topo_gen.host_ip to_n)
       ~seq:(before + 1));
  Yanc.Controller.run_until ctl (fun () ->
      List.length (N.Sim_host.ping_results h) > before)

let test_router_linear () =
  let built = N.Topo_gen.linear 4 in
  let ctl, router = router_rig built in
  Alcotest.(check bool) "h1 -> h4 across 4 switches" true
    (ping_ok ctl built.net ~from_host:"h1" ~to_n:4);
  Alcotest.(check bool) "paths installed" true (Apps.Router.paths_installed router > 0);
  Alcotest.(check bool) "hosts tracked" true (Apps.Router.hosts_tracked router >= 2);
  (* hosts are published in /net/hosts *)
  let yfs = Yanc.Controller.yfs ctl in
  Alcotest.(check bool) "hosts dir populated" true
    (List.length (Y.Yanc_fs.host_names yfs ~cred) >= 2)

let test_router_ring () =
  (* a ring has loops: broadcast-to-edges must not storm *)
  let built = N.Topo_gen.ring 4 in
  let ctl, _ = router_rig built in
  Alcotest.(check bool) "h1 -> h3 across the ring" true
    (ping_ok ctl built.net ~from_host:"h1" ~to_n:3)

let test_router_hardware_after_setup () =
  let built = N.Topo_gen.linear 3 in
  let ctl, router = router_rig built in
  Alcotest.(check bool) "first ping" true (ping_ok ctl built.net ~from_host:"h1" ~to_n:3);
  let paths = Apps.Router.paths_installed router in
  Alcotest.(check bool) "second ping" true (ping_ok ctl built.net ~from_host:"h1" ~to_n:3);
  Alcotest.(check int) "no new path setup for the repeat" paths
    (Apps.Router.paths_installed router)

(* --- arp daemon ------------------------------------------------------------------------ *)

let test_arp_daemon_proxy () =
  let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.run_for ctl 0.3;
  (* hosts table seeded (as the router or dhcp would) *)
  let arpd = Apps.Arp_daemon.create yfs in
  Yanc.Controller.add_app ctl (Apps.Arp_daemon.app arpd);
  ignore
    (Y.Yanc_fs.upsert_host yfs ~cred ~name:"h2" ~mac:(N.Topo_gen.host_mac 2)
       ~ip:(Some (N.Topo_gen.host_ip 2)) ());
  Yanc.Controller.run_for ctl 0.3;
  (* h1 ARPs for h2; the daemon proxy-answers from hosts/ *)
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    [ N.Sim_host.arp_probe h1 ~target:(N.Topo_gen.host_ip 2) ];
  Alcotest.(check bool) "cache fills via proxy" true
    (Yanc.Controller.run_until ctl (fun () ->
         List.mem_assoc (N.Topo_gen.host_ip 2) (N.Sim_host.arp_cache h1)));
  Alcotest.(check bool) "daemon answered" true (Apps.Arp_daemon.replies_sent arpd > 0);
  Alcotest.(check bool) "right mac learned" true
    (P.Mac.equal
       (List.assoc (N.Topo_gen.host_ip 2) (N.Sim_host.arp_cache h1))
       (N.Topo_gen.host_mac 2))

(* --- dhcp daemon ------------------------------------------------------------------------ *)

let test_dhcp_daemon () =
  let built = N.Topo_gen.linear ~hosts_per_switch:2 ~dhcp:true 1 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  let pool = [ Option.get (P.Ipv4_addr.of_string "10.9.0.1");
               Option.get (P.Ipv4_addr.of_string "10.9.0.2") ] in
  let dhcpd = Apps.Dhcp_daemon.create ~pool yfs in
  Yanc.Controller.add_app ctl (Apps.Dhcp_daemon.app dhcpd);
  Yanc.Controller.run_for ctl 0.3;
  let h1 = Option.get (N.Network.host built.net "h1") in
  let h2 = Option.get (N.Network.host built.net "h2") in
  Alcotest.(check (option string)) "h1 starts unconfigured" None
    (Option.map P.Ipv4_addr.to_string (N.Sim_host.ip h1));
  N.Network.send_from_host built.net "h1"
    [ N.Sim_host.dhcp_discover h1 ~now:0. ];
  Alcotest.(check bool) "h1 leased" true
    (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ip h1 <> None));
  N.Network.send_from_host built.net "h2"
    [ N.Sim_host.dhcp_discover h2 ~now:0. ];
  Alcotest.(check bool) "h2 leased" true
    (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ip h2 <> None));
  Alcotest.(check bool) "distinct addresses" true (N.Sim_host.ip h1 <> N.Sim_host.ip h2);
  Alcotest.(check int) "two leases recorded" 2 (List.length (Apps.Dhcp_daemon.leases dhcpd));
  (* leases published under hosts/ *)
  Alcotest.(check int) "hosts dir has both" 2
    (List.length (Y.Yanc_fs.host_names yfs ~cred))

(* --- auditor / accounting (cron apps) ------------------------------------------------------ *)

let test_auditor () =
  let built = N.Topo_gen.linear 1 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.run_for ctl 0.3;
  (* a healthy switch: only info findings *)
  let findings = Apps.Auditor.audit yfs ~cred in
  Alcotest.(check bool) "no problems on healthy net" true
    (List.for_all (fun f -> f.Apps.Auditor.severity = `Info) findings);
  (* break something: uncommitted flow + bogus field *)
  let fs = Yanc.Controller.fs ctl in
  ignore (Fs.mkdir fs ~cred (Vfs.Path.of_string_exn "/net/switches/sw1/flows/limbo"));
  let bad = Y.Layout.flow ~root:net_root ~switch:"sw1" "bad" in
  ignore (Fs.mkdir fs ~cred bad);
  ignore (Fs.write_file fs ~cred (Vfs.Path.child bad "match.nw_src") "zzz");
  ignore (Fs.write_file fs ~cred (Vfs.Path.child bad "version") "1");
  let findings = Apps.Auditor.audit yfs ~cred in
  Alcotest.(check bool) "uncommitted flagged" true
    (List.exists
       (fun f ->
         f.Apps.Auditor.severity = `Warning
         && String.length f.message > 4
         && String.sub f.message 0 4 = "flow")
       findings);
  Alcotest.(check bool) "parse error flagged" true
    (List.exists (fun f -> f.Apps.Auditor.severity = `Error) findings);
  (* conflicting overlap: two same-priority flows, overlapping matches,
     different actions *)
  ignore
    (Apps.Flow_pusher.push_config yfs ~cred
       "sw1 name=ovl-a priority=700 match.tp_dst=80 action.0.out=1\n\
        sw1 name=ovl-b priority=700 match.nw_proto=6 action.0.out=drop");
  let findings = Apps.Auditor.audit yfs ~cred in
  Alcotest.(check bool) "overlap flagged" true
    (List.exists
       (fun f ->
         f.Apps.Auditor.severity = `Warning
         &&
         let msg = f.Apps.Auditor.message in
         let has needle =
           let nl = String.length needle and hl = String.length msg in
           let rec at i = i + nl <= hl && (String.sub msg i nl = needle || at (i + 1)) in
           nl = 0 || at 0
         in
         has "overlaps" && has "priority 700")
       findings);
  (* report written outside /net *)
  let out = Vfs.Path.of_string_exn "/var/log/audit.txt" in
  (match Apps.Auditor.run_to_file yfs ~cred ~out with
  | Ok problems -> Alcotest.(check bool) "problems counted" true (problems >= 2)
  | Error e -> Alcotest.failf "run_to_file: %s" (Vfs.Errno.to_string e));
  Alcotest.(check bool) "report exists" true (Fs.exists fs ~cred out)

let test_accounting () =
  let built = N.Topo_gen.linear 2 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  let dir = Vfs.Path.of_string_exn "/var/accounting" in
  Yanc.Controller.add_app ctl (Apps.Accounting.app yfs ~cred ~dir ~period:1.0);
  (* the "*" target resolves against switches present, so handshake first *)
  Yanc.Controller.run_for ctl 0.3;
  ignore
    (Apps.Flow_pusher.push_config yfs ~cred "* name=flood priority=1 action.0.out=flood");
  Yanc.Controller.run_for ctl 0.5;
  (* traffic *)
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net) ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  Yanc.Controller.run_for ctl 7.0;
  let fs = Yanc.Controller.fs ctl in
  let csv =
    match Fs.read_file fs ~cred (Vfs.Path.child dir "sw1.csv") with
    | Ok v -> v
    | Error e -> Alcotest.failf "no csv: %s" (Vfs.Errno.to_string e)
  in
  Alcotest.(check bool) "csv rows appended" true
    (List.length (String.split_on_char '\n' csv) > 2);
  let usages = Apps.Accounting.collect yfs ~cred in
  Alcotest.(check int) "both switches" 2 (List.length usages);
  Alcotest.(check bool) "bytes counted" true
    (List.exists (fun u -> u.Apps.Accounting.bytes > 0L) usages)

(* --- migrator (E10) -------------------------------------------------------------------------- *)

let test_migrator () =
  let built = N.Topo_gen.linear 2 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.run_for ctl 0.3;
  ignore
    (Apps.Flow_pusher.push_config yfs ~cred
       "sw1 name=a priority=5 match.tp_dst=80 action.0.out=2\n\
        sw1 name=b priority=6 match.tp_dst=443 action.0.out=2");
  Yanc.Controller.run_for ctl 0.3;
  (match Apps.Migrator.move_flows yfs ~cred ~src:"sw1" ~dst:"sw2" () with
  | Ok n -> Alcotest.(check int) "moved 2" 2 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "source empty" [] (Y.Yanc_fs.flow_names yfs ~cred "sw1");
  Alcotest.(check (list string)) "destination has them" [ "a"; "b" ]
    (Y.Yanc_fs.flow_names yfs ~cred "sw2");
  Yanc.Controller.run_for ctl 0.3;
  (* hardware followed the move *)
  let flows dpid =
    match N.Network.switch built.net dpid with
    | Some sw -> (
      match N.Sim_switch.table sw 0 with
      | Some t -> N.Flow_table.length t
      | None -> -1)
    | None -> -1
  in
  Alcotest.(check int) "sw1 hardware empty" 0 (flows 1L);
  Alcotest.(check int) "sw2 hardware has both" 2 (flows 2L)

let test_migrator_port_map () =
  let built = N.Topo_gen.linear 2 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.run_for ctl 0.3;
  ignore
    (Apps.Flow_pusher.push_config yfs ~cred
       "sw1 name=f priority=5 match.in_port=1 action.0.out=2");
  (match
     Apps.Migrator.copy_flows yfs ~cred ~src:"sw1" ~dst:"sw2"
       ~port_map:(fun p -> p + 10) ()
   with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "copied %d" n
  | Error e -> Alcotest.fail e);
  match Y.Yanc_fs.read_flow yfs ~cred ~switch:"sw2" "f" with
  | Ok flow ->
    Alcotest.(check (option int)) "in_port remapped" (Some 11)
      flow.Y.Flowdir.of_match.OF.Of_match.in_port;
    Alcotest.(check bool) "output remapped" true
      (flow.Y.Flowdir.actions = [ OF.Action.Output (OF.Action.Physical 12) ])
  | Error e -> Alcotest.fail e

(* --- scheduler --------------------------------------------------------------------------------- *)

let test_switch_watcher () =
  (* §5.2 verbatim: "to monitor for new switches a watch can be placed
     on the switches directory" — the watcher sees drivers come and go
     without ever listing or polling. *)
  let built = N.Topo_gen.linear 2 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  let provisioned = ref [] in
  let watcher =
    Apps.Switch_watcher.create
      ~on_change:(function
        | Apps.Switch_watcher.Added name -> provisioned := name :: !provisioned
        | Apps.Switch_watcher.Removed _ -> ())
      yfs
  in
  Yanc.Controller.add_app ctl (Apps.Switch_watcher.app watcher);
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check (list string)) "both arrivals seen" [ "sw1"; "sw2" ]
    (Apps.Switch_watcher.current watcher);
  Alcotest.(check int) "callback ran per switch" 2 (List.length !provisioned);
  (* removal: an admin rm -r's a switch *)
  ignore (Y.Yanc_fs.remove_switch yfs "sw2");
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check (list string)) "departure seen" [ "sw1" ]
    (Apps.Switch_watcher.current watcher);
  Alcotest.(check bool) "log records it" true
    (List.exists
       (fun (_, c) -> c = Apps.Switch_watcher.Removed "sw2")
       (Apps.Switch_watcher.log watcher));
  Apps.Switch_watcher.close watcher

let test_config_parse () =
  let text =
    "# demo\n\
     topology fat-tree:4\n\
     protocol openflow13\n\
     app topology\n\
     app router\n\
     duration 5.5\n\
     flow * name=f priority=1 action.0.out=flood\n"
  in
  match Yanc.Config.parse text with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check string) "topology" "fat-tree:4" c.Yanc.Config.topology;
    Alcotest.(check bool) "of13" true c.of13;
    Alcotest.(check (list string)) "apps in order" [ "topology"; "router" ] c.apps;
    Alcotest.(check (float 1e-9)) "duration" 5.5 c.duration;
    Alcotest.(check int) "flows" 1 (List.length c.flows);
    (* roundtrip *)
    (match Yanc.Config.parse (Yanc.Config.to_string c) with
    | Ok c2 -> Alcotest.(check bool) "roundtrip" true (c = c2)
    | Error e -> Alcotest.fail e)

let test_config_errors () =
  let bad s expected_line =
    match Yanc.Config.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error names line for %S" s)
        true
        (String.length e > String.length expected_line
        && String.sub e 0 (String.length expected_line) = expected_line)
  in
  bad "nonsense here" "line 1";
  bad "topology ok\nprotocol openflow99" "line 2";
  bad "duration soon" "line 1";
  bad "\n\napp" "line 3"

let test_scheduler_kinds () =
  let sched = Yanc.Scheduler.create () in
  let daemon_runs = ref 0
  and cron_runs = ref 0
  and oneshot_runs = ref 0 in
  Yanc.Scheduler.add sched
    (Apps.App_intf.daemon ~name:"d" (fun ~now:_ -> incr daemon_runs));
  Yanc.Scheduler.add sched
    (Apps.App_intf.cron ~name:"c" ~period:10. (fun ~now:_ -> incr cron_runs));
  Yanc.Scheduler.add sched
    (Apps.App_intf.oneshot ~name:"o" (fun ~now:_ -> incr oneshot_runs));
  ignore (Yanc.Scheduler.tick sched ~now:0.);
  ignore (Yanc.Scheduler.tick sched ~now:1.);
  ignore (Yanc.Scheduler.tick sched ~now:11.);
  Alcotest.(check int) "daemon every tick" 3 !daemon_runs;
  Alcotest.(check int) "cron twice (0 and 11)" 2 !cron_runs;
  Alcotest.(check int) "oneshot once" 1 !oneshot_runs;
  Alcotest.(check (list string)) "names" [ "d"; "c"; "o" ] (Yanc.Scheduler.apps sched)

(* --- ECMP router ---------------------------------------------------------------- *)

(* Provision the inventory the way the scale bench does: peer symlinks
   for fabric links, /net/hosts records with attachment points. *)
let ecmp_provision ctl built =
  let yfs = Yanc.Controller.yfs ctl in
  let sw = Y.Yanc_fs.switch_name_of_dpid in
  List.iter
    (fun (a, b) ->
      match (a, b) with
      | N.Network.Sw (d1, p1), N.Network.Sw (d2, p2) ->
        ignore
          (Y.Yanc_fs.set_peer yfs ~cred ~switch:(sw d1) ~port:p1
             ~peer:(Some (sw d2, p2)));
        ignore
          (Y.Yanc_fs.set_peer yfs ~cred ~switch:(sw d2) ~port:p2
             ~peer:(Some (sw d1, p1)))
      | N.Network.Sw (d, p), N.Network.Hst h
      | N.Network.Hst h, N.Network.Sw (d, p) ->
        let i = int_of_string (String.sub h 1 (String.length h - 1)) in
        ignore
          (Y.Yanc_fs.upsert_host yfs ~cred ~name:h
             ~mac:(N.Topo_gen.host_mac i) ~ip:(Some (N.Topo_gen.host_ip i))
             ~attached_to:(sw d, p) ())
      | N.Network.Hst _, N.Network.Hst _ -> ())
    (N.Network.link_endpoints built.N.Topo_gen.net)

(* Two leaves, [spines] equal-cost paths between them, two hosts per
   leaf — the minimal ECMP fabric. *)
let ecmp_rig ?delivery ?(spines = 2) () =
  let built = N.Topo_gen.clos ~spines ~leaves:2 ~hosts_per_leaf:2 () in
  let ctl = controller built in
  Yanc.Controller.run_for ctl 0.5;
  ecmp_provision ctl built;
  let d = Apps.Ecmp_router.create ?delivery (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Ecmp_router.app d);
  (built, ctl, d)

let ecmp_syn ~src ~dst ~sport ?(dport = 80) () =
  P.Builder.tcp_syn ~src_mac:(N.Topo_gen.host_mac src)
    ~dst_mac:(N.Topo_gen.host_mac dst) ~src_ip:(N.Topo_gen.host_ip src)
    ~dst_ip:(N.Topo_gen.host_ip dst) ~src_port:sport ~dst_port:dport

let ecmp_flows ctl switch =
  List.filter
    (fun n -> String.length n >= 5 && String.sub n 0 5 = "ecmp-")
    (Y.Yanc_fs.flow_names (Yanc.Controller.yfs ctl) ~cred switch)

let ecmp_counter ctl name =
  let reg = Telemetry.registry (Yanc.Controller.telemetry ctl) in
  Telemetry.Registry.value (Telemetry.Registry.counter reg name)

(* dpids in a clos: spines first, then leaves. *)
let test_ecmp_installs_path () =
  let built, ctl, d = ecmp_rig () in
  let net = built.N.Topo_gen.net in
  N.Network.send_from_host net "h1" [ ecmp_syn ~src:1 ~dst:3 ~sport:10001 () ];
  Yanc.Controller.run_for ctl 0.5;
  Alcotest.(check int) "one path installed" 1
    (Apps.Ecmp_router.paths_installed d);
  Alcotest.(check int) "rule on the source leaf" 1
    (List.length (ecmp_flows ctl "sw3"));
  Alcotest.(check int) "rule on the destination leaf" 1
    (List.length (ecmp_flows ctl "sw4"));
  Alcotest.(check int) "exactly one spine carries the flow" 1
    (List.length (ecmp_flows ctl "sw1") + List.length (ecmp_flows ctl "sw2"));
  Alcotest.(check bool) "both endpoints tracked" true
    (Apps.Ecmp_router.hosts_tracked d >= 4);
  (* the same 12-tuple now forwards in hardware: no new packet-in for
     the forward direction (the delivered SYN may provoke the reverse
     path, nothing more) *)
  let before = Apps.Ecmp_router.paths_installed d in
  N.Network.send_from_host net "h1" [ ecmp_syn ~src:1 ~dst:3 ~sport:10001 () ];
  Yanc.Controller.run_for ctl 0.5;
  let after = Apps.Ecmp_router.paths_installed d in
  Alcotest.(check bool) "no duplicate forward path" true
    (after - before <= 1);
  N.Network.send_from_host net "h1" [ ecmp_syn ~src:1 ~dst:3 ~sport:10001 () ];
  Yanc.Controller.run_for ctl 0.5;
  Alcotest.(check int) "stable once both directions exist" after
    (Apps.Ecmp_router.paths_installed d)

let test_ecmp_spreads_across_spines () =
  let built, ctl, d = ecmp_rig ~spines:4 () in
  let net = built.N.Topo_gen.net in
  (* 32 distinct flows between the same host pair: the 12-tuple hash
     must spread them over the equal-cost spines *)
  N.Network.send_from_host net "h1"
    (List.init 32 (fun i -> ecmp_syn ~src:1 ~dst:3 ~sport:(20000 + i) ()));
  Yanc.Controller.run_for ctl 1.0;
  Alcotest.(check bool) "all flows routed" true
    (Apps.Ecmp_router.paths_installed d >= 32);
  (* with 4 spines the leaves are sw5/sw6; sw1..sw4 are the spines *)
  let spine_hit =
    List.filter
      (fun s -> ecmp_flows ctl s <> [])
      [ "sw1"; "sw2"; "sw3"; "sw4" ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "flows spread over >= 2 spines (hit %d)"
       (List.length spine_hit))
    true
    (List.length spine_hit >= 2)

let test_ecmp_unknown_dst_drops () =
  let built, ctl, d = ecmp_rig () in
  let net = built.N.Topo_gen.net in
  let ghost =
    P.Builder.tcp_syn ~src_mac:(N.Topo_gen.host_mac 1)
      ~dst_mac:(N.Topo_gen.host_mac 99) ~src_ip:(N.Topo_gen.host_ip 1)
      ~dst_ip:(N.Topo_gen.host_ip 99) ~src_port:1234 ~dst_port:80
  in
  N.Network.send_from_host net "h1" [ ghost ];
  Yanc.Controller.run_for ctl 0.5;
  Alcotest.(check int) "nothing installed" 0 (Apps.Ecmp_router.paths_installed d);
  Alcotest.(check bool) "unknown destination counted" true
    (ecmp_counter ctl "app.ecmpd.unknown_dst" >= 1)

let test_ecmp_eventdir_mode () =
  let built, ctl, d = ecmp_rig ~delivery:Apps.Ecmp_router.Eventdir () in
  let net = built.N.Topo_gen.net in
  N.Network.send_from_host net "h1" [ ecmp_syn ~src:1 ~dst:4 ~sport:30001 () ];
  Yanc.Controller.run_for ctl 0.5;
  Alcotest.(check int) "path installed through the slow path" 1
    (Apps.Ecmp_router.paths_installed d);
  Alcotest.(check int) "destination leaf programmed" 1
    (List.length (ecmp_flows ctl "sw4"))

let () =
  Alcotest.run "apps"
    [ ( "topology",
        [ Alcotest.test_case "linear" `Quick test_topology_linear;
          Alcotest.test_case "fat tree" `Quick test_topology_fat_tree;
          Alcotest.test_case "failure expiry" `Quick test_topology_link_failure_expiry ] );
      ( "flow-pusher",
        [ Alcotest.test_case "parse" `Quick test_pusher_parse;
          Alcotest.test_case "parse errors" `Quick test_pusher_parse_errors;
          Alcotest.test_case "end to end" `Quick test_pusher_end_to_end ] );
      ( "learning-switch",
        [ Alcotest.test_case "learn and forward" `Quick test_learning_switch ] );
      ( "router",
        [ Alcotest.test_case "linear path" `Quick test_router_linear;
          Alcotest.test_case "ring" `Quick test_router_ring;
          Alcotest.test_case "hardware repeat" `Quick test_router_hardware_after_setup ] );
      ( "ecmp",
        [ Alcotest.test_case "installs a multi-hop path" `Quick
            test_ecmp_installs_path;
          Alcotest.test_case "spreads across spines" `Quick
            test_ecmp_spreads_across_spines;
          Alcotest.test_case "unknown dst drops" `Quick
            test_ecmp_unknown_dst_drops;
          Alcotest.test_case "eventdir delivery" `Quick
            test_ecmp_eventdir_mode ] );
      ( "daemons",
        [ Alcotest.test_case "arp proxy" `Quick test_arp_daemon_proxy;
          Alcotest.test_case "dhcp" `Quick test_dhcp_daemon ] );
      ( "cron-apps",
        [ Alcotest.test_case "auditor" `Quick test_auditor;
          Alcotest.test_case "accounting" `Quick test_accounting ] );
      ( "switch-watcher",
        [ Alcotest.test_case "event-driven inventory" `Quick test_switch_watcher ] );
      ( "migrator",
        [ Alcotest.test_case "move flows" `Quick test_migrator;
          Alcotest.test_case "port map" `Quick test_migrator_port_map ] );
      "scheduler", [ Alcotest.test_case "kinds" `Quick test_scheduler_kinds ];
      ( "config",
        [ Alcotest.test_case "parse + roundtrip" `Quick test_config_parse;
          Alcotest.test_case "errors" `Quick test_config_errors ] ) ]
