(* End-to-end integration tests (E9 and friends): the full prototype of
   paper §8 — OF drivers, static flow pusher (as an actual shell
   script), topology daemon, reactive router — plus administration with
   coreutils against the live controller and the middlebox-migration
   story (§7.2). *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module P = Packet
module Fs = Vfs.Fs

let cred = Vfs.Cred.root

let full_stack built =
  let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
  Yanc.Controller.attach_switches ctl;
  let topo = Apps.Topology.create (Yanc.Controller.yfs ctl) in
  let router = Apps.Router.create (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.add_app ctl (Apps.Router.app router);
  Yanc.Controller.run_for ctl 3.0;
  ctl, topo, router

let ping ctl net ~src ~dst_n =
  let h = Option.get (N.Network.host net src) in
  let before = List.length (N.Sim_host.ping_results h) in
  N.Network.send_from_host net src
    (N.Sim_host.ping h ~now:(N.Network.now net) ~dst:(N.Topo_gen.host_ip dst_n)
       ~seq:(before + 1));
  Yanc.Controller.run_until ctl (fun () ->
      List.length (N.Sim_host.ping_results h) > before)

let test_fat_tree_all_pairs () =
  (* The §8 prototype story at datacenter shape: every host can reach
     every other across a k=4 fat tree through the reactive router. *)
  let built = N.Topo_gen.fat_tree ~k:4 () in
  let ctl, topo, router = full_stack built in
  Alcotest.(check int) "full fabric discovered" 32
    (List.length (Apps.Topology.links topo));
  (* a representative sample of host pairs (all 240 would be slow) *)
  List.iter
    (fun (src, dst) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s -> h%d" src dst)
        true
        (ping ctl built.net ~src ~dst_n:dst))
    [ "h1", 2 (* same edge switch *);
      "h1", 3 (* same pod, different edge *);
      "h1", 16 (* across the core *);
      "h16", 1 (* and back *);
      "h5", 12 ];
  Alcotest.(check bool) "paths were installed" true
    (Apps.Router.paths_installed router > 0)

let test_tcp_through_fabric () =
  let built = N.Topo_gen.linear 3 in
  let ctl, _, _ = full_stack built in
  let h1 = Option.get (N.Network.host built.net "h1") in
  let h3 = Option.get (N.Network.host built.net "h3") in
  N.Sim_host.listen h3 80;
  (* resolve the mac first with a ping, then connect *)
  Alcotest.(check bool) "warm up" true (ping ctl built.net ~src:"h1" ~dst_n:3);
  let dst_mac = List.assoc (N.Topo_gen.host_ip 3) (N.Sim_host.arp_cache h1) in
  N.Network.send_from_host built.net "h1"
    [ N.Sim_host.tcp_connect h1 ~dst_ip:(N.Topo_gen.host_ip 3) ~dst_mac
        ~src_port:45000 ~dst_port:80 ];
  Alcotest.(check bool) "handshake completes across fabric" true
    (Yanc.Controller.run_until ctl (fun () ->
         List.mem (45000, 80) (N.Sim_host.tcp_established h1)))

let test_link_failure_reroute () =
  (* Ring: kill one link; flows time out; the router finds the long way
     around using the refreshed topology. *)
  let built = N.Topo_gen.ring 4 in
  let ctl, topo, _ = full_stack built in
  Alcotest.(check int) "ring discovered" 4 (List.length (Apps.Topology.links topo));
  Alcotest.(check bool) "ping before failure" true (ping ctl built.net ~src:"h1" ~dst_n:2);
  (* cut the direct sw1-sw2 link *)
  N.Network.set_link_up built.net (N.Network.Sw (1L, 1)) false;
  (* wait out LLDP ttl (3s) and the router's idle timeouts (30s) *)
  Yanc.Controller.run_for ctl 35.;
  Alcotest.(check int) "link aged out of the topology" 3
    (List.length (Apps.Topology.links topo));
  Alcotest.(check bool) "ping after reroute" true (ping ctl built.net ~src:"h1" ~dst_n:2)

let test_shell_administration_live () =
  (* §5.4 against a LIVE network: inspect with ls, push a flow with
     echo, shut a port with echo 1 > config.port_down. *)
  let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  Yanc.Controller.run_for ctl 0.3;
  let sh = Shell.Env.create (Yanc.Controller.fs ctl) in
  let out line =
    let r = Shell.Pipeline.run sh line in
    if r.Shell.Pipeline.code <> 0 then
      Alcotest.failf "shell: %s failed: %s" line r.Shell.Pipeline.err;
    r.Shell.Pipeline.out
  in
  (* "a quick overview of the switches in a network" *)
  Alcotest.(check string) "ls /net/switches" "sw1\n" (out "ls /net/switches");
  Alcotest.(check bool) "ls -l works" true (String.length (out "ls -l /net/switches") > 0);
  (* the static flow pusher as a real shell script *)
  let script =
    "mkdir /net/switches/sw1/flows/flood\n\
     echo flood > /net/switches/sw1/flows/flood/action.0.out\n\
     echo 10 > /net/switches/sw1/flows/flood/priority\n\
     echo 1 > /net/switches/sw1/flows/flood/version\n"
  in
  let r = Shell.Pipeline.run_script sh script in
  Alcotest.(check int) "pusher script ok" 0 r.Shell.Pipeline.code;
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check bool) "flow pushed from the shell works" true
    (ping ctl built.net ~src:"h1" ~dst_n:2);
  (* inspect flows with find | grep *)
  Alcotest.(check string) "find the flow" "/net/switches/sw1/flows/flood\n"
    (out "find /net -type d -name flood");
  (* cat the live counters *)
  Yanc.Controller.run_for ctl 6.0;
  let packets = out "cat /net/switches/sw1/flows/flood/counters/packets" in
  Alcotest.(check bool) "live counters readable" true
    (int_of_string (String.trim packets) > 0);
  (* shut the port down from the shell; traffic stops *)
  ignore (out "echo 1 > /net/switches/sw1/ports/port_1/config.port_down");
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check bool) "port down blocks traffic" false
    (ping ctl built.net ~src:"h1" ~dst_n:2);
  ignore (out "echo 0 > /net/switches/sw1/ports/port_1/config.port_down");
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check bool) "port up restores traffic" true
    (ping ctl built.net ~src:"h1" ~dst_n:2)

let test_switch_rename_via_mv () =
  (* Switches "can be created, deleted, and renamed with the standard
     file system calls" (§3.2) — here with the shell's mv on a live
     tree. *)
  let built = N.Topo_gen.linear 1 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  Yanc.Controller.run_for ctl 0.3;
  let sh = Shell.Env.create (Yanc.Controller.fs ctl) in
  let r = Shell.Pipeline.run sh "mv /net/switches/sw1 /net/switches/edge-1" in
  Alcotest.(check int) "mv ok" 0 r.Shell.Pipeline.code;
  Alcotest.(check (list string)) "renamed" [ "edge-1" ]
    (Y.Yanc_fs.switch_names (Yanc.Controller.yfs ctl))

let test_middlebox_migration_cp () =
  (* §7.2: "we can use command line utilities such as cp or mv to move
     state around rather than custom protocols". A 'firewall middlebox'
     is flow state on sw1; scale it out to sw2 with cp -r, drain sw1
     with rm -r. *)
  let built = N.Topo_gen.linear 2 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  Yanc.Controller.run_for ctl 0.3;
  let yfs = Yanc.Controller.yfs ctl in
  ignore
    (Apps.Flow_pusher.push_config yfs ~cred
       "sw1 name=fw-drop-telnet priority=500 match.dl_type=0x0800 \
        match.nw_proto=6 match.tp_dst=23 action.0.out=drop");
  Yanc.Controller.run_for ctl 0.3;
  let sh = Shell.Env.create (Yanc.Controller.fs ctl) in
  let r =
    Shell.Pipeline.run sh
      "cp -r /net/switches/sw1/flows/fw-drop-telnet /net/switches/sw2/flows/fw-drop-telnet"
  in
  Alcotest.(check int) "cp ok" 0 r.Shell.Pipeline.code;
  Yanc.Controller.run_for ctl 0.3;
  (* both switches now enforce the rule in hardware *)
  let entries dpid =
    match N.Network.switch built.net dpid with
    | Some sw -> (
      match N.Sim_switch.table sw 0 with
      | Some t -> N.Flow_table.entries t
      | None -> [])
    | None -> []
  in
  Alcotest.(check int) "sw1 enforces" 1 (List.length (entries 1L));
  Alcotest.(check int) "sw2 enforces after cp" 1 (List.length (entries 2L));
  (* drain the original: rm -r the flow dir *)
  let r2 = Shell.Pipeline.run sh "rm -r /net/switches/sw1/flows/fw-drop-telnet" in
  Alcotest.(check int) "rm ok" 0 r2.Shell.Pipeline.code;
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check int) "sw1 drained" 0 (List.length (entries 1L));
  Alcotest.(check int) "sw2 keeps serving" 1 (List.length (entries 2L))

let test_multi_app_coexistence () =
  (* §2: multiple black-box applications on one network, with defined
     interaction: topology + router + arp proxy + auditor + accounting
     all running; the network still works and every app does its job. *)
  let built = N.Topo_gen.star ~leaves:3 () in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  let topo = Apps.Topology.create yfs in
  let router = Apps.Router.create yfs in
  let arpd = Apps.Arp_daemon.create yfs in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.add_app ctl (Apps.Router.app router);
  Yanc.Controller.add_app ctl (Apps.Arp_daemon.app arpd);
  Yanc.Controller.add_app ctl
    (Apps.Auditor.app yfs ~cred ~out:(Vfs.Path.of_string_exn "/var/log/audit") ~period:2.);
  Yanc.Controller.add_app ctl
    (Apps.Accounting.app yfs ~cred ~dir:(Vfs.Path.of_string_exn "/var/acct") ~period:2.);
  Yanc.Controller.run_for ctl 3.0;
  Alcotest.(check bool) "h1 -> h2" true (ping ctl built.net ~src:"h1" ~dst_n:2);
  Alcotest.(check bool) "h2 -> h3" true (ping ctl built.net ~src:"h2" ~dst_n:3);
  Yanc.Controller.run_for ctl 3.0;
  let fs = Yanc.Controller.fs ctl in
  Alcotest.(check bool) "auditor wrote its report" true
    (Fs.exists fs ~cred (Vfs.Path.of_string_exn "/var/log/audit"));
  Alcotest.(check bool) "accounting wrote csvs" true
    (Fs.exists fs ~cred (Vfs.Path.of_string_exn "/var/acct/sw1.csv"));
  Alcotest.(check bool) "router tracked hosts" true (Apps.Router.hosts_tracked router >= 3)

let test_network_boots_from_nothing () =
  (* The full §2 application ecosystem bootstrapping a cold network:
     hosts have no addresses; dhcpd leases them, publishing hosts/;
     arpd proxy-answers from hosts/; the router then routes — each
     daemon a separate "process" touching only files. *)
  let built = N.Topo_gen.linear ~hosts_per_switch:1 ~dhcp:true 2 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  let pool =
    List.map
      (fun i -> Option.get (P.Ipv4_addr.of_string (Printf.sprintf "10.7.0.%d" i)))
      [ 1; 2 ]
  in
  Yanc.Controller.add_app ctl (Apps.Topology.app (Apps.Topology.create yfs));
  Yanc.Controller.add_app ctl (Apps.Router.app (Apps.Router.create yfs));
  Yanc.Controller.add_app ctl
    (Apps.Dhcp_daemon.app (Apps.Dhcp_daemon.create ~pool yfs));
  Yanc.Controller.add_app ctl (Apps.Arp_daemon.app (Apps.Arp_daemon.create yfs));
  Yanc.Controller.run_for ctl 3.0;
  (* hosts boot *)
  let h1 = Option.get (N.Network.host built.net "h1") in
  let h2 = Option.get (N.Network.host built.net "h2") in
  N.Network.send_from_host built.net "h1" [ N.Sim_host.dhcp_discover h1 ~now:0. ];
  Alcotest.(check bool) "h1 got a lease" true
    (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ip h1 <> None));
  N.Network.send_from_host built.net "h2" [ N.Sim_host.dhcp_discover h2 ~now:0. ];
  Alcotest.(check bool) "h2 got a lease" true
    (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ip h2 <> None));
  (* h1 pings h2's leased address: needs arpd (proxy answer from
     hosts/) and the router (path setup) *)
  let h2_ip = Option.get (N.Sim_host.ip h2) in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net) ~dst:h2_ip ~seq:1);
  Alcotest.(check bool) "leased-address ping" true
    (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ping_results h1 <> []));
  (* both leases visible as files *)
  Alcotest.(check int) "hosts/ has both" 2
    (List.length (Y.Yanc_fs.host_names yfs ~cred))

let test_of13_only_network_end_to_end () =
  (* everything, but the whole network speaks OF 1.3 *)
  let built = N.Topo_gen.linear 2 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ~version:Yanc.Controller.V13 ctl;
  let topo = Apps.Topology.create (Yanc.Controller.yfs ctl) in
  let router = Apps.Router.create (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.add_app ctl (Apps.Router.app router);
  Yanc.Controller.run_for ctl 3.0;
  Alcotest.(check bool) "reactive routing over OF1.3" true
    (ping ctl built.net ~src:"h1" ~dst_n:2)

let test_cost_accounting_visible () =
  (* The §8.1 effect is observable in a live run: a reactive ping costs
     hundreds of syscalls. *)
  let built = N.Topo_gen.linear 2 in
  let ctl, _, _ = full_stack built in
  let c = Fs.cost (Yanc.Controller.fs ctl) in
  let before = Vfs.Cost.crossings c in
  Alcotest.(check bool) "ping" true (ping ctl built.net ~src:"h1" ~dst_n:2);
  let spent = Vfs.Cost.crossings c - before in
  Alcotest.(check bool) "reactive setup costs many crossings" true (spent > 50)

let () =
  Alcotest.run "integration"
    [ ( "end-to-end",
        [ Alcotest.test_case "fat-tree reachability" `Slow test_fat_tree_all_pairs;
          Alcotest.test_case "tcp through fabric" `Quick test_tcp_through_fabric;
          Alcotest.test_case "link failure reroute" `Quick test_link_failure_reroute;
          Alcotest.test_case "OF1.3-only network" `Quick test_of13_only_network_end_to_end;
          Alcotest.test_case "cold boot: dhcp+arp+router" `Quick
            test_network_boots_from_nothing ] );
      ( "administration",
        [ Alcotest.test_case "coreutils on a live net" `Quick
            test_shell_administration_live;
          Alcotest.test_case "rename switch with mv" `Quick test_switch_rename_via_mv;
          Alcotest.test_case "middlebox migration with cp" `Quick
            test_middlebox_migration_cp ] );
      ( "ecosystem",
        [ Alcotest.test_case "five apps coexist" `Quick test_multi_app_coexistence;
          Alcotest.test_case "syscall cost visible" `Quick test_cost_accounting_visible ] ) ]
