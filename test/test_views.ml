(* Tests for network views (paper §4.2): slicing, the big-switch
   virtualizer, stacking, and namespace isolation (§5.3). *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module P = Packet
module Fs = Vfs.Fs

let cred = Vfs.Cred.root

let pfx s = Option.get (P.Ipv4_addr.Prefix.of_string s)

let controller built =
  let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
  Yanc.Controller.attach_switches ctl;
  ctl

let ssh_flowspace =
  { OF.Of_match.any with
    OF.Of_match.dl_type = Some 0x0800;
    nw_proto = Some 6;
    tp_dst = Some 22 }

(* A slice of sw1 (all its ports), confined to ssh traffic. *)
let slice_rig () =
  let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
  let ctl = controller built in
  Yanc.Controller.run_for ctl 0.3;
  let slicer =
    match
      Views.Slicer.create ~master:(Yanc.Controller.yfs ctl)
        { Views.Slicer.view = "ssh-slice";
          switches = [ "sw1", [] ];
          flowspace = ssh_flowspace;
          priority_cap = 30000 }
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "slicer create: %s" (Vfs.Errno.to_string e)
  in
  Yanc.Controller.add_app ctl (Views.Slicer.app slicer);
  Yanc.Controller.run_for ctl 0.3;
  built, ctl, slicer

let test_slice_mirrors_switch () =
  let _, _, slicer = slice_rig () in
  let vy = Views.Slicer.view_fs slicer in
  Alcotest.(check (list string)) "switch visible in view" [ "sw1" ]
    (Y.Yanc_fs.switch_names vy);
  Alcotest.(check (list int)) "ports mirrored" [ 1; 2 ]
    (Y.Yanc_fs.port_numbers vy ~cred "sw1")

let test_slice_flow_inside_flowspace () =
  let built, ctl, slicer = slice_rig () in
  let vy = Views.Slicer.view_fs slicer in
  (* the tenant writes an ssh flow in its view *)
  let flow =
    { Y.Flowdir.default with
      Y.Flowdir.of_match = { ssh_flowspace with OF.Of_match.nw_dst = Some (pfx "10.0.0.2") };
      actions = [ OF.Action.Output (OF.Action.Physical 2) ];
      priority = 100 }
  in
  (match Y.Yanc_fs.create_flow vy ~cred ~switch:"sw1" ~name:"to-h2" flow with
  | Ok () -> ()
  | Error e -> Alcotest.failf "create: %s" (Vfs.Errno.to_string e));
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check int) "accepted" 1 (Views.Slicer.flows_accepted slicer);
  (* it landed on the master under a slice-prefixed name *)
  let master = Yanc.Controller.yfs ctl in
  Alcotest.(check bool) "master flow exists" true
    (List.mem "s.ssh-slice.to-h2" (Y.Yanc_fs.flow_names master ~cred "sw1"));
  (* and reached hardware *)
  let sw = Option.get (N.Network.switch built.net 1L) in
  (match N.Sim_switch.table sw 0 with
  | Some t -> Alcotest.(check int) "in hardware" 1 (N.Flow_table.length t)
  | None -> Alcotest.fail "no table")

let test_slice_rejects_flowspace_escape () =
  let _, ctl, slicer = slice_rig () in
  let vy = Views.Slicer.view_fs slicer in
  (* http is outside the ssh flowspace *)
  let escape =
    { Y.Flowdir.default with
      Y.Flowdir.of_match =
        { OF.Of_match.any with
          OF.Of_match.dl_type = Some 0x0800; nw_proto = Some 6; tp_dst = Some 80 };
      actions = [ OF.Action.Output (OF.Action.Physical 1) ] }
  in
  ignore (Y.Yanc_fs.create_flow vy ~cred ~switch:"sw1" ~name:"http" escape);
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check int) "rejected" 1 (Views.Slicer.flows_rejected slicer);
  let master = Yanc.Controller.yfs ctl in
  Alcotest.(check bool) "nothing on master" false
    (List.mem "s.ssh-slice.http" (Y.Yanc_fs.flow_names master ~cred "sw1"));
  (* the tenant is told via the error file *)
  let vdir = Y.Layout.flow ~root:(Y.Yanc_fs.root vy) ~switch:"sw1" "http" in
  Alcotest.(check bool) "error file" true
    (Fs.exists (Y.Yanc_fs.fs vy) ~cred (Vfs.Path.child vdir "error"))

let test_slice_widens_to_intersection () =
  (* A tenant wildcard flow is narrowed to the flowspace, not rejected. *)
  let _, ctl, slicer = slice_rig () in
  let vy = Views.Slicer.view_fs slicer in
  let broad =
    { Y.Flowdir.default with
      Y.Flowdir.actions = [ OF.Action.Output (OF.Action.Physical 1) ];
      priority = 50000 (* above the cap, must be clamped *) }
  in
  ignore (Y.Yanc_fs.create_flow vy ~cred ~switch:"sw1" ~name:"all" broad);
  Yanc.Controller.run_for ctl 0.3;
  let master = Yanc.Controller.yfs ctl in
  match Y.Yanc_fs.read_flow master ~cred ~switch:"sw1" "s.ssh-slice.all" with
  | Error e -> Alcotest.fail e
  | Ok mflow ->
    Alcotest.(check (option int)) "narrowed to tp 22" (Some 22)
      mflow.Y.Flowdir.of_match.OF.Of_match.tp_dst;
    Alcotest.(check int) "priority clamped" 30000 mflow.Y.Flowdir.priority

let test_slice_rejects_foreign_port () =
  let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
  let ctl = controller built in
  Yanc.Controller.run_for ctl 0.3;
  (* slice that owns only port 1 *)
  let slicer =
    Result.get_ok
      (Views.Slicer.create ~master:(Yanc.Controller.yfs ctl)
         { Views.Slicer.view = "narrow"; switches = [ "sw1", [ 1 ] ];
           flowspace = OF.Of_match.any; priority_cap = 30000 })
  in
  Yanc.Controller.add_app ctl (Views.Slicer.app slicer);
  let vy = Views.Slicer.view_fs slicer in
  ignore
    (Y.Yanc_fs.create_flow vy ~cred ~switch:"sw1" ~name:"out2"
       { Y.Flowdir.default with
         Y.Flowdir.actions = [ OF.Action.Output (OF.Action.Physical 2) ] });
  Yanc.Controller.run_for ctl 0.3;
  Alcotest.(check int) "foreign output rejected" 1 (Views.Slicer.flows_rejected slicer);
  (* Flood rewrites to the allowed ports only *)
  ignore
    (Y.Yanc_fs.create_flow vy ~cred ~switch:"sw1" ~name:"fl"
       { Y.Flowdir.default with
         Y.Flowdir.actions = [ OF.Action.Output OF.Action.Flood ] });
  Yanc.Controller.run_for ctl 0.3;
  let master = Yanc.Controller.yfs ctl in
  match Y.Yanc_fs.read_flow master ~cred ~switch:"sw1" "s.narrow.fl" with
  | Error e -> Alcotest.fail e
  | Ok mflow ->
    Alcotest.(check bool) "flood -> explicit allowed ports" true
      (mflow.Y.Flowdir.actions = [ OF.Action.Output (OF.Action.Physical 1) ])

let test_slice_event_filtering () =
  let built, ctl, slicer = slice_rig () in
  let vy = Views.Slicer.view_fs slicer in
  (* a tenant app subscribes inside the view *)
  ignore
    (Y.Eventdir.subscribe (Y.Yanc_fs.fs vy) ~cred ~root:(Y.Yanc_fs.root vy)
       ~switch:"sw1" ~app:"tenant");
  Yanc.Controller.run_for ctl 0.2;
  (* ssh packet -> miss -> should reach the tenant; http -> filtered *)
  let h2mac = N.Topo_gen.host_mac 2 in
  let send port =
    N.Network.send_from_host built.net "h1"
      [ P.Builder.tcp_syn ~src_mac:(N.Topo_gen.host_mac 1) ~dst_mac:h2mac
          ~src_ip:(N.Topo_gen.host_ip 1) ~dst_ip:(N.Topo_gen.host_ip 2)
          ~src_port:5555 ~dst_port:port ]
  in
  send 22;
  send 80;
  Yanc.Controller.run_for ctl 0.5;
  let events =
    Y.Eventdir.consume (Y.Yanc_fs.fs vy) ~cred ~root:(Y.Yanc_fs.root vy)
      ~switch:"sw1" ~app:"tenant"
  in
  Alcotest.(check int) "only the ssh packet" 1 (List.length events);
  match Y.Eventdir.frame_of (List.hd events) with
  | Some { P.Eth.payload = P.Eth.Ipv4 { P.Ipv4.payload = P.Ipv4.Tcp t; _ }; _ } ->
    Alcotest.(check int) "port 22" 22 t.P.Tcp.dst_port
  | _ -> Alcotest.fail "wrong frame"

(* --- big switch ------------------------------------------------------------------ *)

let bigsw_rig () =
  let built = N.Topo_gen.linear 3 in
  let ctl = controller built in
  let topo = Apps.Topology.create (Yanc.Controller.yfs ctl) in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.run_for ctl 3.0;
  let bigsw =
    Result.get_ok
      (Views.Big_switch.create ~master:(Yanc.Controller.yfs ctl) ~view:"one-big" ())
  in
  Yanc.Controller.add_app ctl (Views.Big_switch.app bigsw);
  Yanc.Controller.run_for ctl 0.3;
  built, ctl, bigsw

let test_bigswitch_ports () =
  let _, _, bigsw = bigsw_rig () in
  (* 3 switches, 1 host each: 3 edge ports -> 3 virtual ports *)
  let map = Views.Big_switch.port_map bigsw in
  Alcotest.(check int) "3 virtual ports" 3 (List.length map);
  let vy = Views.Big_switch.view_fs bigsw in
  Alcotest.(check (list string)) "one big switch" [ "big0" ]
    (Y.Yanc_fs.switch_names vy);
  Alcotest.(check (list int)) "virtual port numbers" [ 1; 2; 3 ]
    (Y.Yanc_fs.port_numbers vy ~cred "big0")

let test_bigswitch_flow_compilation () =
  let built, ctl, bigsw = bigsw_rig () in
  let vy = Views.Big_switch.view_fs bigsw in
  (* all traffic to h3's address leaves virtual port 3 *)
  let vport3_real = List.assoc 3 (Views.Big_switch.port_map bigsw) in
  ignore
    (Y.Yanc_fs.create_flow vy ~cred ~switch:"big0" ~name:"to-h3"
       { Y.Flowdir.default with
         Y.Flowdir.of_match =
           { OF.Of_match.any with
             OF.Of_match.dl_type = Some 0x0800;
             nw_dst = Some (P.Ipv4_addr.Prefix.host (N.Topo_gen.host_ip 3)) };
         actions = [ OF.Action.Output (OF.Action.Physical 3) ];
         priority = 300 });
  Yanc.Controller.run_for ctl 0.5;
  Alcotest.(check int) "compiled" 1 (Views.Big_switch.flows_compiled bigsw);
  (* per-switch rules landed on the master *)
  let master = Yanc.Controller.yfs ctl in
  let egress_sw = fst vport3_real in
  Alcotest.(check bool) "egress rule exists" true
    (List.exists
       (fun n -> n = "v.one-big.to-h3." ^ egress_sw)
       (Y.Yanc_fs.flow_names master ~cred egress_sw));
  (* the data plane actually delivers along the compiled path, once the
     underlay also knows how to reach h1 (reverse rule for replies) *)
  ignore
    (Y.Yanc_fs.create_flow vy ~cred ~switch:"big0" ~name:"to-h1"
       { Y.Flowdir.default with
         Y.Flowdir.of_match =
           { OF.Of_match.any with
             OF.Of_match.dl_type = Some 0x0800;
             nw_dst = Some (P.Ipv4_addr.Prefix.host (N.Topo_gen.host_ip 1)) };
         actions = [ OF.Action.Output (OF.Action.Physical 1) ];
         priority = 300 });
  (* plus ARP handling via flood both ways *)
  ignore
    (Y.Yanc_fs.create_flow vy ~cred ~switch:"big0" ~name:"arp"
       { Y.Flowdir.default with
         Y.Flowdir.of_match =
           { OF.Of_match.any with OF.Of_match.dl_type = Some 0x0806 };
         actions = [ OF.Action.Output OF.Action.Flood ];
         priority = 200 });
  Yanc.Controller.run_for ctl 0.5;
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 3) ~seq:1);
  Alcotest.(check bool) "ping across the virtual big switch" true
    (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ping_results h1 <> []))

let test_bigswitch_flood_compiles () =
  let _, ctl, bigsw = bigsw_rig () in
  let vy = Views.Big_switch.view_fs bigsw in
  ignore
    (Y.Yanc_fs.create_flow vy ~cred ~switch:"big0" ~name:"multi"
       { Y.Flowdir.default with
         Y.Flowdir.actions =
           [ OF.Action.Output (OF.Action.Physical 1);
             OF.Action.Output (OF.Action.Physical 2) ] });
  Yanc.Controller.run_for ctl 0.3;
  (* multi-output flows are the documented limitation: error, not silence *)
  let vdir = Y.Layout.flow ~root:(Y.Yanc_fs.root vy) ~switch:"big0" "multi" in
  Alcotest.(check bool) "limitation reported" true
    (Fs.exists (Y.Yanc_fs.fs vy) ~cred (Vfs.Path.child vdir "error"))

let test_bigswitch_packet_in_translation () =
  let built, ctl, bigsw = bigsw_rig () in
  let vy = Views.Big_switch.view_fs bigsw in
  ignore
    (Y.Eventdir.subscribe (Y.Yanc_fs.fs vy) ~cred ~root:(Y.Yanc_fs.root vy)
       ~switch:"big0" ~app:"tenant");
  Yanc.Controller.run_for ctl 0.2;
  (* traffic from h2 (edge of sw2) misses and surfaces on the big switch *)
  let h2 = Option.get (N.Network.host built.net "h2") in
  N.Network.send_from_host built.net "h2"
    [ N.Sim_host.arp_probe h2 ~target:(N.Topo_gen.host_ip 1) ];
  Yanc.Controller.run_for ctl 0.5;
  let events =
    Y.Eventdir.consume (Y.Yanc_fs.fs vy) ~cred ~root:(Y.Yanc_fs.root vy)
      ~switch:"big0" ~app:"tenant"
  in
  Alcotest.(check bool) "event surfaced" true (events <> []);
  let vport = (List.hd events).Y.Eventdir.in_port in
  Alcotest.(check (option (pair string int))) "virtual ingress maps to h2's port"
    (Some ("sw2", 3))
    (List.assoc_opt vport (Views.Big_switch.port_map bigsw))

(* --- namespace isolation (paper §5.1/§5.3) -------------------------------------------- *)

let test_namespace_isolation () =
  let built = N.Topo_gen.linear 1 in
  let ctl = controller built in
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.run_for ctl 0.2;
  let alice = Vfs.Cred.make ~uid:100 ~gid:100 () in
  let bob = Vfs.Cred.make ~uid:200 ~gid:200 () in
  let alice_view =
    Result.get_ok (Views.Namespace.provision yfs ~view:"alice" ~owner:alice)
  in
  ignore (Views.Namespace.provision yfs ~view:"bob" ~owner:bob);
  (* alice works in her own view *)
  (match
     Y.Yanc_fs.create_flow alice_view ~cred:alice ~switch:"private-sw"
       ~name:"f" Y.Flowdir.default
   with
  | Error Vfs.Errno.ENOENT -> () (* no switch dir yet: fine, make one *)
  | _ -> ());
  ignore
    (Fs.mkdir (Y.Yanc_fs.fs yfs) ~cred:alice
       (Y.Layout.switch ~root:(Y.Yanc_fs.root alice_view) "private-sw"));
  (match
     Y.Yanc_fs.create_flow alice_view ~cred:alice ~switch:"private-sw" ~name:"f"
       Y.Flowdir.default
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "alice blocked in her own view: %s" (Vfs.Errno.to_string e));
  (* bob cannot enter alice's view *)
  (match Views.Namespace.enter yfs ~cred:bob ~view:"alice" with
  | Error Vfs.Errno.EACCES -> ()
  | Error e -> Alcotest.failf "expected eacces, got %s" (Vfs.Errno.to_string e)
  | Ok _ -> Alcotest.fail "bob entered alice's namespace");
  (* nor read her files *)
  Alcotest.(check bool) "bob cannot read" true
    (Fs.readdir (Y.Yanc_fs.fs yfs) ~cred:bob
       (Y.Layout.switches_dir ~root:(Y.Yanc_fs.root alice_view))
    = Error Vfs.Errno.EACCES);
  (* root sees everything *)
  match Views.Namespace.enter yfs ~cred:Vfs.Cred.root ~view:"alice" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "root blocked: %s" (Vfs.Errno.to_string e)

let test_switch_protected_by_chmod () =
  (* §5.1: "while individual flows can be protected for specific
     processes, so too can an entire switch". *)
  let built = N.Topo_gen.linear 1 in
  let ctl = controller built in
  let fs = Yanc.Controller.fs ctl in
  Yanc.Controller.run_for ctl 0.2;
  let swdir = Y.Layout.switch ~root:Y.Layout.default_root "sw1" in
  ignore (Fs.chmod fs ~cred swdir 0o700);
  let intruder = Vfs.Cred.make ~uid:666 ~gid:666 () in
  Alcotest.(check bool) "flows unreadable" true
    (Fs.readdir fs ~cred:intruder (Y.Layout.flows_dir ~root:Y.Layout.default_root "sw1")
    = Error Vfs.Errno.EACCES);
  Alcotest.(check bool) "cannot write flows" true
    (Fs.mkdir fs ~cred:intruder
       (Y.Layout.flow ~root:Y.Layout.default_root ~switch:"sw1" "evil")
    = Error Vfs.Errno.EACCES)

(* --- stacking: slice on top of a big switch -------------------------------------------- *)

let test_stacked_views () =
  let built, ctl, bigsw = bigsw_rig () in
  ignore built;
  (* slice the virtual big switch: ssh-only tenant on top of the
     virtualized network — "views can be stacked arbitrarily" *)
  let inner =
    Result.get_ok
      (Views.Slicer.create ~master:(Views.Big_switch.view_fs bigsw)
         { Views.Slicer.view = "ssh-on-big"; switches = [ "big0", [] ];
           flowspace = ssh_flowspace; priority_cap = 1000 })
  in
  Yanc.Controller.add_app ctl (Views.Slicer.app inner);
  Yanc.Controller.run_for ctl 0.3;
  let tenant = Views.Slicer.view_fs inner in
  Alcotest.(check string) "doubly nested root"
    "/net/views/one-big/views/ssh-on-big"
    (Vfs.Path.to_string (Y.Yanc_fs.root tenant));
  ignore
    (Y.Yanc_fs.create_flow tenant ~cred ~switch:"big0" ~name:"deep"
       { Y.Flowdir.default with
         Y.Flowdir.of_match = ssh_flowspace;
         actions = [ OF.Action.Output (OF.Action.Physical 1) ];
         priority = 10 });
  Yanc.Controller.run_for ctl 0.5;
  (* flow propagated: tenant -> big0 view -> physical master *)
  let master = Yanc.Controller.yfs ctl in
  let all_master_flows =
    List.concat_map
      (fun sw -> Y.Yanc_fs.flow_names master ~cred sw)
      (Y.Yanc_fs.switch_names master)
  in
  Alcotest.(check bool) "reached physical switches" true
    (List.exists
       (fun n ->
         String.length n > 2 && String.sub n 0 2 = "v.")
       all_master_flows)

let () =
  Alcotest.run "views"
    [ ( "slicer",
        [ Alcotest.test_case "mirrors switch" `Quick test_slice_mirrors_switch;
          Alcotest.test_case "accepts in-space flows" `Quick
            test_slice_flow_inside_flowspace;
          Alcotest.test_case "rejects escapes" `Quick test_slice_rejects_flowspace_escape;
          Alcotest.test_case "narrows wildcards, clamps priority" `Quick
            test_slice_widens_to_intersection;
          Alcotest.test_case "port confinement" `Quick test_slice_rejects_foreign_port;
          Alcotest.test_case "event filtering" `Quick test_slice_event_filtering ] );
      ( "big-switch",
        [ Alcotest.test_case "virtual ports" `Quick test_bigswitch_ports;
          Alcotest.test_case "flow compilation + ping" `Quick
            test_bigswitch_flow_compilation;
          Alcotest.test_case "multi-output limitation" `Quick
            test_bigswitch_flood_compiles;
          Alcotest.test_case "packet-in translation" `Quick
            test_bigswitch_packet_in_translation ] );
      ( "isolation",
        [ Alcotest.test_case "namespaces" `Quick test_namespace_isolation;
          Alcotest.test_case "chmod a switch" `Quick test_switch_protected_by_chmod ] );
      "stacking", [ Alcotest.test_case "slice on big switch" `Quick test_stacked_views ] ]
