(* The observability layer (E16): registry snapshot semantics, the span
   ring's ftrace-style overrun contract, trace_pipe consume-on-read, and
   one packet-in traced end to end through the live controller into
   /yanc/.proc. *)

module T = Telemetry
module N = Netsim
module Fs = Vfs.Fs

let cred = Vfs.Cred.root

(* --- registry ------------------------------------------------------------- *)

let test_counters_and_gauges () =
  let reg = T.Registry.create () in
  let c = T.Registry.counter reg "a.hits" in
  T.Registry.incr c;
  T.Registry.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (T.Registry.value c);
  Alcotest.(check int)
    "get-or-create shares the series" 5
    (T.Registry.value (T.Registry.counter reg "a.hits"));
  let live = ref 7. in
  T.Registry.gauge reg "a.depth" (fun () -> !live);
  let snap = T.Registry.snapshot reg in
  Alcotest.(check (option (float 0.))) "gauge sampled" (Some 7.)
    (T.Registry.find snap "a.depth");
  Alcotest.(check (option (float 0.))) "counter exported" (Some 5.)
    (T.Registry.find snap "a.hits")

let test_snapshot_isolation () =
  (* A snapshot is a point in time: later mutations must not leak in. *)
  let reg = T.Registry.create () in
  let c = T.Registry.counter reg "x" in
  let live = ref 1. in
  T.Registry.gauge reg "g" (fun () -> !live);
  T.Registry.incr c;
  let snap = T.Registry.snapshot reg in
  T.Registry.add c 100;
  live := 99.;
  Alcotest.(check (option (float 0.))) "counter frozen" (Some 1.)
    (T.Registry.find snap "x");
  Alcotest.(check (option (float 0.))) "gauge frozen" (Some 1.)
    (T.Registry.find snap "g");
  Alcotest.(check (option (float 0.))) "fresh snapshot sees mutation"
    (Some 101.)
    (T.Registry.find (T.Registry.snapshot reg) "x")

let test_histogram_percentiles () =
  let reg = T.Registry.create () in
  let h = T.Registry.histogram reg "lat" in
  (* 90 fast observations and 10 slow ones: p50 must sit in the fast
     bucket, p99 in the slow one. *)
  for _ = 1 to 90 do T.Registry.observe h 1e-6 done;
  for _ = 1 to 10 do T.Registry.observe h 1e-3 done;
  Alcotest.(check int) "count" 100 (T.Registry.hist_count h);
  Alcotest.(check (float 1e-12)) "max" 1e-3 (T.Registry.hist_max h);
  let p50 = T.Registry.percentile h 0.5 in
  let p99 = T.Registry.percentile h 0.99 in
  Alcotest.(check bool) "p50 in the microsecond range" true
    (p50 >= 1e-6 && p50 < 1e-4);
  Alcotest.(check (float 1e-12)) "p99 clamps to the true max" 1e-3 p99;
  let snap = T.Registry.snapshot reg in
  Alcotest.(check (option (float 0.))) "flattened count" (Some 100.)
    (T.Registry.find snap "lat.count")

let test_render_format () =
  let reg = T.Registry.create () in
  T.Registry.add (T.Registry.counter reg "b.n") 3;
  T.Registry.gauge reg "b.ratio" (fun () -> 0.25);
  let lines =
    String.split_on_char '\n' (T.Registry.render (T.Registry.snapshot reg))
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "no empty file" true (lines <> []);
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ name; v ] ->
        Alcotest.(check bool)
          (Printf.sprintf "%s has a name" line)
          true (name <> "");
        Alcotest.(check bool)
          (Printf.sprintf "%s value parses" line)
          true
          (Option.is_some (float_of_string_opt v))
      | _ -> Alcotest.failf "line %S does not split into name + value" line)
    lines;
  Alcotest.(check bool) "integers render bare" true
    (List.mem "b.n 3" lines);
  Alcotest.(check bool) "sorted by name" true
    (List.sort compare lines = lines)

(* --- the span ring -------------------------------------------------------- *)

let test_ring_overflow_drops_oldest () =
  let hub = T.create ~tracing:true ~capacity:4 () in
  let tr = T.tracer hub in
  for i = 1 to 7 do
    T.Tracer.set_now tr (float_of_int i);
    T.Tracer.span tr ~stage:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "all pushes counted" 7 (T.Tracer.spans_recorded tr);
  Alcotest.(check int) "overrun counted" 3 (T.Tracer.drops tr);
  let recs = T.Tracer.drain tr in
  Alcotest.(check int) "ring holds capacity" 4 (List.length recs);
  Alcotest.(check (list string))
    "oldest dropped, order preserved"
    [ "s4"; "s5"; "s6"; "s7" ]
    (List.map (fun (r : T.Tracer.record) -> r.stage) recs)

let test_drain_consumes_once () =
  let hub = T.create ~tracing:true () in
  let tr = T.tracer hub in
  T.Tracer.span tr ~stage:"once" (fun () -> ());
  Alcotest.(check bool) "pipe carries the span" true
    (String.length (T.Tracer.render_pipe tr) > 0);
  Alcotest.(check string) "second read is empty" ""
    (T.Tracer.render_pipe tr);
  Alcotest.(check int) "drain after drain is empty" 0
    (List.length (T.Tracer.drain tr))

let test_stamp_resume () =
  let hub = T.create ~tracing:true () in
  let tr = T.tracer hub in
  T.Tracer.set_now tr 1.5;
  let id = T.Tracer.fresh tr in
  Alcotest.(check bool) "fresh is nonzero" true (id <> 0);
  T.Tracer.stamp tr "ev:42";
  T.Tracer.clear tr;
  Alcotest.(check int) "cleared" 0 (T.Tracer.current tr);
  Alcotest.(check bool) "resume adopts" true (T.Tracer.resume tr "ev:42");
  Alcotest.(check int) "same trace" id (T.Tracer.current tr);
  T.Tracer.clear tr;
  (* non-consuming: the same key fans out to a second consumer *)
  Alcotest.(check bool) "resume again" true (T.Tracer.resume tr "ev:42");
  T.Tracer.clear tr;
  Alcotest.(check bool) "unknown key refuses" false
    (T.Tracer.resume tr "ev:43");
  (* a span ended under a resumed trace carries its origin time *)
  T.Tracer.set_now tr 3.5;
  ignore (T.Tracer.resume tr "ev:42");
  T.Tracer.span tr ~stage:"later" (fun () -> ());
  (match T.Tracer.drain tr with
  | [ r ] ->
    Alcotest.(check int) "attributed" id r.trace;
    Alcotest.(check (float 1e-9)) "origin preserved" 1.5 r.origin;
    Alcotest.(check (float 1e-9)) "stamped on the sim clock" 3.5 r.t1
  | l -> Alcotest.failf "expected one record, got %d" (List.length l))

let test_disabled_tracer_is_noop () =
  let hub = T.create ~tracing:false () in
  let tr = T.tracer hub in
  Alcotest.(check int) "fresh yields no trace" 0 (T.Tracer.fresh tr);
  Alcotest.(check int) "span runs the thunk"
    9
    (T.Tracer.span tr ~stage:"s" (fun () -> 9));
  Alcotest.(check int) "nothing recorded" 0 (T.Tracer.spans_recorded tr);
  Alcotest.(check string) "pipe is empty" "" (T.Tracer.render_pipe tr)

(* --- one packet-in, end to end through /yanc/.proc ------------------------- *)

type pipe_record = {
  trace : int;
  stage : string;
  t0 : float;
  t1 : float;
  lat : float;
}

let parse_pipe_line line =
  Scanf.sscanf line "trace=%d span=%d parent=%d stage=%s t0=%f t1=%f lat=%f"
    (fun trace _span _parent stage t0 t1 lat -> { trace; stage; t0; t1; lat })

let read_proc ctl name =
  match
    Fs.read_file (Yanc.Controller.fs ctl) ~cred
      (Vfs.Path.of_string_exn ("/yanc/.proc/" ^ name))
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "read %s: %s" name (Vfs.Errno.message e)

let test_packet_in_traced_end_to_end () =
  let built = N.Topo_gen.linear 2 in
  let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.add_app ctl (Apps.Topology.app (Apps.Topology.create yfs));
  Yanc.Controller.add_app ctl (Apps.Router.app (Apps.Router.create yfs));
  Yanc.Controller.run_for ctl 3.0;
  (* throw away everything from discovery: the pipe consumes on read *)
  ignore (read_proc ctl "trace_pipe");
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  Alcotest.(check bool) "ping completes" true
    (Yanc.Controller.run_until ~tick:0.002 ctl (fun () ->
         N.Sim_host.ping_results h1 <> []));
  let records =
    String.split_on_char '\n' (read_proc ctl "trace_pipe")
    |> List.filter (fun l -> l <> "")
    |> List.map parse_pipe_line
  in
  Alcotest.(check bool) "the ping left spans" true (records <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s monotonic" r.stage)
        true (r.t1 >= r.t0);
      Alcotest.(check bool)
        (Printf.sprintf "%s latency non-negative" r.stage)
        true (r.lat >= 0.))
    records;
  (* Some trace id must cover the whole pipeline: the packet-in that made
     the router install the path. *)
  let wanted =
    [ "driver.packet_in"; "sched.wake"; "app.routerd"; "yancfs.flow_write";
      "driver.flow_mod"; "switch.install" ]
  in
  let traces =
    List.sort_uniq compare
      (List.filter_map
         (fun r -> if r.trace <> 0 then Some r.trace else None)
         records)
  in
  let covers id =
    List.for_all
      (fun stage ->
        List.exists (fun r -> r.trace = id && r.stage = stage) records)
      wanted
  in
  Alcotest.(check bool)
    "one trace spans scheduler -> app -> yancfs -> driver -> switch" true
    (List.exists covers traces);
  (* second read of the pipe is empty: consumed above *)
  Alcotest.(check string) "pipe consumed" "" (read_proc ctl "trace_pipe")

let test_proc_metrics_unifies_the_counters () =
  let built = N.Topo_gen.linear 2 in
  let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.add_app ctl (Apps.Topology.app (Apps.Topology.create yfs));
  Yanc.Controller.add_app ctl (Apps.Router.app (Apps.Router.create yfs));
  Yanc.Controller.run_for ctl 2.0;
  let body = read_proc ctl "metrics" in
  let entries =
    String.split_on_char '\n' body
    |> List.filter (fun l -> l <> "")
    |> List.map (fun line ->
           match String.split_on_char ' ' line with
           | [ name; v ] -> (
             match float_of_string_opt v with
             | Some f -> name, f
             | None -> Alcotest.failf "unparsable value in %S" line)
           | _ -> Alcotest.failf "malformed line %S" line)
  in
  let get name =
    match List.assoc_opt name entries with
    | Some v -> v
    | None -> Alcotest.failf "missing series %s" name
  in
  (* every pre-existing counter surface, one namespace *)
  Alcotest.(check bool) "vfs crossings counted" true (get "vfs.crossings" > 0.);
  Alcotest.(check bool) "dcache sampled" true (get "vfs.dcache.hits" >= 0.);
  Alcotest.(check bool) "fsnotify dispatched" true
    (get "fsnotify.events_dispatched" > 0.);
  Alcotest.(check bool) "datapath looked up" true (get "datapath.lookups" > 0.);
  Alcotest.(check bool) "scheduler accounted" true
    (get "sched.routerd.iterations" > 0.);
  Alcotest.(check bool) "net frames flowed" true
    (get "net.frames_delivered" > 0.);
  Alcotest.(check bool) "tracer health exported" true
    (get "trace.spans_recorded" > 0.);
  (* the packet-in ring and its record pool export through the same file *)
  Alcotest.(check bool) "pktin ring counted" true
    (get "driver.pktin.published" >= 0.);
  Alcotest.(check bool) "pktin pool gauged" true
    (get "netsim.pool.pktin.allocated" >= 0.);
  (* the per-app and per-switch stat files exist and render *)
  let app_stat = read_proc ctl "apps/routerd/stat" in
  Alcotest.(check bool) "app stat lists iterations" true
    (String.length app_stat > 0
    && List.exists
         (fun l ->
           String.length l >= 10 && String.sub l 0 10 = "iterations")
         (String.split_on_char '\n' app_stat));
  let sw_stat = read_proc ctl "switches/1/stat" in
  Alcotest.(check bool) "switch stat names its dpid" true
    (List.mem "dpid 1" (String.split_on_char '\n' sw_stat))

let test_dfs_counters_join_the_registry () =
  (* On a clustered deployment the replication counters report into the
     same namespace as everything else. *)
  let cluster = Dfs.Cluster.create ~n:3 () in
  let reg = T.Registry.create () in
  Dfs.Cluster.register cluster reg;
  ignore
    (Fs.write_file (Dfs.Cluster.node cluster 0) ~cred
       (Vfs.Path.of_string_exn "/x") "1");
  Dfs.Cluster.flush cluster;
  let snap = T.Registry.snapshot reg in
  let get name =
    match T.Registry.find snap name with
    | Some v -> v
    | None -> Alcotest.failf "missing series %s" name
  in
  Alcotest.(check (float 0.)) "nodes" 3. (get "dfs.nodes");
  Alcotest.(check bool) "writes originate" true (get "dfs.ops_originated" > 0.);
  Alcotest.(check bool) "writes replicate" true (get "dfs.ops_replicated" > 0.);
  Alcotest.(check (float 0.)) "converged" 0. (get "dfs.pending")

let test_scheduler_accounting () =
  let built = N.Topo_gen.linear 2 in
  let ctl = Yanc.Controller.create ~net:built.N.Topo_gen.net () in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  Yanc.Controller.add_app ctl (Apps.Topology.app (Apps.Topology.create yfs));
  Yanc.Controller.run_for ctl 1.0;
  match Yanc.Scheduler.stats (Yanc.Controller.scheduler ctl) with
  | [ (name, s) ] ->
    Alcotest.(check string) "app name" "topologyd" name;
    Alcotest.(check string) "daemon schedule" "daemon" s.Yanc.Scheduler.schedule;
    Alcotest.(check bool) "iterations counted" true
      (s.Yanc.Scheduler.iterations > 0);
    Alcotest.(check bool) "last_run advanced" true
      (s.Yanc.Scheduler.last_run > 0.);
    Alcotest.(check bool) "runtime non-negative" true
      (s.Yanc.Scheduler.runtime_ns >= 0)
  | l -> Alcotest.failf "expected one app, got %d" (List.length l)

(* --- percentile quantization contract -------------------------------------- *)

let test_percentile_upper_bound () =
  let reg = T.Registry.create () in
  let h = T.Registry.histogram reg "q" in
  (* One observation at 5 ns sits in bucket [4, 8): the reported p50 is
     the bucket's upper bound clamped to the true max — never below the
     true value, and strictly less than 2x above it. *)
  T.Registry.observe h 5e-9;
  Alcotest.(check (float 1e-15)) "single value clamps to max" 5e-9
    (T.Registry.percentile h 0.5);
  T.Registry.observe h 100e-9;
  let p50 = T.Registry.percentile h 0.5 in
  Alcotest.(check (float 1e-15)) "p50 is bucket [4,8) upper bound" 8e-9 p50;
  Alcotest.(check bool) "never below the true percentile" true (p50 >= 5e-9);
  Alcotest.(check bool) "overstates by < 2x" true (p50 < 2. *. 5e-9);
  (* Property over a spread of values: for every q, upper-bound
     semantics bound the true rank-q observation from above within 2x. *)
  let vals = [ 3e-9; 17e-9; 90e-9; 1.1e-6; 2.9e-6; 0.5e-3 ] in
  let h2 = T.Registry.histogram reg "q2" in
  List.iter (T.Registry.observe h2) vals;
  let sorted = List.sort compare vals in
  List.iter
    (fun q ->
      let p = T.Registry.percentile h2 q in
      let rank =
        let r =
          int_of_float (ceil (q *. float_of_int (List.length sorted)))
        in
        max 1 (min (List.length sorted) r)
      in
      let true_v = List.nth sorted (rank - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f bounded below by the true value" q)
        true (p >= true_v);
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f within 2x of the true value" q)
        true
        (p < 2. *. true_v))
    [ 0.5; 0.9; 0.99; 1.0 ]

(* --- cluster rollup merge ---------------------------------------------------- *)

(* Hand-merge two registries' histograms through the raw bucket
   accessor and recompute the percentile with an independent
   implementation of the upper-bound rule; merged_snapshot must agree
   exactly — the rollup's p99 is the percentile of the union, not an
   average of per-node percentiles. *)
let test_merged_snapshot_hand_merge () =
  let a = T.Registry.create () and b = T.Registry.create () in
  T.Registry.add (T.Registry.counter a "hits") 3;
  T.Registry.add (T.Registry.counter b "hits") 39;
  T.Registry.gauge a "busy" (fun () -> 1.5);
  T.Registry.gauge b "busy" (fun () -> 2.5);
  let ha = T.Registry.histogram a "lat" in
  let hb = T.Registry.histogram b "lat" in
  (* node a is fast, node b is slow: the union's p99 must land in b's
     range even though a has most of the mass *)
  for _ = 1 to 90 do T.Registry.observe ha 1e-6 done;
  for _ = 1 to 10 do T.Registry.observe hb 1e-3 done;
  let merged = T.Registry.merged_snapshot [ a; b ] in
  let get name =
    match T.Registry.find merged name with
    | Some v -> v
    | None -> Alcotest.failf "missing merged series %s" name
  in
  Alcotest.(check (float 0.)) "counters summed" 42. (get "hits");
  Alcotest.(check (float 1e-9)) "gauges summed" 4. (get "busy");
  Alcotest.(check (float 0.)) "histogram counts summed" 100.
    (get "lat.count");
  (* independent hand-merge: bucket-wise sums, then the upper-bound walk *)
  let buckets = Array.init 63 (fun i ->
      T.Registry.hist_bucket ha i + T.Registry.hist_bucket hb i)
  in
  let count = Array.fold_left ( + ) 0 buckets in
  let max_v = max (T.Registry.hist_max ha) (T.Registry.hist_max hb) in
  let hand_percentile q =
    let rank = max 1 (min count (int_of_float (ceil (q *. float_of_int count)))) in
    let i = ref 0 and cum = ref buckets.(0) in
    while !cum < rank && !i < 62 do
      incr i;
      cum := !cum + buckets.(!i)
    done;
    min (float_of_int (1 lsl (min 62 (!i + 1))) *. 1e-9) max_v
  in
  Alcotest.(check (float 1e-15)) "merged p50 = union percentile"
    (hand_percentile 0.5) (get "lat.p50");
  Alcotest.(check (float 1e-15)) "merged p99 = union percentile"
    (hand_percentile 0.99) (get "lat.p99");
  Alcotest.(check (float 1e-15)) "merged max = max of maxes" max_v
    (get "lat.max");
  (* of_entries lets a rollup append cluster-global series *)
  let with_globals =
    T.Registry.of_entries (("cluster.live_nodes", 2.) :: T.Registry.entries merged)
  in
  Alcotest.(check (option (float 0.))) "appended global present" (Some 2.)
    (T.Registry.find with_globals "cluster.live_nodes")

(* --- cross-node adoption ----------------------------------------------------- *)

let test_adopt_and_id_base () =
  let ra = T.Registry.create () and rb = T.Registry.create () in
  let ta = T.Tracer.create ra and tb = T.Tracer.create rb in
  T.Tracer.set_enabled ta true;
  T.Tracer.set_enabled tb true;
  T.Tracer.set_id_base tb (1 lsl 40);
  T.Tracer.set_now ta 1.0;
  let id = T.Tracer.fresh ta in
  Alcotest.(check bool) "origin ids stay in the low slice" true
    (id < 1 lsl 40);
  let ctx =
    match T.Tracer.context ta with
    | Some c -> c
    | None -> Alcotest.fail "no ambient context after fresh"
  in
  let trace, origin, origin_round = ctx in
  Alcotest.(check int) "context carries the trace id" id trace;
  (* the context rides a replicated op to node b, which adopts it *)
  T.Tracer.set_now tb 1.5;
  T.Tracer.adopt tb ~trace ~origin ~origin_round;
  T.Tracer.span tb ~stage:"dfs.apply" (fun () -> ());
  T.Tracer.clear tb;
  (match T.Tracer.drain tb with
  | [ r ] ->
    Alcotest.(check int) "foreign span keeps the origin trace id" id
      r.T.Tracer.trace;
    Alcotest.(check bool) "span ids come from b's slice" true
      (r.T.Tracer.span_id >= 1 lsl 40);
    Alcotest.(check (float 1e-9)) "origin time rode along" origin
      r.T.Tracer.origin
  | l -> Alcotest.failf "expected 1 record on node b, got %d" (List.length l));
  Alcotest.(check (option unit)) "adopt leaves no context once cleared" None
    (Option.map ignore (T.Tracer.context tb));
  (* a disabled tracer refuses adoption *)
  T.Tracer.set_enabled tb false;
  T.Tracer.adopt tb ~trace ~origin ~origin_round;
  Alcotest.(check (option unit)) "disabled tracer adopts nothing" None
    (Option.map ignore (T.Tracer.context tb))

(* --- flight recorder ---------------------------------------------------------- *)

let test_blackbox_bounded_and_nonconsuming () =
  let bb = T.Blackbox.create ~capacity:4 () in
  for i = 1 to 10 do
    T.Blackbox.mark bb ~at:(float_of_int i) ~what:(Printf.sprintf "m%d" i)
  done;
  Alcotest.(check int) "recorded counts all events" 10
    (T.Blackbox.recorded bb);
  Alcotest.(check int) "overwritten = recorded - capacity" 6
    (T.Blackbox.overwritten bb);
  let evs = T.Blackbox.events bb in
  Alcotest.(check int) "window holds capacity events" 4 (List.length evs);
  (* non-consuming: a second read sees the same window (unlike trace_pipe) *)
  Alcotest.(check int) "reads do not consume" 4
    (List.length (T.Blackbox.events bb));
  let r = T.Blackbox.render bb in
  Alcotest.(check bool) "render carries the accounting header" true
    (String.length r > 0
    && String.sub r 0 (String.length "recorded 10 overwritten 6")
       = "recorded 10 overwritten 6");
  (match evs with
  | T.Blackbox.Mark { what; _ } :: _ ->
    Alcotest.(check string) "window starts at the oldest survivor" "m7" what
  | _ -> Alcotest.fail "expected mark events");
  let d = T.Blackbox.dump bb ~reason:"test" ~now:11. in
  Alcotest.(check int) "dump counted" 1 (T.Blackbox.dumps bb);
  Alcotest.(check bool) "dump names its reason" true
    (String.sub d 0 (String.length "# blackbox dump reason=test")
     = "# blackbox dump reason=test")

(* --- health probes ------------------------------------------------------------ *)

let test_health_probes () =
  let snap l = T.Registry.of_entries l in
  (* empty snapshot: every probe is not-applicable, worst is Ok *)
  let verdicts = T.Health.evaluate (snap []) in
  Alcotest.(check int) "all defaults evaluated"
    (List.length T.Health.defaults)
    (List.length verdicts);
  Alcotest.(check int) "missing series pass" 0
    (T.Health.exit_code (T.Health.worst verdicts));
  (* a warn-level breach informs but does not fail *)
  let warn = T.Health.evaluate (snap [ ("trace.dropped", 5.) ]) in
  Alcotest.(check bool) "ring overruns warn" true
    (T.Health.worst warn = T.Health.Warn);
  Alcotest.(check int) "warn exits 0" 0
    (T.Health.exit_code (T.Health.worst warn));
  (* a crit breach flips the exit code *)
  let crit =
    T.Health.evaluate
      (snap [ ("cluster.unowned_shards", 3.); ("trace.dropped", 5.) ])
  in
  Alcotest.(check bool) "unowned shards are crit" true
    (T.Health.worst crit = T.Health.Crit);
  Alcotest.(check int) "crit exits 1" 1
    (T.Health.exit_code (T.Health.worst crit));
  (* the rendered report round-trips its status line *)
  Alcotest.(check bool) "render/parse round-trip (crit)" true
    (T.Health.status_of_render (T.Health.render crit) = Some T.Health.Crit);
  Alcotest.(check bool) "render/parse round-trip (ok)" true
    (T.Health.status_of_render (T.Health.render verdicts) = Some T.Health.Ok);
  (* values at the limit do not breach: the contract is value > limit *)
  let at_limit = T.Health.evaluate (snap [ ("driver.dead_switches", 0.) ]) in
  Alcotest.(check bool) "value = limit passes" true
    (T.Health.worst at_limit = T.Health.Ok)

let () =
  Alcotest.run "telemetry"
    [ ( "registry",
        [ Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "snapshot isolation" `Quick
            test_snapshot_isolation;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "render format" `Quick test_render_format;
          Alcotest.test_case "percentile upper-bound semantics" `Quick
            test_percentile_upper_bound;
          Alcotest.test_case "merged snapshot matches a hand-merge" `Quick
            test_merged_snapshot_hand_merge ] );
      ( "tracer",
        [ Alcotest.test_case "ring overflow drops oldest" `Quick
            test_ring_overflow_drops_oldest;
          Alcotest.test_case "drain consumes once" `Quick
            test_drain_consumes_once;
          Alcotest.test_case "stamp and resume" `Quick test_stamp_resume;
          Alcotest.test_case "disabled tracer is a no-op" `Quick
            test_disabled_tracer_is_noop;
          Alcotest.test_case "adopt carries a foreign trace" `Quick
            test_adopt_and_id_base ] );
      ( "blackbox",
        [ Alcotest.test_case "bounded and non-consuming" `Quick
            test_blackbox_bounded_and_nonconsuming ] );
      ( "health",
        [ Alcotest.test_case "probe evaluation and exit codes" `Quick
            test_health_probes ] );
      ( "proc",
        [ Alcotest.test_case "packet-in traced end to end" `Quick
            test_packet_in_traced_end_to_end;
          Alcotest.test_case "metrics unifies the counters" `Quick
            test_proc_metrics_unifies_the_counters;
          Alcotest.test_case "dfs counters join the registry" `Quick
            test_dfs_counters_join_the_registry;
          Alcotest.test_case "scheduler accounting" `Quick
            test_scheduler_accounting ] );
    ]
