(* Driver tests: the FS ⇄ wire ⇄ hardware translation (paper §4.1),
   the version-file commit protocol (§3.4), packet-in fan-out (§3.5)
   and live protocol upgrade. *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module Fs = Vfs.Fs
module Path = Vfs.Path

let cred = Vfs.Cred.root

let p = Path.of_string_exn

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.Errno.to_string e)

let net_root = Y.Layout.default_root

type rig = {
  net : N.Network.t;
  fs : Fs.t;
  yfs : Y.Yanc_fs.t;
  mgr : Driver.Manager.t;
  sw : N.Sim_switch.t;
}

(* One switch with two host-facing ports, fully handshaken. *)
let rig ?(version = Driver.Manager.V10) ?miss_send_len () =
  let built = N.Topo_gen.linear ?miss_send_len ~hosts_per_switch:2 1 in
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  let mgr = Driver.Manager.create ~yfs ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version;
  Driver.Manager.run_control mgr ~now:0.;
  let sw = Option.get (N.Network.switch built.net 1L) in
  { net = built.net; fs; yfs; mgr; sw }

let step ?(now = 1.) r = Driver.Manager.run_control r.mgr ~now

let switch_flows r =
  match N.Sim_switch.table r.sw 0 with
  | Some t -> N.Flow_table.entries t
  | None -> []

let test_handshake_builds_switch_dir () =
  let r = rig () in
  Alcotest.(check (list string)) "switch appears" [ "sw1" ]
    (Y.Yanc_fs.switch_names r.yfs);
  Alcotest.(check (option int64)) "id file" (Some 1L) (Y.Yanc_fs.switch_dpid r.yfs "sw1");
  Alcotest.(check (option string)) "protocol file" (Some "openflow10")
    (Y.Yanc_fs.switch_protocol r.yfs "sw1");
  Alcotest.(check (list int)) "ports mirrored" [ 1; 2 ]
    (Y.Yanc_fs.port_numbers r.yfs ~cred "sw1")

let test_handshake_v13 () =
  let r = rig ~version:Driver.Manager.V13 () in
  Alcotest.(check (option string)) "protocol file" (Some "openflow13")
    (Y.Yanc_fs.switch_protocol r.yfs "sw1");
  (* ports arrive via the separate port-desc request *)
  Alcotest.(check (list int)) "ports mirrored" [ 1; 2 ]
    (Y.Yanc_fs.port_numbers r.yfs ~cred "sw1")

let flood_flow =
  { Y.Flowdir.default with
    Y.Flowdir.actions = [ OF.Action.Output OF.Action.Flood ];
    priority = 10 }

let test_flow_commit_reaches_hardware () =
  let r = rig () in
  ok (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"flood" flood_flow);
  step r;
  match switch_flows r with
  | [ e ] ->
    Alcotest.(check int) "priority" 10 e.N.Flow_table.priority;
    Alcotest.(check bool) "actions" true
      (e.N.Flow_table.actions = [ OF.Action.Output OF.Action.Flood ])
  | l -> Alcotest.failf "expected 1 hardware flow, got %d" (List.length l)

let test_flow_commit_v13 () =
  let r = rig ~version:Driver.Manager.V13 () in
  ok (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"flood" flood_flow);
  step r;
  Alcotest.(check int) "flow programmed over OF1.3" 1 (List.length (switch_flows r))

let test_version_gates_commit () =
  (* Partial writes are invisible until the version bump (paper §3.4:
     "changes are only sent to hardware once the version has been
     incremented"). *)
  let r = rig () in
  let dir = Y.Layout.flow ~root:net_root ~switch:"sw1" "staged" in
  ok (Fs.mkdir r.fs ~cred dir);
  ok (Fs.write_file r.fs ~cred (Path.child dir "priority") "77");
  ok (Fs.write_file r.fs ~cred (Path.child dir "action.0.out") "flood");
  step r;
  Alcotest.(check int) "uncommitted flow invisible" 0 (List.length (switch_flows r));
  (* commit *)
  ok (Fs.write_file r.fs ~cred (Path.child dir "version") "1");
  step r;
  Alcotest.(check int) "committed flow programmed" 1 (List.length (switch_flows r));
  (* editing fields again without bumping: hardware unchanged *)
  ok (Fs.write_file r.fs ~cred (Path.child dir "priority") "88");
  step r;
  (match switch_flows r with
  | [ e ] -> Alcotest.(check int) "stale priority until bump" 77 e.N.Flow_table.priority
  | _ -> Alcotest.fail "flow lost");
  ok (Fs.write_file r.fs ~cred (Path.child dir "version") "2");
  step r;
  match switch_flows r with
  | [ e ] -> Alcotest.(check int) "new priority after bump" 88 e.N.Flow_table.priority
  | _ -> Alcotest.fail "flow lost"

let test_flow_delete () =
  let r = rig () in
  ok (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"flood" flood_flow);
  step r;
  Alcotest.(check int) "installed" 1 (List.length (switch_flows r));
  ok (Y.Yanc_fs.delete_flow r.yfs ~cred ~switch:"sw1" "flood");
  step r;
  Alcotest.(check int) "removed from hardware" 0 (List.length (switch_flows r))

let test_flow_parse_error_file () =
  let r = rig () in
  let dir = Y.Layout.flow ~root:net_root ~switch:"sw1" "bad" in
  ok (Fs.mkdir r.fs ~cred dir);
  ok (Fs.write_file r.fs ~cred (Path.child dir "match.nw_src") "garbage");
  ok (Fs.write_file r.fs ~cred (Path.child dir "version") "1");
  step r;
  Alcotest.(check int) "nothing programmed" 0 (List.length (switch_flows r));
  Alcotest.(check bool) "error file written" true
    (Fs.exists r.fs ~cred (Path.child dir "error"));
  (* fixing the flow clears the error *)
  ok (Fs.unlink r.fs ~cred (Path.child dir "match.nw_src"));
  ok (Fs.write_file r.fs ~cred (Path.child dir "version") "2");
  step r;
  Alcotest.(check bool) "error cleared" false
    (Fs.exists r.fs ~cred (Path.child dir "error"));
  Alcotest.(check int) "now programmed" 1 (List.length (switch_flows r))

let test_port_down_propagates () =
  (* echo 1 > config.port_down reaches the data plane (paper §3.1). *)
  let r = rig () in
  ok
    (Fs.write_file r.fs ~cred
       (p "/net/switches/sw1/ports/port_1/config.port_down") "1");
  step r;
  (match N.Sim_switch.port r.sw 1 with
  | Some info -> Alcotest.(check bool) "hardware admin down" true info.OF.Of_types.Port_info.admin_down
  | None -> Alcotest.fail "port missing");
  ok
    (Fs.write_file r.fs ~cred
       (p "/net/switches/sw1/ports/port_1/config.port_down") "0");
  step r;
  match N.Sim_switch.port r.sw 1 with
  | Some info -> Alcotest.(check bool) "re-enabled" false info.OF.Of_types.Port_info.admin_down
  | None -> Alcotest.fail "port missing"

let test_packet_in_published_to_buffers () =
  let r = rig () in
  ok (Y.Eventdir.subscribe r.fs ~cred ~root:net_root ~switch:"sw1" ~app:"app1");
  ok (Y.Eventdir.subscribe r.fs ~cred ~root:net_root ~switch:"sw1" ~app:"app2");
  (* a frame with no matching flow -> table miss -> packet-in *)
  let h1 = Option.get (N.Network.host r.net "h1") in
  N.Network.send_from_host r.net "h1"
    (N.Sim_host.ping h1 ~now:0. ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  N.Network.run r.net;
  step r;
  let ev1 = Y.Eventdir.poll r.fs ~cred ~root:net_root ~switch:"sw1" ~app:"app1" in
  let ev2 = Y.Eventdir.poll r.fs ~cred ~root:net_root ~switch:"sw1" ~app:"app2" in
  Alcotest.(check int) "app1 got the miss" 1 (List.length ev1);
  Alcotest.(check int) "app2 got it too" 1 (List.length ev2);
  let ev = List.hd ev1 in
  Alcotest.(check int) "ingress port" 1 ev.Y.Eventdir.in_port;
  match Y.Eventdir.frame_of ev with
  | Some { Packet.Eth.payload = Packet.Eth.Arp _; _ } -> ()
  | _ -> Alcotest.fail "expected the host's ARP probe"

let test_packet_out_spool () =
  let r = rig () in
  let h2 = Option.get (N.Network.host r.net "h2") in
  let frame =
    Packet.Builder.udp
      ~src_mac:(Packet.Mac.of_int 0x02ffff)
      ~dst_mac:(N.Sim_host.mac h2)
      ~src_ip:(N.Topo_gen.host_ip 9) ~dst_ip:(N.Topo_gen.host_ip 2)
      ~src_port:9999 ~dst_port:1234 "hello-h2"
  in
  ok
    (Result.map ignore
       (Y.Outdir.submit r.fs ~cred ~root:net_root ~switch:"sw1"
          ~actions:[ OF.Action.Output (OF.Action.Physical 2) ]
          ~data:(Packet.Eth.to_wire frame) ()));
  step r;
  N.Network.run r.net;
  Alcotest.(check (list (pair int string))) "delivered via packet-out"
    [ 1234, "hello-h2" ]
    (N.Sim_host.received_udp h2)

let test_counters_synced () =
  let r = rig () in
  ok (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"flood" flood_flow);
  step r;
  (* generate traffic through the flow *)
  let h1 = Option.get (N.Network.host r.net "h1") in
  N.Network.send_from_host r.net "h1"
    (N.Sim_host.ping h1 ~now:0. ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  N.Network.run r.net;
  (* advance past the stats interval (5s) *)
  step ~now:6. r;
  step ~now:6.1 r;
  let counters =
    Y.Layout.flow_counters ~root:net_root ~switch:"sw1" "flood"
  in
  let packets =
    int_of_string (String.trim (ok (Fs.read_file r.fs ~cred (Path.child counters "packets"))))
  in
  Alcotest.(check bool) "flow counters nonzero" true (packets > 0);
  (* port counters too *)
  let pc = Y.Layout.port_counters ~root:net_root ~switch:"sw1" 1 in
  let rx =
    int_of_string (String.trim (ok (Fs.read_file r.fs ~cred (Path.child pc "rx_packets"))))
  in
  Alcotest.(check bool) "port counters nonzero" true (rx > 0)

let test_idle_timeout_removes_flow_dir () =
  let r = rig () in
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"brief"
       { flood_flow with Y.Flowdir.idle_timeout = 2 });
  step r;
  Alcotest.(check int) "installed" 1 (List.length (switch_flows r));
  (* no traffic: the hardware expires it; the driver removes the dir *)
  N.Network.advance_idle r.net 10.;
  step ~now:10. r;
  Alcotest.(check int) "hardware empty" 0 (List.length (switch_flows r));
  Alcotest.(check bool) "flow dir removed" false
    (List.mem "brief" (Y.Yanc_fs.flow_names r.yfs ~cred "sw1"))

let test_buffer_id_release () =
  (* A flow committed with a buffer_id file releases the buffered
     packet through the new flow's actions. *)
  let r = rig ~miss_send_len:128 () in
  (* big frame so the switch buffers it *)
  let h2 = Option.get (N.Network.host r.net "h2") in
  let big =
    Packet.Builder.udp
      ~src_mac:(Packet.Mac.of_int 0x02aaaa)
      ~dst_mac:(N.Sim_host.mac h2)
      ~src_ip:(N.Topo_gen.host_ip 1) ~dst_ip:(N.Topo_gen.host_ip 2)
      ~src_port:1 ~dst_port:4321 (String.make 300 'z')
  in
  ok (Y.Eventdir.subscribe r.fs ~cred ~root:net_root ~switch:"sw1" ~app:"me");
  N.Network.send_from_host r.net "h1" [ big ];
  N.Network.run r.net;
  step r;
  let ev =
    match Y.Eventdir.consume r.fs ~cred ~root:net_root ~switch:"sw1" ~app:"me" with
    | [ ev ] -> ev
    | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)
  in
  Alcotest.(check bool) "buffered" true (ev.Y.Eventdir.buffer_id <> None);
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"release"
       { Y.Flowdir.default with
         Y.Flowdir.actions = [ OF.Action.Output (OF.Action.Physical 2) ];
         buffer_id = ev.Y.Eventdir.buffer_id });
  step r;
  N.Network.run r.net;
  Alcotest.(check bool) "buffered frame delivered" true
    (List.mem (4321, String.make 300 'z') (N.Sim_host.received_udp h2));
  (* the one-shot buffer_id file is consumed *)
  Alcotest.(check bool) "buffer_id file removed" false
    (Fs.exists r.fs ~cred
       (Path.child (Y.Layout.flow ~root:net_root ~switch:"sw1" "release") "buffer_id"))

let test_enqueue_flow_end_to_end () =
  (* A flow committed with an enqueue action programs the hardware queue
     path over the wire; the rate limit then bites. *)
  let r = rig () in
  N.Sim_switch.add_queue r.sw ~port:2 ~queue_id:1 ~rate_mbps:1;
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"qos"
       { Y.Flowdir.default with
         Y.Flowdir.actions = [ OF.Action.Enqueue { port = 2; queue_id = 1 } ];
         priority = 50 });
  step r;
  (match switch_flows r with
  | [ e ] ->
    Alcotest.(check bool) "enqueue action programmed" true
      (e.N.Flow_table.actions = [ OF.Action.Enqueue { port = 2; queue_id = 1 } ])
  | _ -> Alcotest.fail "flow missing");
  (* saturate the queue from h1: many large frames, same instant *)
  let h2 = Option.get (N.Network.host r.net "h2") in
  for i = 1 to 5 do
    N.Network.send_from_host r.net "h1"
      [ Packet.Builder.udp
          ~src_mac:(N.Topo_gen.host_mac 1)
          ~dst_mac:(N.Sim_host.mac h2)
          ~src_ip:(N.Topo_gen.host_ip 1) ~dst_ip:(N.Topo_gen.host_ip 2)
          ~src_port:(3000 + i) ~dst_port:5001
          (String.make 60_000 'q') ]
  done;
  N.Network.run r.net;
  let received = List.length (N.Sim_host.received_udp h2) in
  Alcotest.(check bool) "rate limit dropped some" true (received < 5);
  Alcotest.(check bool) "but let some through" true (received >= 1);
  match N.Sim_switch.queue_stats r.sw ~port:2 with
  | [ q ] ->
    Alcotest.(check int64) "drops visible in queue stats"
      (Int64.of_int (5 - received))
      q.N.Sim_switch.dropped
  | _ -> Alcotest.fail "no queue stats"

let test_flow_rename_keeps_hardware () =
  (* §3.2 extends to flows: renaming a flow directory must leave exactly
     one hardware entry (delete-old before add-new, not the reverse). *)
  let r = rig () in
  ok (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"old-name" flood_flow);
  step r;
  Alcotest.(check int) "installed" 1 (List.length (switch_flows r));
  ok
    (Fs.rename r.fs ~cred
       ~src:(Y.Layout.flow ~root:net_root ~switch:"sw1" "old-name")
       ~dst:(Y.Layout.flow ~root:net_root ~switch:"sw1" "new-name"));
  step r;
  Alcotest.(check (list string)) "fs sees the new name" [ "new-name" ]
    (Y.Yanc_fs.flow_names r.yfs ~cred "sw1");
  Alcotest.(check int) "hardware still has exactly one entry" 1
    (List.length (switch_flows r))

let test_live_upgrade_preserves_flows () =
  (* §4.1: "nodes can be gradually upgraded, live, to newer protocols".
     The FS holds the truth; after swapping the OF1.0 driver for OF1.3
     the same flows are reprogrammed. *)
  let r = rig () in
  ok (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"flood" flood_flow);
  step r;
  Alcotest.(check (option string)) "starts on 1.0" (Some "openflow10")
    (Driver.Manager.driver_protocol r.mgr ~dpid:1L);
  Driver.Manager.upgrade r.mgr ~dpid:1L ~version:Driver.Manager.V13;
  Driver.Manager.run_control r.mgr ~now:2.;
  Driver.Manager.run_control r.mgr ~now:2.1;
  Alcotest.(check (option string)) "now on 1.3" (Some "openflow13")
    (Driver.Manager.driver_protocol r.mgr ~dpid:1L);
  Alcotest.(check (option string)) "protocol file updated" (Some "openflow13")
    (Y.Yanc_fs.switch_protocol r.yfs "sw1");
  (* flow still present in hardware (re-added over the new protocol) *)
  Alcotest.(check bool) "flow survives upgrade" true
    (List.exists
       (fun (e : N.Flow_table.entry) -> e.priority = 10)
       (switch_flows r));
  (* and traffic still flows *)
  let h1 = Option.get (N.Network.host r.net "h1") in
  N.Network.send_from_host r.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now r.net) ~dst:(N.Topo_gen.host_ip 2) ~seq:5);
  N.Network.run r.net;
  Alcotest.(check int) "ping works after upgrade" 1
    (List.length (N.Sim_host.ping_results h1))

let test_mixed_protocol_network () =
  (* Different switches on different protocol versions, same apps. *)
  let built = N.Topo_gen.linear 2 in
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  let mgr = Driver.Manager.create ~yfs ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.attach mgr ~dpid:2L ~version:Driver.Manager.V13;
  Driver.Manager.run_control mgr ~now:0.;
  Alcotest.(check (list string)) "both switches" [ "sw1"; "sw2" ]
    (Y.Yanc_fs.switch_names yfs);
  (* same flow written identically to both *)
  List.iter
    (fun sw ->
      ok (Y.Yanc_fs.create_flow yfs ~cred ~switch:sw ~name:"flood" flood_flow))
    [ "sw1"; "sw2" ];
  Driver.Manager.run_control mgr ~now:1.;
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:0. ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  N.Network.run built.net;
  Alcotest.(check int) "ping across mixed versions" 1
    (List.length (N.Sim_host.ping_results h1))

let test_detach_stops_translation () =
  let r = rig () in
  Driver.Manager.detach r.mgr ~dpid:1L;
  ok (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"flood" flood_flow);
  Driver.Manager.run_control r.mgr ~now:1.;
  Alcotest.(check int) "no driver, no programming" 0 (List.length (switch_flows r))

(* The O(runnable) scheduler: an idle fleet must not be re-stepped every
   manager round — drivers park until a wake (fs write, channel traffic)
   or a due timer (keepalive) pulls them back in. *)
let test_manager_parks_idle_drivers () =
  let r = rig () in
  let reg = Telemetry.registry (Y.Yanc_fs.telemetry r.yfs) in
  let stepped = Telemetry.Registry.counter reg "driver.mgr.stepped" in
  (* settle: run keepalive roundtrips and startup work to completion *)
  Driver.Manager.run_control r.mgr ~now:1.0;
  Driver.Manager.run_control r.mgr ~now:1.0;
  let s0 = Telemetry.Registry.value stepped in
  (* nothing due before the next keepalive, nothing woken: parked *)
  Driver.Manager.run_control r.mgr ~now:1.01;
  Driver.Manager.run_control r.mgr ~now:1.05;
  Alcotest.(check int) "idle rounds leave the driver parked" s0
    (Telemetry.Registry.value stepped);
  (* a file-system write wakes exactly this driver *)
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"wake" flood_flow);
  Driver.Manager.run_control r.mgr ~now:1.06;
  let s1 = Telemetry.Registry.value stepped in
  Alcotest.(check bool) "a write wakes the parked driver" true (s1 > s0);
  Alcotest.(check bool) "and the rule reaches hardware" true
    (List.exists
       (fun e -> e.N.Flow_table.priority = flood_flow.Y.Flowdir.priority)
       (switch_flows r));
  (* drain the wake's own tail, then idle rounds must park it again *)
  Driver.Manager.run_control r.mgr ~now:1.07;
  Driver.Manager.run_control r.mgr ~now:1.08;
  let s2 = Telemetry.Registry.value stepped in
  Driver.Manager.run_control r.mgr ~now:1.09;
  Alcotest.(check int) "parked again once the work is done" s2
    (Telemetry.Registry.value stepped);
  (* timers still fire with no external wake: the keepalive comes due *)
  Driver.Manager.run_control r.mgr ~now:3.0;
  Alcotest.(check bool) "a due timer re-runs the driver" true
    (Telemetry.Registry.value stepped > s2)

let () =
  Alcotest.run "driver"
    [ ( "handshake",
        [ Alcotest.test_case "v10 builds switch dir" `Quick
            test_handshake_builds_switch_dir;
          Alcotest.test_case "v13 port-desc" `Quick test_handshake_v13 ] );
      ( "flows",
        [ Alcotest.test_case "commit reaches hardware" `Quick
            test_flow_commit_reaches_hardware;
          Alcotest.test_case "commit over v13" `Quick test_flow_commit_v13;
          Alcotest.test_case "version gates commit" `Quick test_version_gates_commit;
          Alcotest.test_case "delete" `Quick test_flow_delete;
          Alcotest.test_case "parse error file" `Quick test_flow_parse_error_file;
          Alcotest.test_case "idle timeout cleanup" `Quick
            test_idle_timeout_removes_flow_dir;
          Alcotest.test_case "buffer release" `Quick test_buffer_id_release;
          Alcotest.test_case "qos enqueue end-to-end" `Quick
            test_enqueue_flow_end_to_end;
          Alcotest.test_case "flow rename" `Quick test_flow_rename_keeps_hardware ] );
      ( "ports-events",
        [ Alcotest.test_case "port_down propagates" `Quick test_port_down_propagates;
          Alcotest.test_case "packet-in fan-out" `Quick
            test_packet_in_published_to_buffers;
          Alcotest.test_case "packet-out spool" `Quick test_packet_out_spool;
          Alcotest.test_case "counters" `Quick test_counters_synced ] );
      ( "lifecycle",
        [ Alcotest.test_case "live upgrade" `Quick test_live_upgrade_preserves_flows;
          Alcotest.test_case "mixed versions" `Quick test_mixed_protocol_network;
          Alcotest.test_case "detach" `Quick test_detach_stops_translation ] );
      ( "scheduling",
        [ Alcotest.test_case "parks idle drivers" `Quick
            test_manager_parks_idle_drivers ] ) ]
