(* Tests for the yanc file system semantics (paper §3). *)

module Y = Yancfs
module Fs = Vfs.Fs
module Path = Vfs.Path
module OF = Openflow

let cred = Vfs.Cred.root

let p = Path.of_string_exn

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.Errno.to_string e)

let ok_s = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error %s" e

let setup () =
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  fs, yfs

let net = Y.Layout.default_root

(* --- layout (Figure 2/3) ------------------------------------------------------ *)

let test_layout_paths () =
  Alcotest.(check string) "switch" "/net/switches/sw1"
    (Path.to_string (Y.Layout.switch ~root:net "sw1"));
  Alcotest.(check string) "flow attr" "/net/switches/sw1/flows/arp/priority"
    (Path.to_string (Y.Layout.flow_attr ~root:net ~switch:"sw1" ~flow:"arp" "priority"));
  Alcotest.(check string) "port" "/net/switches/sw1/ports/port_2"
    (Path.to_string (Y.Layout.port ~root:net ~switch:"sw1" 2));
  Alcotest.(check string) "nested view root" "/net/views/v1/switches/sw1"
    (Path.to_string
       (Y.Layout.switch ~root:(Y.Layout.view ~root:net "v1") "sw1"));
  Alcotest.(check (option int)) "port name parse" (Some 12)
    (Y.Layout.port_no_of_name "port_12");
  Alcotest.(check (option int)) "port name reject" None
    (Y.Layout.port_no_of_name "eth0")

let test_top_level_structure () =
  let _, yfs = setup () in
  let fs = Y.Yanc_fs.fs yfs in
  Alcotest.(check (list string)) "figure 2 top level" [ "hosts"; "switches"; "views" ]
    (ok (Fs.readdir fs ~cred net))

(* --- schema classification ------------------------------------------------------ *)

let test_classify () =
  let cases =
    [ "/net", Y.Schema.Root;
      "/net/hosts", Y.Schema.Hosts_dir;
      "/net/hosts/h1", Y.Schema.Host;
      "/net/hosts/h1/mac", Y.Schema.Host_attr;
      "/net/switches", Y.Schema.Switches_dir;
      "/net/switches/sw1", Y.Schema.Switch;
      "/net/switches/sw1/id", Y.Schema.Switch_attr;
      "/net/switches/sw1/counters", Y.Schema.Switch_counters;
      "/net/switches/sw1/flows", Y.Schema.Flows_dir;
      "/net/switches/sw1/flows/f1", Y.Schema.Flow;
      "/net/switches/sw1/flows/f1/match.tp_dst", Y.Schema.Flow_attr;
      "/net/switches/sw1/ports", Y.Schema.Ports_dir;
      "/net/switches/sw1/ports/port_1", Y.Schema.Port;
      "/net/switches/sw1/ports/port_1/peer", Y.Schema.Port_attr;
      "/net/switches/sw1/events", Y.Schema.Events_dir;
      "/net/switches/sw1/events/routerd", Y.Schema.Event_buffer;
      "/net/switches/sw1/events/routerd/4", Y.Schema.Event;
      "/net/switches/sw1/events/routerd/4/data", Y.Schema.Event_attr;
      "/net/views", Y.Schema.Views_dir;
      "/net/views/tenant", Y.Schema.Root;
      "/net/views/tenant/switches/sw1", Y.Schema.Switch;
      "/net/views/a/views/b/switches/s/flows/f", Y.Schema.Flow;
      "/elsewhere", Y.Schema.Not_yanc ]
  in
  List.iter
    (fun (path, expected) ->
      Alcotest.(check string) path
        (Y.Schema.kind_to_string expected)
        (Y.Schema.kind_to_string (Y.Schema.classify ~root:net (p path))))
    cases

let test_enclosing_root () =
  Alcotest.(check (option string)) "master" (Some "/net")
    (Option.map Path.to_string
       (Y.Schema.enclosing_root ~root:net (p "/net/switches/sw1")));
  Alcotest.(check (option string)) "view" (Some "/net/views/a")
    (Option.map Path.to_string
       (Y.Schema.enclosing_root ~root:net (p "/net/views/a/switches/sw1")));
  Alcotest.(check (option string)) "nested view" (Some "/net/views/a/views/b")
    (Option.map Path.to_string
       (Y.Schema.enclosing_root ~root:net (p "/net/views/a/views/b/hosts")))

(* --- semantic mkdir (paper §3.1) ---------------------------------------------------- *)

let test_semantic_mkdir_view () =
  let fs, _ = setup () in
  (* "mkdir views/new_view will create the directory new_view, but also
     the hosts, switches, and views subdirectories." *)
  ok (Fs.mkdir fs ~cred (p "/net/views/new_view"));
  Alcotest.(check (list string)) "auto children" [ "hosts"; "switches"; "views" ]
    (ok (Fs.readdir fs ~cred (p "/net/views/new_view")))

let test_semantic_mkdir_switch () =
  let fs, _ = setup () in
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw9"));
  Alcotest.(check (list string)) "switch children"
    [ "counters"; "events"; "flows"; "packet_out"; "ports" ]
    (ok (Fs.readdir fs ~cred (p "/net/switches/sw9")))

let test_semantic_mkdir_flow_and_port () =
  let fs, _ = setup () in
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw9"));
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw9/flows/f1"));
  Alcotest.(check (list string)) "flow gets counters" [ "counters" ]
    (ok (Fs.readdir fs ~cred (p "/net/switches/sw9/flows/f1")));
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw9/ports/port_1"));
  Alcotest.(check (list string)) "port gets counters" [ "counters" ]
    (ok (Fs.readdir fs ~cred (p "/net/switches/sw9/ports/port_1")))

let test_semantic_mkdir_ownership () =
  let fs, _ = setup () in
  let tenant = Vfs.Cred.make ~uid:500 ~gid:500 () in
  ok (Fs.chmod fs ~cred (p "/net/views") 0o777);
  ok (Fs.mkdir fs ~cred:tenant (p "/net/views/mine"));
  (* auto-created children belong to the tenant, so it can use them *)
  ok (Fs.mkdir fs ~cred:tenant (p "/net/views/mine/switches/sw1"));
  ok
    (Fs.write_file fs ~cred:tenant
       (let fdir = p "/net/views/mine/switches/sw1/flows/f" in ignore (Fs.mkdir fs ~cred:tenant fdir); Path.child fdir "priority")
       "1")

let test_recursive_switch_rmdir () =
  let fs, _ = setup () in
  (* "the rmdir() call for switches is automatically recursive" *)
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1/flows/f1"));
  ok (Fs.write_file fs ~cred (p "/net/switches/sw1/flows/f1/priority") "1");
  ok (Fs.rmdir fs ~cred (p "/net/switches/sw1"));
  Alcotest.(check bool) "switch gone" false
    (Fs.exists fs ~cred (p "/net/switches/sw1"));
  (* but the switches/ container is protected as usual *)
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw2"));
  Alcotest.(check bool) "container not recursive" true
    (Fs.rmdir fs ~cred (p "/net/switches") = Error Vfs.Errno.ENOTEMPTY)

let test_peer_symlink_policy () =
  let fs, _ = setup () in
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw2"));
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1/ports/port_1"));
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw2/ports/port_1"));
  (* peer -> a port: fine *)
  ok
    (Fs.symlink fs ~cred ~target:"/net/switches/sw2/ports/port_1"
       (p "/net/switches/sw1/ports/port_1/peer"));
  (* peer -> not a port: EINVAL ("it is an error to point this symbolic
     link at anything other than a port") *)
  Alcotest.(check bool) "peer to switch rejected" true
    (Fs.symlink fs ~cred ~target:"/net/switches/sw2"
       (p "/net/switches/sw2/ports/port_1/peer")
    = Error Vfs.Errno.EINVAL);
  (* other symlinks unconstrained *)
  ok (Fs.symlink fs ~cred ~target:"/anything" (p "/net/hosts/h1"))

(* --- port admin file (paper §3.1 example) -------------------------------------------- *)

let test_port_down_file () =
  let _, yfs = setup () in
  let fs = Y.Yanc_fs.fs yfs in
  let info =
    OF.Of_types.Port_info.make ~port_no:2 ~hw_addr:(Packet.Mac.of_int 0x020000000002) ()
  in
  ok (Y.Yanc_fs.add_switch yfs ~name:"sw1" ~dpid:1L ~protocol:"openflow10"
        ~n_buffers:256 ~n_tables:1 ~capabilities:[] ~actions:[]);
  ok (Y.Yanc_fs.set_port yfs ~switch:"sw1" info);
  (* echo 1 > port_2/config.port_down *)
  ok
    (Fs.write_file fs ~cred
       (p "/net/switches/sw1/ports/port_2/config.port_down") "1");
  let back = ok (Y.Yanc_fs.read_port yfs ~cred ~switch:"sw1" 2) in
  Alcotest.(check bool) "admin down read back" true back.OF.Of_types.Port_info.admin_down;
  (* the driver refreshing the port must NOT clobber the admin setting *)
  ok (Y.Yanc_fs.set_port yfs ~switch:"sw1" info);
  let back2 = ok (Y.Yanc_fs.read_port yfs ~cred ~switch:"sw1" 2) in
  Alcotest.(check bool) "admin setting preserved" true
    back2.OF.Of_types.Port_info.admin_down

(* --- flow directories (paper §3.4) ----------------------------------------------------- *)

let sample_flow =
  { Y.Flowdir.default with
    Y.Flowdir.of_match =
      { OF.Of_match.any with
        OF.Of_match.dl_type = Some 0x0800;
        nw_proto = Some 6;
        tp_dst = Some 22 };
    actions =
      [ OF.Action.Set_vlan 7; OF.Action.Output (OF.Action.Physical 3) ];
    priority = 4000;
    idle_timeout = 60;
    cookie = 0xdeadL }

let test_flowdir_roundtrip () =
  let fs, yfs = setup () in
  ok (Y.Yanc_fs.add_switch yfs ~name:"sw1" ~dpid:1L ~protocol:"openflow10"
        ~n_buffers:256 ~n_tables:1 ~capabilities:[] ~actions:[]);
  ok (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1" ~name:"ssh" sample_flow);
  let dir = Y.Layout.flow ~root:net ~switch:"sw1" "ssh" in
  (* files exist, named as in Figure 3 *)
  Alcotest.(check string) "match file content" "22"
    (String.trim (ok (Fs.read_file fs ~cred (Path.child dir "match.tp_dst"))));
  Alcotest.(check string) "action file" "3"
    (String.trim (ok (Fs.read_file fs ~cred (Path.child dir "action.1.out"))));
  Alcotest.(check string) "version committed" "1"
    (String.trim (ok (Fs.read_file fs ~cred (Path.child dir "version"))));
  let back = ok_s (Y.Yanc_fs.read_flow yfs ~cred ~switch:"sw1" "ssh") in
  Alcotest.(check bool) "match equal" true
    (OF.Of_match.equal sample_flow.of_match back.Y.Flowdir.of_match);
  Alcotest.(check bool) "actions equal" true
    (List.for_all2 OF.Action.equal sample_flow.actions back.Y.Flowdir.actions);
  Alcotest.(check int) "priority" 4000 back.Y.Flowdir.priority;
  Alcotest.(check int) "version" 1 back.Y.Flowdir.version

let test_flowdir_wildcards () =
  (* "absence of a match file implies a wildcard" *)
  let fs, yfs = setup () in
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1/flows/all"));
  ok (Fs.write_file fs ~cred (p "/net/switches/sw1/flows/all/version") "1");
  let back = ok_s (Y.Yanc_fs.read_flow yfs ~cred ~switch:"sw1" "all") in
  Alcotest.(check bool) "fully wildcarded" true
    (OF.Of_match.equal OF.Of_match.any back.Y.Flowdir.of_match);
  Alcotest.(check int) "default priority" 0x8000 back.Y.Flowdir.priority

let test_flowdir_rejects_garbage () =
  let fs, yfs = setup () in
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1/flows/bad"));
  ok (Fs.write_file fs ~cred (p "/net/switches/sw1/flows/bad/match.nw_src") "not-an-ip");
  (match Y.Yanc_fs.read_flow yfs ~cred ~switch:"sw1" "bad" with
  | Error msg ->
    Alcotest.(check bool) "error names the field" true
      (String.length msg > 0 && String.sub msg 0 6 = "nw_src")
  | Ok _ -> Alcotest.fail "garbage accepted");
  ok (Fs.write_file fs ~cred (p "/net/switches/sw1/flows/bad/mystery_file") "?");
  match Y.Yanc_fs.read_flow yfs ~cred ~switch:"sw1" "bad" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown file accepted"

let test_flowdir_version_readback () =
  let fs, _yfs = setup () in
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  let dir = Y.Layout.flow ~root:net ~switch:"sw1" "f" in
  ok (Fs.mkdir fs ~cred dir);
  Alcotest.(check (option int)) "no version yet" None
    (Y.Flowdir.read_version fs ~cred dir);
  ok (Y.Flowdir.write fs ~cred dir sample_flow);
  Alcotest.(check (option int)) "bumped" (Some 1) (Y.Flowdir.read_version fs ~cred dir);
  ok (Y.Flowdir.write fs ~cred dir { sample_flow with Y.Flowdir.version = 1 });
  Alcotest.(check (option int)) "bumped again" (Some 2)
    (Y.Flowdir.read_version fs ~cred dir)

let test_flowdir_rewrite_removes_stale_fields () =
  let fs, yfs = setup () in
  ignore yfs;
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  let dir = Y.Layout.flow ~root:net ~switch:"sw1" "f" in
  ok (Fs.mkdir fs ~cred dir);
  ok (Y.Flowdir.write fs ~cred dir sample_flow);
  (* rewrite with a narrower match: the old tp_dst file must go away *)
  let broader =
    { sample_flow with
      Y.Flowdir.of_match = { OF.Of_match.any with OF.Of_match.dl_type = Some 0x0806 };
      actions = [];
      version = 1 }
  in
  ok (Y.Flowdir.write fs ~cred dir broader);
  Alcotest.(check bool) "stale match file gone" false
    (Fs.exists fs ~cred (Path.child dir "match.tp_dst"));
  Alcotest.(check bool) "stale action gone" false
    (Fs.exists fs ~cred (Path.child dir "action.1.out"))

let test_flow_counters_and_error () =
  let fs, yfs = setup () in
  ignore yfs;
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  let dir = Y.Layout.flow ~root:net ~switch:"sw1" "f" in
  ok (Fs.mkdir fs ~cred dir);
  ok (Y.Flowdir.write_counters fs ~cred dir ~packets:10L ~bytes:640L ~duration_s:5);
  Alcotest.(check string) "packets file" "10"
    (String.trim (ok (Fs.read_file fs ~cred (Path.child (Path.child dir "counters") "packets"))));
  ok (Y.Flowdir.set_error fs ~cred dir (Some "boom"));
  Alcotest.(check string) "error file" "boom"
    (ok (Fs.read_file fs ~cred (Path.child dir "error")));
  ok (Y.Flowdir.set_error fs ~cred dir None);
  Alcotest.(check bool) "error cleared" false
    (Fs.exists fs ~cred (Path.child dir "error"));
  ok (Y.Flowdir.set_error fs ~cred dir None)

(* --- packet-in fast path (ring) --------------------------------------------------- *)

let ring ?capacity () =
  Y.Pktin.create ?capacity ~telemetry:(Telemetry.create ()) ()

let push ?(switch = "sw1") ?(data = "bytes") r =
  Y.Pktin.publish r ~switch ~in_port:2 ~reason:Openflow.Of_types.No_match
    ~buffer_id:None ~total_len:(String.length data) ~data ~at:1.5

let test_pktin_roundtrip () =
  let r = ring () in
  let c = Y.Pktin.subscribe r ~name:"app" in
  ignore (push ~data:"one" r);
  ignore (push ~data:"two" r);
  Alcotest.(check int) "pending" 2 (Y.Pktin.pending r c);
  let seen = ref [] in
  let n =
    Y.Pktin.drain r c ~max:10 (fun rec_ ->
        seen := (rec_.Y.Pktin.seq, rec_.Y.Pktin.switch, rec_.Y.Pktin.data,
                 rec_.Y.Pktin.in_port, rec_.Y.Pktin.at) :: !seen)
  in
  Alcotest.(check int) "drained both" 2 n;
  (match List.rev !seen with
  | [ (s0, sw0, d0, p0, at0); (s1, _, d1, _, _) ] ->
    Alcotest.(check string) "oldest first" "one" d0;
    Alcotest.(check string) "then next" "two" d1;
    Alcotest.(check string) "switch" "sw1" sw0;
    Alcotest.(check int) "in_port" 2 p0;
    Alcotest.(check (float 0.0001)) "publish time" 1.5 at0;
    Alcotest.(check int) "sequences increase" (s0 + 1) s1;
    Alcotest.(check string) "trace key shape"
      (Printf.sprintf "pktin:%d" s0)
      (Y.Pktin.trace_key s0)
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  Alcotest.(check int) "nothing pending after drain" 0 (Y.Pktin.pending r c);
  (* a bounded batch drains at most [max] *)
  for _ = 1 to 5 do ignore (push r) done;
  Alcotest.(check int) "batch bound respected" 3
    (Y.Pktin.drain r c ~max:3 (fun _ -> ()))

let test_pktin_no_subscribers () =
  let r = ring () in
  ignore (push r);
  ignore (push r);
  Alcotest.(check int) "counted as published" 2 (Y.Pktin.published r);
  Alcotest.(check int) "counted as dropped" 2 (Y.Pktin.dropped r);
  Alcotest.(check int) "ring untouched: no records allocated" 0
    (Netsim.Pool.allocated (Y.Pktin.pool r))

let test_pktin_two_consumers_recycle () =
  let r = ring () in
  let c1 = Y.Pktin.subscribe r ~name:"a" in
  let c2 = Y.Pktin.subscribe r ~name:"b" in
  ignore (push ~data:"x" r);
  Alcotest.(check int) "a drains" 1 (Y.Pktin.drain r c1 ~max:8 (fun _ -> ()));
  (* the record recycles only once every consumer has passed it *)
  Alcotest.(check int) "not recycled while b lags" 0
    (Netsim.Pool.free (Y.Pktin.pool r));
  Alcotest.(check int) "b drains" 1 (Y.Pktin.drain r c2 ~max:8 (fun _ -> ()));
  Alcotest.(check int) "recycled once both passed" 1
    (Netsim.Pool.free (Y.Pktin.pool r));
  (* unsubscribing a lagging consumer must not wedge the pool *)
  ignore (push r);
  Y.Pktin.unsubscribe r c2;
  ignore (Y.Pktin.drain r c1 ~max:8 (fun _ -> ()));
  ignore (push r);
  ignore (Y.Pktin.drain r c1 ~max:8 (fun _ -> ()));
  Alcotest.(check bool) "pool keeps cycling" true
    (Netsim.Pool.free (Y.Pktin.pool r) >= 1)

let test_pktin_overflow () =
  let r = ring ~capacity:4 () in
  let slow = Y.Pktin.subscribe r ~name:"slow" in
  for i = 1 to 10 do ignore (push ~data:(string_of_int i) r) done;
  Alcotest.(check int) "lagging consumer lost the oldest" 6
    (Y.Pktin.overruns slow);
  Alcotest.(check int) "only a ringful pending" 4 (Y.Pktin.pending r slow);
  let seen = ref [] in
  ignore (Y.Pktin.drain r slow ~max:10 (fun rec_ ->
      seen := rec_.Y.Pktin.data :: !seen));
  Alcotest.(check (list string)) "survivors are the newest, in order"
    [ "7"; "8"; "9"; "10" ] (List.rev !seen)

let test_pktin_pool_steady_state () =
  let r = ring () in
  let c = Y.Pktin.subscribe r ~name:"app" in
  (* warm: a burst allocates its working set *)
  for _ = 1 to 8 do ignore (push r) done;
  ignore (Y.Pktin.drain r c ~max:16 (fun _ -> ()));
  let pool = Y.Pktin.pool r in
  let warm = Netsim.Pool.allocated pool in
  (* steady: publish/drain cycles no larger than the warm burst *)
  for _ = 1 to 50 do
    for _ = 1 to 8 do ignore (push r) done;
    ignore (Y.Pktin.drain r c ~max:16 (fun _ -> ()))
  done;
  Alcotest.(check int) "steady state allocates nothing" warm
    (Netsim.Pool.allocated pool);
  Alcotest.(check bool) "acquires served by reuse" true
    (Netsim.Pool.reused pool >= 400)

(* --- event buffers (paper §3.5) --------------------------------------------------------- *)

let publish fs ~switch data =
  Y.Eventdir.publish fs ~root:net ~switch ~in_port:3
    ~reason:Openflow.Of_types.No_match ~buffer_id:(Some 9l)
    ~total_len:(String.length data) ~data

let test_eventdir_fanout () =
  let fs, yfs = setup () in
  ignore yfs;
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  (* two interested applications, one uninterested switch *)
  ok (Y.Eventdir.subscribe fs ~cred ~root:net ~switch:"sw1" ~app:"router");
  ok (Y.Eventdir.subscribe fs ~cred ~root:net ~switch:"sw1" ~app:"monitor");
  Alcotest.(check int) "delivered to both" 2 (publish fs ~switch:"sw1" "frame-bytes");
  let router_events = Y.Eventdir.poll fs ~cred ~root:net ~switch:"sw1" ~app:"router" in
  let monitor_events = Y.Eventdir.poll fs ~cred ~root:net ~switch:"sw1" ~app:"monitor" in
  Alcotest.(check int) "router sees one" 1 (List.length router_events);
  Alcotest.(check int) "monitor sees one" 1 (List.length monitor_events);
  let ev = List.hd router_events in
  Alcotest.(check int) "in_port" 3 ev.Y.Eventdir.in_port;
  Alcotest.(check (option int32)) "buffer id" (Some 9l) ev.Y.Eventdir.buffer_id;
  Alcotest.(check string) "data" "frame-bytes" ev.Y.Eventdir.data;
  (* consuming is private: router's consume leaves monitor's copy *)
  ignore (Y.Eventdir.consume fs ~cred ~root:net ~switch:"sw1" ~app:"router");
  Alcotest.(check int) "router drained" 0
    (List.length (Y.Eventdir.poll fs ~cred ~root:net ~switch:"sw1" ~app:"router"));
  Alcotest.(check int) "monitor unaffected" 1
    (List.length (Y.Eventdir.poll fs ~cred ~root:net ~switch:"sw1" ~app:"monitor"))

let test_eventdir_ordering () =
  let fs, yfs = setup () in
  ignore yfs;
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  ok (Y.Eventdir.subscribe fs ~cred ~root:net ~switch:"sw1" ~app:"a");
  ignore (publish fs ~switch:"sw1" "first");
  ignore (publish fs ~switch:"sw1" "second");
  ignore (publish fs ~switch:"sw1" "third");
  let datas =
    List.map
      (fun e -> e.Y.Eventdir.data)
      (Y.Eventdir.consume fs ~cred ~root:net ~switch:"sw1" ~app:"a")
  in
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] datas

let test_eventdir_no_subscribers () =
  let fs, yfs = setup () in
  ignore yfs;
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  Alcotest.(check int) "published nowhere" 0 (publish fs ~switch:"sw1" "x")

(* --- packet-out spool -------------------------------------------------------------------- *)

let test_outdir_roundtrip () =
  let fs, yfs = setup () in
  ignore yfs;
  ok (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
  let seq1 =
    ok
      (Y.Outdir.submit fs ~cred ~root:net ~switch:"sw1" ~in_port:2
         ~actions:[ OF.Action.Output OF.Action.Flood ] ~data:"bytes" ())
  in
  let _seq2 =
    ok
      (Y.Outdir.submit fs ~cred ~root:net ~switch:"sw1" ~buffer_id:5l
         ~actions:[ OF.Action.Output (OF.Action.Physical 1) ] ~data:"" ())
  in
  Alcotest.(check int) "pending" 2 (Y.Outdir.pending fs ~root:net ~switch:"sw1");
  (match Y.Outdir.consume fs ~root:net ~switch:"sw1" with
  | [ r1; r2 ] ->
    Alcotest.(check int) "order" seq1 r1.Y.Outdir.seq;
    Alcotest.(check (option int)) "in_port" (Some 2) r1.Y.Outdir.in_port;
    Alcotest.(check string) "data" "bytes" r1.Y.Outdir.data;
    Alcotest.(check (option int32)) "buffer" (Some 5l) r2.Y.Outdir.buffer_id
  | l -> Alcotest.failf "expected 2 requests, got %d" (List.length l));
  Alcotest.(check int) "drained" 0 (Y.Outdir.pending fs ~root:net ~switch:"sw1")

(* --- views ---------------------------------------------------------------------------------- *)

let test_in_view_is_full_root () =
  let _, yfs = setup () in
  let vy = ok (Y.Yanc_fs.in_view yfs ~cred "tenant") in
  ok (Y.Yanc_fs.add_switch vy ~name:"vsw" ~dpid:9L ~protocol:"virtual"
        ~n_buffers:0 ~n_tables:1 ~capabilities:[] ~actions:[]);
  Alcotest.(check (list string)) "switch in view" [ "vsw" ] (Y.Yanc_fs.switch_names vy);
  Alcotest.(check (list string)) "master unaffected" [] (Y.Yanc_fs.switch_names yfs);
  (* views nest *)
  let vvy = ok (Y.Yanc_fs.in_view vy ~cred "inner") in
  Alcotest.(check string) "nested root" "/net/views/tenant/views/inner"
    (Path.to_string (Y.Yanc_fs.root vvy))

(* --- hosts & peers ---------------------------------------------------------------------------- *)

let test_host_records () =
  let _, yfs = setup () in
  let mac = Packet.Mac.of_int 0x020000000001 in
  let ip = Packet.Ipv4_addr.of_string "10.0.0.1" in
  ok (Y.Yanc_fs.add_switch yfs ~name:"sw1" ~dpid:1L ~protocol:"openflow10"
        ~n_buffers:0 ~n_tables:1 ~capabilities:[] ~actions:[]);
  ok
    (Y.Yanc_fs.set_port yfs ~switch:"sw1"
       (OF.Of_types.Port_info.make ~port_no:1 ~hw_addr:mac ()));
  ok
    (Y.Yanc_fs.upsert_host yfs ~cred ~name:"h1" ~mac ~ip
       ~attached_to:("sw1", 1) ());
  let back_mac, back_ip, attached = ok (Y.Yanc_fs.read_host yfs ~cred "h1") in
  Alcotest.(check bool) "mac" true (Packet.Mac.equal mac back_mac);
  Alcotest.(check bool) "ip" true (back_ip = ip);
  Alcotest.(check (option (pair string int))) "attachment" (Some ("sw1", 1)) attached

let test_peer_roundtrip () =
  let _, yfs = setup () in
  List.iter
    (fun name ->
      ok (Y.Yanc_fs.add_switch yfs ~name ~dpid:1L ~protocol:"openflow10"
            ~n_buffers:0 ~n_tables:1 ~capabilities:[] ~actions:[]);
      ok
        (Y.Yanc_fs.set_port yfs ~switch:name
           (OF.Of_types.Port_info.make ~port_no:1
              ~hw_addr:(Packet.Mac.of_int 0x02) ())))
    [ "sw1"; "sw2" ];
  ok (Y.Yanc_fs.set_peer yfs ~cred ~switch:"sw1" ~port:1 ~peer:(Some ("sw2", 1)));
  Alcotest.(check (option (pair string int))) "peer read back" (Some ("sw2", 1))
    (Y.Yanc_fs.peer_of yfs ~cred ~switch:"sw1" ~port:1);
  ok (Y.Yanc_fs.set_peer yfs ~cred ~switch:"sw1" ~port:1 ~peer:None);
  Alcotest.(check (option (pair string int))) "peer removed" None
    (Y.Yanc_fs.peer_of yfs ~cred ~switch:"sw1" ~port:1)

(* --- property: flowdir roundtrip --------------------------------------------------------------- *)

let flow_gen =
  let open QCheck.Gen in
  let action =
    oneof
      [ map (fun pt -> OF.Action.Output (OF.Action.Physical pt)) (int_range 1 64);
        return (OF.Action.Output OF.Action.Flood);
        map (fun v -> OF.Action.Set_vlan v) (int_bound 4095);
        return OF.Action.Strip_vlan;
        map (fun x -> OF.Action.Set_tp_dst x) (int_bound 0xffff) ]
  in
  map
    (fun ((tp, proto), (pri, idle), actions) ->
      { Y.Flowdir.default with
        Y.Flowdir.of_match =
          { OF.Of_match.any with
            OF.Of_match.dl_type = Some 0x0800;
            nw_proto = Some proto;
            tp_dst = tp };
        actions;
        priority = pri;
        idle_timeout = idle })
    (triple
       (pair (opt (int_bound 0xffff)) (oneofl [ 6; 17 ]))
       (pair (int_bound 0xffff) (int_bound 300))
       (list_size (int_bound 4) action))

let prop_flowdir_roundtrip =
  QCheck.Test.make ~name:"flow directories roundtrip arbitrary flows" ~count:100
    (QCheck.make flow_gen) (fun flow ->
      let fs, yfs = setup () in
      ignore (Fs.mkdir fs ~cred (p "/net/switches/sw1"));
      match Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1" ~name:"f" flow with
      | Error _ -> false
      | Ok () -> (
        match Y.Yanc_fs.read_flow yfs ~cred ~switch:"sw1" "f" with
        | Error _ -> false
        | Ok back ->
          Y.Flowdir.equal_config { flow with Y.Flowdir.version = 0 }
            { back with Y.Flowdir.version = 0 }))

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_flowdir_roundtrip ]

let () =
  Alcotest.run "yancfs"
    [ ( "layout",
        [ Alcotest.test_case "paths" `Quick test_layout_paths;
          Alcotest.test_case "top level" `Quick test_top_level_structure ] );
      ( "schema",
        [ Alcotest.test_case "classification" `Quick test_classify;
          Alcotest.test_case "enclosing root" `Quick test_enclosing_root;
          Alcotest.test_case "semantic mkdir: view" `Quick test_semantic_mkdir_view;
          Alcotest.test_case "semantic mkdir: switch" `Quick test_semantic_mkdir_switch;
          Alcotest.test_case "semantic mkdir: flow/port" `Quick
            test_semantic_mkdir_flow_and_port;
          Alcotest.test_case "ownership inheritance" `Quick
            test_semantic_mkdir_ownership;
          Alcotest.test_case "recursive switch rmdir" `Quick test_recursive_switch_rmdir;
          Alcotest.test_case "peer symlink policy" `Quick test_peer_symlink_policy ] );
      ( "ports",
        [ Alcotest.test_case "config.port_down" `Quick test_port_down_file;
          Alcotest.test_case "peer roundtrip" `Quick test_peer_roundtrip ] );
      ( "flows",
        [ Alcotest.test_case "roundtrip" `Quick test_flowdir_roundtrip;
          Alcotest.test_case "wildcards by absence" `Quick test_flowdir_wildcards;
          Alcotest.test_case "rejects garbage" `Quick test_flowdir_rejects_garbage;
          Alcotest.test_case "version protocol" `Quick test_flowdir_version_readback;
          Alcotest.test_case "rewrite drops stale fields" `Quick
            test_flowdir_rewrite_removes_stale_fields;
          Alcotest.test_case "counters and error" `Quick test_flow_counters_and_error ] );
      ( "pktin-ring",
        [ Alcotest.test_case "publish/drain roundtrip" `Quick
            test_pktin_roundtrip;
          Alcotest.test_case "no subscribers -> counted drop" `Quick
            test_pktin_no_subscribers;
          Alcotest.test_case "two consumers, pooled recycle" `Quick
            test_pktin_two_consumers_recycle;
          Alcotest.test_case "overflow lapping" `Quick test_pktin_overflow;
          Alcotest.test_case "steady state allocates zero" `Quick
            test_pktin_pool_steady_state ] );
      ( "events",
        [ Alcotest.test_case "fan-out to private buffers" `Quick test_eventdir_fanout;
          Alcotest.test_case "fifo ordering" `Quick test_eventdir_ordering;
          Alcotest.test_case "no subscribers" `Quick test_eventdir_no_subscribers;
          Alcotest.test_case "packet-out spool" `Quick test_outdir_roundtrip ] );
      ( "views-hosts",
        [ Alcotest.test_case "view is a full root" `Quick test_in_view_is_full_root;
          Alcotest.test_case "host records" `Quick test_host_records ] );
      "properties", qcheck_cases ]
