(* Tests for libyanc (paper §8.1): the shared-memory fastpath and the
   zero-copy ring. The key invariant: the fastpath produces exactly the
   same file-system state as the slow path, at a fraction of the kernel
   crossings. *)

module Y = Yancfs
module Fs = Vfs.Fs
module OF = Openflow

let cred = Vfs.Cred.root

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.Errno.to_string e)

let setup () =
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  ignore (Fs.mkdir fs ~cred (Y.Layout.switch ~root:Y.Layout.default_root "sw1"));
  fs, yfs

let sample_flow i =
  { Y.Flowdir.default with
    Y.Flowdir.of_match =
      { OF.Of_match.any with
        OF.Of_match.dl_type = Some 0x0800; tp_dst = Some (1000 + i) };
    actions = [ OF.Action.Output (OF.Action.Physical ((i mod 4) + 1)) ];
    priority = i }

let test_fastpath_one_crossing_per_batch () =
  let fs, yfs = setup () in
  let fp = Libyanc.Fastpath.create yfs in
  let cost = Fs.cost fs in
  Vfs.Cost.reset cost;
  (match
     Libyanc.Fastpath.push_flows fp
       (List.init 100 (fun i -> "sw1", Printf.sprintf "f%d" i, sample_flow i))
   with
  | Ok 100 -> ()
  | Ok n -> Alcotest.failf "wrote %d" n
  | Error e -> Alcotest.failf "push: %s" (Vfs.Errno.to_string e));
  Alcotest.(check int) "100 flows, ONE crossing" 1 (Vfs.Cost.crossings cost);
  Alcotest.(check int) "all present" 100
    (List.length (Y.Yanc_fs.flow_names yfs ~cred "sw1"));
  Alcotest.(check bool) "saved crossings accounted" true
    (Libyanc.Fastpath.crossings_saved fp > 500)

let test_fastpath_state_identical_to_slow_path () =
  (* Same flows via both paths -> byte-identical flow directories. *)
  let fs_slow, yfs_slow = setup () in
  let fs_fast, yfs_fast = setup () in
  let flows = List.init 10 (fun i -> Printf.sprintf "f%d" i, sample_flow i) in
  List.iter
    (fun (name, flow) ->
      ok (Y.Yanc_fs.create_flow yfs_slow ~cred ~switch:"sw1" ~name flow))
    flows;
  let fp = Libyanc.Fastpath.create yfs_fast in
  ok
    (Result.map ignore
       (Libyanc.Fastpath.push_flows fp
          (List.map (fun (name, flow) -> "sw1", name, flow) flows)));
  let dump fs =
    let out = ref [] in
    ok
      (Fs.walk fs ~cred (Y.Layout.default_root) (fun path st ->
           let content =
             if st.Fs.kind = Fs.File then
               match Fs.read_file fs ~cred path with Ok v -> v | Error _ -> ""
             else ""
           in
           out := (Vfs.Path.to_string path, content) :: !out));
    List.rev !out
  in
  Alcotest.(check (list (pair string string))) "identical trees" (dump fs_slow)
    (dump fs_fast)

let test_fastpath_create_flow () =
  let fs, yfs = setup () in
  let fp = Libyanc.Fastpath.create yfs in
  let cost = Fs.cost fs in
  Vfs.Cost.reset cost;
  ok (Libyanc.Fastpath.create_flow fp ~switch:"sw1" ~name:"one" (sample_flow 1));
  Alcotest.(check int) "one crossing" 1 (Vfs.Cost.crossings cost);
  (* the flow is a normal committed flow *)
  match Y.Yanc_fs.read_flow yfs ~cred ~switch:"sw1" "one" with
  | Ok flow -> Alcotest.(check int) "committed" 1 flow.Y.Flowdir.version
  | Error e -> Alcotest.fail e

let test_fastpath_delete_and_read () =
  let fs, yfs = setup () in
  let fp = Libyanc.Fastpath.create yfs in
  ok
    (Result.map ignore
       (Libyanc.Fastpath.push_flows fp
          [ "sw1", "a", sample_flow 1; "sw1", "b", sample_flow 2 ]));
  (* counters written by a driver *)
  ok
    (Y.Flowdir.write_counters fs ~cred
       (Y.Layout.flow ~root:Y.Layout.default_root ~switch:"sw1" "a")
       ~packets:5L ~bytes:500L ~duration_s:1);
  let cost = Fs.cost fs in
  Vfs.Cost.reset cost;
  let counters = ok (Libyanc.Fastpath.read_flow_counters fp ~switch:"sw1") in
  Alcotest.(check int) "bulk read = one crossing" 1 (Vfs.Cost.crossings cost);
  Alcotest.(check (list (triple string int64 int64))) "counters" [ "a", 5L, 500L ]
    counters;
  ok (Libyanc.Fastpath.delete_flows fp [ "sw1", "a"; "sw1", "b"; "sw1", "ghost" ]);
  Alcotest.(check (list string)) "deleted" [] (Y.Yanc_fs.flow_names yfs ~cred "sw1")

let test_fastpath_slow_path_cost_contrast () =
  (* The §8.1 claim in miniature: per-flow slow-path crossings are an
     order of magnitude above fastpath crossings. *)
  let fs, yfs = setup () in
  let cost = Fs.cost fs in
  Vfs.Cost.reset cost;
  ok (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1" ~name:"slow" (sample_flow 1));
  let slow = Vfs.Cost.crossings cost in
  Alcotest.(check bool) "slow path is many syscalls" true (slow >= 8);
  Vfs.Cost.reset cost;
  let fp = Libyanc.Fastpath.create yfs in
  ok (Libyanc.Fastpath.create_flow fp ~switch:"sw1" ~name:"fast" (sample_flow 2));
  Alcotest.(check int) "fastpath is one" 1 (Vfs.Cost.crossings cost)

(* --- shm ring ------------------------------------------------------------------- *)

let test_ring_fifo () =
  let ring = Libyanc.Shm_ring.create ~capacity:4 in
  Alcotest.(check bool) "push 1" true (Libyanc.Shm_ring.push ring "a");
  Alcotest.(check bool) "push 2" true (Libyanc.Shm_ring.push ring "b");
  Alcotest.(check (option string)) "pop fifo" (Some "a") (Libyanc.Shm_ring.pop ring);
  Alcotest.(check bool) "push 3" true (Libyanc.Shm_ring.push ring "c");
  Alcotest.(check (list string)) "drain order" [ "b"; "c" ]
    (Libyanc.Shm_ring.pop_all ring);
  Alcotest.(check (option string)) "empty" None (Libyanc.Shm_ring.pop ring)

let test_ring_bounded () =
  let ring = Libyanc.Shm_ring.create ~capacity:2 in
  ignore (Libyanc.Shm_ring.push ring 1);
  ignore (Libyanc.Shm_ring.push ring 2);
  Alcotest.(check bool) "full rejects" false (Libyanc.Shm_ring.push ring 3);
  Alcotest.(check int) "drop counted" 1 (Libyanc.Shm_ring.dropped ring);
  ignore (Libyanc.Shm_ring.pop ring);
  Alcotest.(check bool) "space again" true (Libyanc.Shm_ring.push ring 3);
  Alcotest.(check int) "pushed total" 3 (Libyanc.Shm_ring.pushed ring)

let test_ring_wraparound () =
  let ring = Libyanc.Shm_ring.create ~capacity:3 in
  for round = 0 to 9 do
    Alcotest.(check bool) "push" true (Libyanc.Shm_ring.push ring round);
    Alcotest.(check (option int)) "pop" (Some round) (Libyanc.Shm_ring.pop ring)
  done;
  Alcotest.(check int) "length settles" 0 (Libyanc.Shm_ring.length ring)

let test_ring_zero_copy () =
  (* References, not copies: the consumer receives the producer's exact
     buffer. *)
  let ring = Libyanc.Shm_ring.create ~capacity:2 in
  let buffer = Bytes.of_string "packet-payload" in
  ignore (Libyanc.Shm_ring.push ring buffer);
  match Libyanc.Shm_ring.pop ring with
  | Some received -> Alcotest.(check bool) "same physical buffer" true (received == buffer)
  | None -> Alcotest.fail "lost the buffer"

let prop_ring_preserves_order =
  QCheck.Test.make ~name:"ring preserves FIFO order under mixed ops" ~count:200
    QCheck.(list (int_bound 1))
    (fun script ->
      let ring = Libyanc.Shm_ring.create ~capacity:8 in
      let reference = Queue.create () in
      let next = ref 0 in
      List.for_all
        (fun op ->
          if op = 0 then begin
            let v = !next in
            incr next;
            let pushed = Libyanc.Shm_ring.push ring v in
            if pushed then Queue.push v reference;
            true
          end
          else
            match Libyanc.Shm_ring.pop ring, Queue.take_opt reference with
            | Some a, Some b -> a = b
            | None, None -> true
            | _ -> false)
        script)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_ring_preserves_order ]

let () =
  Alcotest.run "libyanc"
    [ ( "fastpath",
        [ Alcotest.test_case "one crossing per batch" `Quick
            test_fastpath_one_crossing_per_batch;
          Alcotest.test_case "state identical to slow path" `Quick
            test_fastpath_state_identical_to_slow_path;
          Alcotest.test_case "atomic create" `Quick test_fastpath_create_flow;
          Alcotest.test_case "bulk delete/read" `Quick test_fastpath_delete_and_read;
          Alcotest.test_case "cost contrast" `Quick
            test_fastpath_slow_path_cost_contrast ] );
      ( "shm-ring",
        [ Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "bounded" `Quick test_ring_bounded;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "zero copy" `Quick test_ring_zero_copy ] );
      "properties", qcheck_cases ]
