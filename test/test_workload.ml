(* Tests for the seeded heavy-tailed workload generator driving the
   scale benches: one seed names the entire schedule (the determinism
   contract the benches rely on), the elephant/mice mix tracks the
   profile, and injection feeds the network exactly the arrivals due. *)

module N = Netsim
module P = Packet

let arrival_eq (a : N.Workload.arrival) (b : N.Workload.arrival) =
  a.N.Workload.at = b.N.Workload.at
  && a.src = b.src && a.dst = b.dst
  && a.src_port = b.src_port && a.dst_port = b.dst_port
  && a.packets = b.packets && a.cls = b.cls

let seed_hosts = QCheck.(pair small_int (int_range 2 64))

let prop_seed_reproducible =
  QCheck.Test.make ~name:"same seed -> identical schedule" ~count:50
    seed_hosts
    (fun (seed, hosts) ->
      let w1 = N.Workload.create ~seed ~hosts () in
      let w2 = N.Workload.create ~seed ~hosts () in
      List.for_all2 arrival_eq
        (N.Workload.schedule w1 ~n:200)
        (N.Workload.schedule w2 ~n:200))

let prop_well_formed =
  QCheck.Test.make
    ~name:"arrivals well-formed (increasing times, hosts in range, bounded sizes)"
    ~count:50 seed_hosts
    (fun (seed, hosts) ->
      let w = N.Workload.create ~seed ~hosts () in
      let p = N.Workload.profile w in
      let last = ref 0. in
      List.for_all
        (fun (a : N.Workload.arrival) ->
          let ok =
            a.N.Workload.at > !last
            && a.src >= 1 && a.src <= hosts
            && a.dst >= 1 && a.dst <= hosts && a.dst <> a.src
            && a.packets >= 1
            && a.packets <= p.N.Workload.max_packets
            &&
            match a.cls with
            | N.Workload.Mouse ->
              a.packets <= (2 * p.N.Workload.mouse_mean_packets) - 1
            | N.Workload.Elephant ->
              a.packets >= p.N.Workload.elephant_min_packets
          in
          last := a.N.Workload.at;
          ok)
        (N.Workload.schedule w ~n:300))

(* The default profile draws 10% elephants: over 4000 arrivals the
   sample fraction is ~8 standard deviations inside these bounds. *)
let prop_class_mix =
  QCheck.Test.make ~name:"elephant fraction tracks the profile" ~count:20
    QCheck.small_int
    (fun seed ->
      let w = N.Workload.create ~seed ~hosts:32 () in
      let n = 4000 in
      let elephants =
        List.length
          (List.filter
             (fun (a : N.Workload.arrival) -> a.cls = N.Workload.Elephant)
             (N.Workload.schedule w ~n))
      in
      let f = float_of_int elephants /. float_of_int n in
      f > 0.06 && f < 0.15)

(* Poisson arrivals at [rate]: the mean interarrival over 4000 draws
   must sit within 20% of 1/rate. *)
let prop_rate =
  QCheck.Test.make ~name:"arrival rate tracks the profile" ~count:20
    QCheck.small_int
    (fun seed ->
      let w = N.Workload.create ~seed ~hosts:8 () in
      let n = 4000 in
      let s = N.Workload.schedule w ~n in
      let span = (List.nth s (n - 1)).N.Workload.at -. (List.hd s).N.Workload.at in
      let rate = (N.Workload.profile w).N.Workload.rate in
      let mean = span /. float_of_int (n - 1) in
      mean > 0.8 /. rate && mean < 1.2 /. rate)

let test_distinct_seeds_differ () =
  let s1 = N.Workload.schedule (N.Workload.create ~seed:1 ~hosts:16 ()) ~n:50 in
  let s2 = N.Workload.schedule (N.Workload.create ~seed:2 ~hosts:16 ()) ~n:50 in
  Alcotest.(check bool) "different seeds, different schedules" false
    (List.for_all2 arrival_eq s1 s2)

let test_first_frame_conventions () =
  let w = N.Workload.create ~seed:42 ~hosts:16 () in
  let a = N.Workload.next w in
  let h = P.Headers.of_eth ~in_port:1 (N.Workload.first_frame a) in
  Alcotest.(check string) "src mac" (P.Mac.to_string (N.Topo_gen.host_mac a.N.Workload.src))
    (P.Mac.to_string h.P.Headers.dl_src);
  Alcotest.(check string) "dst mac" (P.Mac.to_string (N.Topo_gen.host_mac a.N.Workload.dst))
    (P.Mac.to_string h.P.Headers.dl_dst);
  Alcotest.(check (option string)) "src ip"
    (Some (P.Ipv4_addr.to_string (N.Topo_gen.host_ip a.N.Workload.src)))
    (Option.map P.Ipv4_addr.to_string h.P.Headers.nw_src);
  Alcotest.(check (option string)) "dst ip"
    (Some (P.Ipv4_addr.to_string (N.Topo_gen.host_ip a.N.Workload.dst)))
    (Option.map P.Ipv4_addr.to_string h.P.Headers.nw_dst);
  Alcotest.(check (option int)) "tcp" (Some 6) h.P.Headers.nw_proto;
  Alcotest.(check (option int)) "src port" (Some a.N.Workload.src_port)
    h.P.Headers.tp_src;
  Alcotest.(check (option int)) "dst port" (Some a.N.Workload.dst_port)
    h.P.Headers.tp_dst

let test_inject_until () =
  let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
  let seed = 7 in
  let wl =
    N.Workload.create ~seed ~hosts:(List.length built.N.Topo_gen.host_names) ()
  in
  (* a twin generator tells us how many arrivals are due by [upto] *)
  let twin = N.Workload.create ~seed ~hosts:2 () in
  let upto = 0.01 in
  let expect = ref 0 in
  (try
     while (N.Workload.next twin).N.Workload.at <= upto do incr expect done
   with _ -> ());
  let injected = N.Workload.inject_until wl ~net:built.N.Topo_gen.net ~upto in
  Alcotest.(check int) "injects every due arrival" !expect injected;
  Alcotest.(check int) "same upto again injects nothing" 0
    (N.Workload.inject_until wl ~net:built.N.Topo_gen.net ~upto);
  Alcotest.(check bool) "frames scheduled on the network" true
    (N.Network.pending_events built.N.Topo_gen.net > 0);
  (* the boundary arrival is buffered, not lost *)
  let more =
    N.Workload.inject_until wl ~net:built.N.Topo_gen.net ~upto:(upto +. 0.1)
  in
  Alcotest.(check bool) "buffered arrival injected later" true (more > 0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_seed_reproducible; prop_well_formed; prop_class_mix; prop_rate ]

let () =
  Alcotest.run "workload"
    [ ( "generator",
        [ Alcotest.test_case "distinct seeds differ" `Quick
            test_distinct_seeds_differ;
          Alcotest.test_case "first frame conventions" `Quick
            test_first_frame_conventions;
          Alcotest.test_case "inject_until" `Quick test_inject_until ] );
      "properties", qcheck_cases ]
