(* Failure injection and cross-cutting property tests: garbage on the
   wire, notification-queue overflow, conflicting distributed writes,
   and algebraic properties of the core abstractions. *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module P = Packet
module Fs = Vfs.Fs
module Path = Vfs.Path

let cred = Vfs.Cred.root

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.Errno.to_string e)

(* --- wire garbage ------------------------------------------------------------- *)

let test_agent_survives_garbage () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:2 ~dpid:1L () in
  N.Network.add_switch net s;
  let sw_end, ctl_end = N.Control_channel.create () in
  let agent =
    N.Of_agent.create ~version:N.Of_agent.V10 ~switch:s ~endpoint:sw_end
      ~network:net ()
  in
  (* a correctly framed message with an unknown type byte *)
  let bogus = "\001\099\000\012\000\000\000\001ABCD" in
  N.Control_channel.send ctl_end bogus;
  N.Of_agent.step agent ~now:0.;
  let got_error =
    List.exists
      (fun raw ->
        match OF.Of10.decode raw with
        | Ok (_, OF.Of10.Error_msg _) -> true
        | _ -> false)
      (N.Control_channel.recv_all ctl_end)
  in
  Alcotest.(check bool) "agent answers garbage with an error" true got_error;
  (* and keeps working afterwards *)
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:9l (OF.Of10.Echo_request "alive"));
  N.Of_agent.step agent ~now:0.;
  let alive =
    List.exists
      (fun raw ->
        match OF.Of10.decode raw with
        | Ok (9l, OF.Of10.Echo_reply "alive") -> true
        | _ -> false)
      (N.Control_channel.recv_all ctl_end)
  in
  Alcotest.(check bool) "agent still alive" true alive

let test_driver_survives_garbage () =
  let built = N.Topo_gen.linear 1 in
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  let sw = Option.get (N.Network.switch built.net 1L) in
  let sw_end, ctl_end = N.Control_channel.create () in
  let module D = Driver.Core.Make (Driver.Of10_adapter) in
  let d = D.create ~yfs ~endpoint:ctl_end () in
  let agent =
    N.Of_agent.create ~version:N.Of_agent.V10 ~switch:sw ~endpoint:sw_end
      ~network:built.net ()
  in
  (* poison the driver's inbox with a framed-but-bogus message, then let
     the handshake proceed *)
  N.Control_channel.send sw_end "\001\099\000\010\000\000\000\001XY";
  for _ = 1 to 4 do
    D.step d ~now:0.;
    N.Of_agent.step agent ~now:0.
  done;
  Alcotest.(check bool) "driver connected despite garbage" true (D.connected d);
  Alcotest.(check (option string)) "switch dir built" (Some "sw1") (D.switch_name d)

(* --- notification overflow ------------------------------------------------------ *)

let test_driver_recovers_from_notify_overflow () =
  (* Flood the driver's notifier far past its queue limit, then commit a
     real flow: the overflow marker must trigger a full rescan. *)
  let built = N.Topo_gen.linear 1 in
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  let mgr = Driver.Manager.create ~yfs ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  (* 17k events against the 16384-entry queue, all in the flows dir *)
  let junk = Y.Layout.flows_dir ~root:(Y.Yanc_fs.root yfs) "sw1" in
  let staging = Path.child junk "staging" in
  ok (Fs.mkdir fs ~cred staging);
  for i = 1 to 8500 do
    let p = Path.child staging (Printf.sprintf "x%d" i) in
    ok (Fs.write_file fs ~cred p "z");
    ok (Fs.unlink fs ~cred p)
  done;
  ok (Fs.rmdir fs ~cred staging);
  (* now the real commit, likely past the queue edge *)
  ok
    (Y.Yanc_fs.create_flow yfs ~cred ~switch:"sw1" ~name:"real"
       { Y.Flowdir.default with
         Y.Flowdir.actions = [ OF.Action.Output OF.Action.Flood ] });
  Driver.Manager.run_control mgr ~now:1.;
  let sw = Option.get (N.Network.switch built.net 1L) in
  match N.Sim_switch.table sw 0 with
  | Some t -> Alcotest.(check int) "flow programmed despite overflow" 1 (N.Flow_table.length t)
  | None -> Alcotest.fail "no table"

(* --- conflicting distributed writes ----------------------------------------------- *)

let test_dfs_conflicting_writes_converge () =
  let c =
    Dfs.Cluster.create ~consistency:(Dfs.Consistency.Eventual { propagation_s = 1. })
      ~n:2 ()
  in
  let a = Dfs.Cluster.node c 0
  and b = Dfs.Cluster.node c 1 in
  let p = Path.of_string_exn "/shared" in
  ok (Fs.write_file a ~cred p "from-a");
  ok (Fs.write_file b ~cred p "from-b");
  Dfs.Cluster.flush c;
  let va = ok (Fs.read_file a ~cred p) in
  let vb = ok (Fs.read_file b ~cred p) in
  (* both ops applied everywhere; the final values come from each
     other's op (classic last-writer-wins cross) — the important
     invariant is that nothing is lost or wedged and replicas hold a
     valid value *)
  Alcotest.(check bool) "a holds a known value" true (va = "from-a" || va = "from-b");
  Alcotest.(check bool) "b holds a known value" true (vb = "from-a" || vb = "from-b");
  Alcotest.(check bool) "converged" true (Dfs.Cluster.converged c)

(* --- properties --------------------------------------------------------------------- *)

let mac_gen = QCheck.Gen.(map P.Mac.of_int (int_bound ((1 lsl 48) - 1)))

let header_gen =
  let open QCheck.Gen in
  map
    (fun ((in_port, src, dst), (proto, (tp_src, tp_dst)), ip) ->
      let payload =
        if proto = 6 then
          P.Ipv4.Tcp (P.Tcp.make ~src_port:tp_src ~dst_port:tp_dst ())
        else P.Ipv4.Udp { P.Udp.src_port = tp_src; dst_port = tp_dst; payload = P.Udp.Data "" }
      in
      P.Headers.of_eth ~in_port
        (P.Eth.make ~src ~dst
           (P.Eth.Ipv4
              (P.Ipv4.make
                 ~src:(P.Ipv4_addr.of_int32 (Int32.of_int ip))
                 ~dst:(P.Ipv4_addr.of_int32 (Int32.of_int (ip + 1)))
                 payload))))
    (triple
       (triple (int_range 1 8) mac_gen mac_gen)
       (pair (oneofl [ 6; 17 ]) (pair (int_bound 0xffff) (int_bound 0xffff)))
       (int_bound 0xffffff))

let match_gen =
  let open QCheck.Gen in
  map
    (fun ((port, proto), (tp, prefix_bits), base) ->
      { OF.Of_match.any with
        OF.Of_match.in_port = port;
        dl_type = Some 0x0800;
        nw_proto = proto;
        tp_dst = tp;
        nw_src =
          Option.map
            (fun bits ->
              P.Ipv4_addr.Prefix.make (P.Ipv4_addr.of_int32 (Int32.of_int base)) bits)
            prefix_bits })
    (triple
       (pair (opt (int_range 1 8)) (opt (oneofl [ 6; 17 ])))
       (pair (opt (int_bound 0xffff)) (opt (int_range 1 32)))
       (int_bound 0xffffff))

let prop_intersect_sound =
  QCheck.Test.make ~name:"intersect matches exactly the common packets" ~count:500
    (QCheck.make QCheck.Gen.(triple match_gen match_gen header_gen))
    (fun (a, b, h) ->
      match OF.Of_match.intersect a b with
      | Some meet ->
        OF.Of_match.matches meet h
        = (OF.Of_match.matches a h && OF.Of_match.matches b h)
      | None ->
        (* disjoint: no packet may match both *)
        not (OF.Of_match.matches a h && OF.Of_match.matches b h))

let prop_acl_empty_equals_mode =
  QCheck.Test.make ~name:"empty ACL behaves exactly like mode bits" ~count:500
    (QCheck.make
       QCheck.Gen.(
         triple (int_bound 0o777) (pair (int_bound 5) (int_bound 5))
           (pair (int_bound 5) (int_bound 5))))
    (fun (mode, (owner, group), (uid, gid)) ->
      let c = Vfs.Cred.make ~uid ~gid () in
      List.for_all
        (fun access ->
          Vfs.Acl.check ~acl:Vfs.Acl.empty ~mode ~owner ~group c access
          = Vfs.Perm.check ~mode ~owner ~group c access)
        [ Vfs.Perm.r_ok; Vfs.Perm.w_ok; Vfs.Perm.x_ok ])

let op_script_gen =
  let open QCheck.Gen in
  let name = map (Printf.sprintf "f%d") (int_bound 5) in
  list_size (int_range 1 25)
    (oneof
       [ map (fun n -> `Mkdir n) name;
         map2 (fun n v -> `Write (n, Printf.sprintf "v%d" v)) name (int_bound 9);
         map (fun n -> `Unlink n) name;
         map (fun n -> `Rmdir n) name;
         map2 (fun a b -> `Rename (a, b)) name name ])

let run_script fs script =
  let p n = Path.of_string_exn ("/" ^ n) in
  List.iter
    (fun step ->
      ignore
        (match step with
        | `Mkdir n -> Result.map (fun _ -> "") (Fs.mkdir fs ~cred (p n))
        | `Write (n, v) -> Result.map (fun _ -> "") (Fs.write_file fs ~cred (p n) v)
        | `Unlink n -> Result.map (fun _ -> "") (Fs.unlink fs ~cred (p n))
        | `Rmdir n -> Result.map (fun _ -> "") (Fs.rmdir ~recursive:true fs ~cred (p n))
        | `Rename (a, b) ->
          Result.map (fun _ -> "") (Fs.rename fs ~cred ~src:(p a) ~dst:(p b))))
    script

let dump fs =
  let out = ref [] in
  ignore
    (Fs.walk fs ~cred Path.root (fun path st ->
         let content =
           if st.Fs.kind = Fs.File then
             match Fs.read_file fs ~cred path with Ok v -> v | Error _ -> ""
           else "<dir>"
         in
         out := (Path.to_string path, content) :: !out));
  !out

let prop_replication_deterministic =
  QCheck.Test.make ~name:"op-stream replication reproduces arbitrary trees"
    ~count:200 (QCheck.make op_script_gen) (fun script ->
      let src = Fs.create () in
      let dst = Fs.create () in
      let _h = Fs.subscribe src (fun op -> ignore (Fs.replay dst op)) in
      run_script src script;
      dump src = dump dst)

let prop_eventdir_exact_delivery =
  QCheck.Test.make ~name:"event buffers deliver exactly once, in order" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 0 20)))
    (fun (apps, events) ->
      let fs = Fs.create () in
      let yfs = Y.Yanc_fs.create fs in
      ignore yfs;
      ignore (Fs.mkdir fs ~cred (Path.of_string_exn "/net/switches/sw1"));
      let root = Y.Layout.default_root in
      let app i = Printf.sprintf "a%d" i in
      for i = 1 to apps do
        ignore (Y.Eventdir.subscribe fs ~cred ~root ~switch:"sw1" ~app:(app i))
      done;
      for e = 1 to events do
        ignore
          (Y.Eventdir.publish fs ~root ~switch:"sw1" ~in_port:e
             ~reason:OF.Of_types.No_match ~buffer_id:None ~total_len:0 ~data:"")
      done;
      List.for_all
        (fun i ->
          let got = Y.Eventdir.consume fs ~cred ~root ~switch:"sw1" ~app:(app i) in
          List.length got = events
          && List.for_all2
               (fun (ev : Y.Eventdir.event) e -> ev.in_port = e)
               got
               (List.init events (fun k -> k + 1))
          && Y.Eventdir.poll fs ~cred ~root ~switch:"sw1" ~app:(app i) = [])
        (List.init apps (fun i -> i + 1)))

let prop_table_delete_complete =
  QCheck.Test.make ~name:"deleted flows never match again" ~count:200
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 1 10) match_gen) header_gen))
    (fun (matches, h) ->
      let t = N.Flow_table.create () in
      List.iteri
        (fun i m ->
          N.Flow_table.add t ~now:0. ~of_match:m ~priority:i ~actions:[] ())
        matches;
      ignore (N.Flow_table.delete t ~of_match:OF.Of_match.any);
      N.Flow_table.length t = 0 && N.Flow_table.lookup t ~now:0. h = None)

let prop_classify_view_invariant =
  QCheck.Test.make ~name:"classification is invariant under view nesting" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 3)
           (oneofl
              [ "switches/sw1"; "switches/sw1/flows/f"; "hosts/h";
                "switches/sw1/ports/port_1/peer"; "views"; "" ])))
    (fun (depth, rel) ->
      let root = Y.Layout.default_root in
      let rec nest i p =
        if i = 0 then p else nest (i - 1) (Path.child (Path.child p "views") "v")
      in
      let base = Path.of_string_exn ("/net/" ^ rel) in
      let nested =
        Path.append (nest depth root)
          (Option.get (Path.strip_prefix ~prefix:root base))
      in
      Y.Schema.classify ~root base = Y.Schema.classify ~root nested)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_intersect_sound; prop_acl_empty_equals_mode;
      prop_replication_deterministic; prop_eventdir_exact_delivery;
      prop_table_delete_complete; prop_classify_view_invariant ]

let () =
  Alcotest.run "robustness"
    [ ( "failure-injection",
        [ Alcotest.test_case "agent survives garbage" `Quick test_agent_survives_garbage;
          Alcotest.test_case "driver survives garbage" `Quick
            test_driver_survives_garbage;
          Alcotest.test_case "driver recovers from notify overflow" `Quick
            test_driver_recovers_from_notify_overflow;
          Alcotest.test_case "dfs conflicting writes" `Quick
            test_dfs_conflicting_writes_converge ] );
      "properties", qcheck_cases ]
