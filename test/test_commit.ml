(* Commit-pipeline tests: dirty keys flow from file-system mutations
   through the per-switch Commit_queue to hardware — coalescing (N
   writes, one flow_mod), delete-before-add ordering, interleaved
   write/delete/re-add convergence (QCheck, against the committed file
   system as the full-reconcile oracle), and the DFS replication
   stream's last-write-wins discipline. *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module Fs = Vfs.Fs
module Path = Vfs.Path

let cred = Vfs.Cred.root

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.Errno.to_string e)

type rig = {
  net : N.Network.t;
  yfs : Y.Yanc_fs.t;
  mgr : Driver.Manager.t;
  sw : N.Sim_switch.t;
}

let rig () =
  let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
  let fs = Fs.create () in
  let yfs = Y.Yanc_fs.create fs in
  let mgr = Driver.Manager.create ~yfs ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  let sw = Option.get (N.Network.switch built.net 1L) in
  { net = built.net; yfs; mgr; sw }

let step ?(now = 1.) r = Driver.Manager.run_control r.mgr ~now

let counter r name =
  Telemetry.Registry.value
    (Telemetry.Registry.counter
       (Telemetry.registry (Y.Yanc_fs.telemetry r.yfs))
       name)

let switch_rules r =
  match N.Sim_switch.table r.sw 0 with
  | Some t ->
    List.sort_uniq compare
      (List.map
         (fun (e : N.Flow_table.entry) -> (e.of_match, e.priority))
         (N.Flow_table.entries t))
  | None -> []

let fs_rules r =
  List.sort_uniq compare
    (List.filter_map
       (fun name ->
         match Y.Yanc_fs.read_flow r.yfs ~cred ~switch:"sw1" name with
         | Ok (f : Y.Flowdir.t) -> Some (f.of_match, f.priority)
         | Error _ -> None)
       (Y.Yanc_fs.flow_names r.yfs ~cred "sw1"))

let flow ?(tp_dst = 80) ?(priority = 100) () =
  { Y.Flowdir.default with
    Y.Flowdir.of_match = { OF.Of_match.any with OF.Of_match.tp_dst = Some tp_dst };
    actions = [ OF.Action.Output (OF.Action.Physical 1) ];
    priority }

let flow_dir r name = Y.Layout.flow ~root:(Y.Yanc_fs.root r.yfs) ~switch:"sw1" name

(* N version bumps to one flow inside one tick cost exactly one
   flow_mod: the marks coalesce on the queue and the flush reads the
   directory's final state. *)
let test_burst_coalesces_to_one_flow_mod () =
  let r = rig () in
  ok (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"f" (flow ()));
  step r;
  let adds0 = counter r "driver.commit.adds" in
  let coalesced0 = counter r "driver.commit.coalesced" in
  for i = 1 to 8 do
    match
      Y.Flowdir.update (Y.Yanc_fs.fs r.yfs) ~cred (flow_dir r "f")
        (fun old -> { old with Y.Flowdir.priority = 100 + i })
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "update %d: %s" i e
  done;
  step r;
  Alcotest.(check int) "one flow_mod for eight writes" 1
    (counter r "driver.commit.adds" - adds0);
  Alcotest.(check bool) "marks coalesced" true
    (counter r "driver.commit.coalesced" > coalesced0);
  match switch_rules r with
  | [ (_, priority) ] ->
    Alcotest.(check int) "last write wins" 108 priority
  | l -> Alcotest.failf "expected 1 hardware rule, got %d" (List.length l)

(* Interleaved write/delete/re-add inside one tick converges on the
   last state, including the version chain restarting from scratch. *)
let test_delete_readd_one_tick_converges () =
  let r = rig () in
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"a"
       (flow ~tp_dst:1 ~priority:10 ()));
  step r;
  (* same name, new identity, without letting the driver observe the
     intermediate deletion *)
  ok (Y.Yanc_fs.delete_flow r.yfs ~cred ~switch:"sw1" "a");
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"a"
       (flow ~tp_dst:2 ~priority:7 ()));
  (* plus a flow that never survives the tick *)
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"b"
       (flow ~tp_dst:3 ~priority:9 ()));
  ok (Y.Yanc_fs.delete_flow r.yfs ~cred ~switch:"sw1" "b");
  step r;
  step r;
  Alcotest.(check bool) "hardware == files" true (switch_rules r = fs_rules r);
  match switch_rules r with
  | [ (m, 7) ] ->
    Alcotest.(check (option int)) "re-added identity" (Some 2)
      m.OF.Of_match.tp_dst
  | l -> Alcotest.failf "expected rule [tp_dst=2 pri=7], got %d" (List.length l)

(* A rename observed within one tick is a delete plus an add of the
   same rule; delete-before-add ordering must keep the rule alive. *)
let test_rename_survives_batch () =
  let r = rig () in
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"old"
       (flow ~tp_dst:5 ~priority:20 ()));
  step r;
  ok
    (Fs.rename (Y.Yanc_fs.fs r.yfs) ~cred ~src:(flow_dir r "old")
       ~dst:(flow_dir r "new"));
  step r;
  step r;
  Alcotest.(check bool) "hardware == files" true (switch_rules r = fs_rules r);
  Alcotest.(check int) "exactly one rule" 1 (List.length (switch_rules r))

(* The deleted-then-reused match: flow A changes identity M1→M2 while
   new flow B takes over M1, all in one batch. Batched deletes-first
   ordering must not wipe B's add. *)
let test_match_takeover_in_one_batch () =
  let r = rig () in
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"a"
       (flow ~tp_dst:1 ~priority:10 ()));
  step r;
  (match
     Y.Flowdir.update (Y.Yanc_fs.fs r.yfs) ~cred (flow_dir r "a")
       (fun old ->
         { old with
           Y.Flowdir.of_match =
             { OF.Of_match.any with OF.Of_match.tp_dst = Some 2 } })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "update: %s" e);
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"b"
       (flow ~tp_dst:1 ~priority:10 ()));
  step r;
  step r;
  Alcotest.(check bool) "hardware == files" true (switch_rules r = fs_rules r);
  Alcotest.(check int) "both rules present" 2 (List.length (switch_rules r))

(* FS write failures surface in driver.fs_errors instead of vanishing:
   make the flow's error file unwritable by replacing it with a
   directory, then commit garbage so the driver tries to write it. *)
let test_fs_errors_surface () =
  let r = rig () in
  ok
    (Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name:"f"
       (flow ~tp_dst:1 ()));
  step r;
  let before = counter r "driver.fs_errors" in
  ok
    (Fs.mkdir (Y.Yanc_fs.fs r.yfs) ~cred
       (Path.child (flow_dir r "f") Y.Layout.error_file));
  ok
    (Fs.write_file (Y.Yanc_fs.fs r.yfs) ~cred
       (Path.child (flow_dir r "f") "priority") "not-a-number");
  ok
    (Fs.write_file (Y.Yanc_fs.fs r.yfs) ~cred
       (Path.child (flow_dir r "f") Y.Layout.version_file) "2");
  step r;
  Alcotest.(check bool) "failure counted" true
    (counter r "driver.fs_errors" > before)

(* QCheck: any interleaving of create/update/delete/step converges —
   hardware ends identical to the committed file system (what a full
   reconcile would produce), with only dirty keys ever flushed. *)
type op = Upsert of int * int * int | Delete of int | Tick

let op_gen =
  QCheck.Gen.(
    frequency
      [ 5,
        map3
          (fun n d p -> Upsert (n, d, p))
          (int_bound 3) (int_range 1 6) (int_range 1 5);
        3, map (fun n -> Delete n) (int_bound 3);
        2, return Tick ])

let pp_op = function
  | Upsert (n, d, p) -> Printf.sprintf "upsert f%d tp_dst=%d pri=%d" n d p
  | Delete n -> Printf.sprintf "delete f%d" n
  | Tick -> "tick"

let arb_ops =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map pp_op l))
    QCheck.Gen.(list_size (int_range 1 40) op_gen)

let apply_op r = function
  | Upsert (n, tp_dst, priority) -> (
    let name = Printf.sprintf "f%d" n in
    let f = flow ~tp_dst ~priority () in
    match Y.Yanc_fs.create_flow r.yfs ~cred ~switch:"sw1" ~name f with
    | Ok () -> ()
    | Error Vfs.Errno.EEXIST ->
      (match
         Y.Flowdir.update (Y.Yanc_fs.fs r.yfs) ~cred (flow_dir r name)
           (fun old -> { f with Y.Flowdir.version = old.Y.Flowdir.version })
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "update %s: %s" name e)
    | Error e -> Alcotest.failf "create %s: %s" name (Vfs.Errno.to_string e))
  | Delete n ->
    ignore
      (Y.Yanc_fs.delete_flow r.yfs ~cred ~switch:"sw1"
         (Printf.sprintf "f%d" n))
  | Tick -> step r

let prop_converges_to_fs ops =
  let r = rig () in
  List.iter (apply_op r) ops;
  step r;
  step r;
  let hw = switch_rules r and fs = fs_rules r in
  if hw <> fs then
    QCheck.Test.fail_reportf "diverged: hardware %d rules, files %d rules"
      (List.length hw) (List.length fs);
  true

let test_qcheck_convergence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random op sequences converge" arb_ops
       prop_converges_to_fs)

(* --- the commit queue itself --------------------------------------- *)

let test_queue_semantics () =
  let q = Driver.Commit_queue.create () in
  Alcotest.(check bool) "new queue empty" true (Driver.Commit_queue.is_empty q);
  Alcotest.(check bool) "first mark enqueues" true (Driver.Commit_queue.mark q "a");
  Alcotest.(check bool) "re-mark coalesces" false (Driver.Commit_queue.mark q "a");
  Alcotest.(check bool) "other key enqueues" true (Driver.Commit_queue.mark q "b");
  Alcotest.(check int) "two pending" 2 (Driver.Commit_queue.pending q);
  Alcotest.(check (list string)) "bounded take, oldest first" [ "a" ]
    (Driver.Commit_queue.take ~max:1 q);
  Alcotest.(check (list string)) "rest" [ "b" ] (Driver.Commit_queue.take q);
  Alcotest.(check bool) "drained" true (Driver.Commit_queue.is_empty q);
  Alcotest.(check bool) "no sweep pending" false (Driver.Commit_queue.take_sweep q);
  Driver.Commit_queue.mark_sweep q;
  Alcotest.(check bool) "sweep consumed" true (Driver.Commit_queue.take_sweep q);
  Alcotest.(check bool) "sweep one-shot" false (Driver.Commit_queue.take_sweep q);
  ignore (Driver.Commit_queue.mark q "c");
  Driver.Commit_queue.clear q;
  Alcotest.(check int) "cleared" 0 (Driver.Commit_queue.pending q);
  let s = Driver.Commit_queue.stats q in
  Alcotest.(check int) "marks counted" 4 s.Driver.Commit_queue.marked;
  Alcotest.(check int) "coalesces counted" 1 s.Driver.Commit_queue.coalesced

(* --- DFS: the same dirty-set discipline on the replication stream --- *)

let test_dfs_coalesces_rewrites () =
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.nfs ~n:2 () in
  let a = Dfs.Cluster.node c 0 in
  let path = Path.of_string_exn "/f" in
  ok (Fs.write_file a ~cred path "v1");
  ok (Fs.write_file a ~cred path "v2");
  ok (Fs.write_file a ~cred path "v3");
  Dfs.Cluster.flush c;
  let m = Dfs.Cluster.metrics c in
  (* v1's whole-file write makes its queued [Create] redundant; then
     rewrites 2 and 3 each emit truncate+write, and each truncate kills
     the still-queued content ops of the previous rewrite *)
  Alcotest.(check int) "superseded ops never replicated" 4
    m.Dfs.Cluster.ops_coalesced;
  (match Fs.read_file (Dfs.Cluster.node c 1) ~cred path with
  | Ok v -> Alcotest.(check string) "replica has final content" "v3" v
  | Error e -> Alcotest.failf "replica read: %s" (Vfs.Errno.to_string e));
  Alcotest.(check bool) "converged" true (Dfs.Cluster.converged c)

let test_dfs_structural_boundary_blocks_coalescing () =
  (* content moved by a rename must not be killed by a later write to
     the old path *)
  let c = Dfs.Cluster.create ~consistency:Dfs.Consistency.nfs ~n:2 () in
  let a = Dfs.Cluster.node c 0 in
  let src = Path.of_string_exn "/a" and dst = Path.of_string_exn "/b" in
  ok (Fs.write_file a ~cred src "moved");
  ok (Fs.rename a ~cred ~src ~dst);
  ok (Fs.write_file a ~cred src "fresh");
  Dfs.Cluster.flush c;
  let b = Dfs.Cluster.node c 1 in
  (match Fs.read_file b ~cred dst with
  | Ok v -> Alcotest.(check string) "renamed content intact" "moved" v
  | Error e -> Alcotest.failf "replica /b: %s" (Vfs.Errno.to_string e));
  match Fs.read_file b ~cred src with
  | Ok v -> Alcotest.(check string) "new content at old path" "fresh" v
  | Error e -> Alcotest.failf "replica /a: %s" (Vfs.Errno.to_string e)

let test_dfs_replica_driver_commits_o_dirty () =
  (* A flow written on node A reaches hardware through node B's driver
     via replicated (re-emitted) events — per-key commits, no sweep. *)
  let built = N.Topo_gen.linear ~hosts_per_switch:1 1 in
  let fs_a = Fs.create () and fs_b = Fs.create () in
  let yfs_a = Y.Yanc_fs.create fs_a in
  let yfs_b = Y.Yanc_fs.create fs_b in
  let _cluster =
    Dfs.Cluster.of_replicas ~consistency:Dfs.Consistency.Sequential
      [ fs_a; fs_b ]
  in
  let mgr = Driver.Manager.create ~yfs:yfs_b ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.run_control mgr ~now:0.;
  let reg = Telemetry.registry (Y.Yanc_fs.telemetry yfs_b) in
  let value n = Telemetry.Registry.value (Telemetry.Registry.counter reg n) in
  let sweeps0 = value "driver.commit.sweeps" in
  let adds0 = value "driver.commit.adds" in
  ok
    (Y.Yanc_fs.create_flow yfs_a ~cred ~switch:"sw1" ~name:"remote"
       (flow ~tp_dst:9 ~priority:5 ()));
  Driver.Manager.run_control mgr ~now:1.;
  Alcotest.(check int) "one add through the queue path" 1
    (value "driver.commit.adds" - adds0);
  Alcotest.(check int) "no sweep needed" 0 (value "driver.commit.sweeps" - sweeps0);
  let sw = Option.get (N.Network.switch built.net 1L) in
  let rules =
    match N.Sim_switch.table sw 0 with
    | Some t -> N.Flow_table.entries t
    | None -> []
  in
  Alcotest.(check int) "rule on hardware" 1 (List.length rules)

let () =
  Alcotest.run "commit"
    [ ( "coalescing",
        [ Alcotest.test_case "burst -> one flow_mod" `Quick
            test_burst_coalesces_to_one_flow_mod;
          Alcotest.test_case "delete/re-add converges" `Quick
            test_delete_readd_one_tick_converges;
          Alcotest.test_case "rename survives batch" `Quick
            test_rename_survives_batch;
          Alcotest.test_case "match takeover in one batch" `Quick
            test_match_takeover_in_one_batch;
          test_qcheck_convergence ] );
      ( "queue",
        [ Alcotest.test_case "mark/take/sweep semantics" `Quick
            test_queue_semantics ] );
      ( "errors",
        [ Alcotest.test_case "fs write failures counted" `Quick
            test_fs_errors_surface ] );
      ( "dfs",
        [ Alcotest.test_case "rewrites coalesce" `Quick
            test_dfs_coalesces_rewrites;
          Alcotest.test_case "structural boundary" `Quick
            test_dfs_structural_boundary_blocks_coalescing;
          Alcotest.test_case "replica driver O(dirty)" `Quick
            test_dfs_replica_driver_commits_o_dirty ] ) ]
