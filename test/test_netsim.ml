(* Tests for the data-plane simulator. *)

module N = Netsim
module OF = Openflow
module P = Packet

let m s = Option.get (P.Mac.of_string s)

let a s = Option.get (P.Ipv4_addr.of_string s)

let pfx s = Option.get (P.Ipv4_addr.Prefix.of_string s)

let frame ?(src = "02:00:00:00:00:01") ?(dst = "02:00:00:00:00:02")
    ?(dst_port = 80) () =
  P.Builder.tcp_syn ~src_mac:(m src) ~dst_mac:(m dst) ~src_ip:(a "10.0.0.1")
    ~dst_ip:(a "10.0.0.2") ~src_port:1234 ~dst_port

let headers ?dst_port ~in_port () = P.Headers.of_eth ~in_port (frame ?dst_port ())

(* --- flow table ------------------------------------------------------------- *)

let table ?strategy () = N.Flow_table.create ?strategy ()

let add ?(priority = 100) ?(idle = 0) ?(hard = 0) ?(notify = false) t of_match
    actions =
  N.Flow_table.add t ~now:0. ~of_match ~priority ~actions ~idle_timeout:idle
    ~hard_timeout:hard ~notify_removal:notify ()

let all_strategies =
  [ N.Flow_table.Linear, "linear";
    N.Flow_table.Exact_hash, "hash";
    N.Flow_table.Classifier, "classifier" ]

let test_table_priority () =
  let t = table () in
  add ~priority:10 t OF.Of_match.any [ OF.Action.Output (OF.Action.Physical 1) ];
  add ~priority:200 t
    { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 }
    [ OF.Action.Output (OF.Action.Physical 2) ];
  match N.Flow_table.lookup t ~now:0. (headers ~in_port:1 ()) with
  | Some e -> Alcotest.(check int) "high priority wins" 200 e.N.Flow_table.priority
  | None -> Alcotest.fail "no match"

let test_table_replace_same_rule () =
  let t = table () in
  add ~priority:5 t OF.Of_match.any [ OF.Action.Output (OF.Action.Physical 1) ];
  add ~priority:5 t OF.Of_match.any [ OF.Action.Output (OF.Action.Physical 9) ];
  Alcotest.(check int) "replaced, not duplicated" 1 (N.Flow_table.length t);
  match N.Flow_table.lookup t ~now:0. (headers ~in_port:1 ()) with
  | Some e ->
    Alcotest.(check bool) "new actions" true
      (e.N.Flow_table.actions = [ OF.Action.Output (OF.Action.Physical 9) ])
  | None -> Alcotest.fail "no match"

let test_table_delete_subsumption () =
  let t = table () in
  add t { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 } [];
  add t { OF.Of_match.any with OF.Of_match.tp_dst = Some 22 } [];
  add t { OF.Of_match.any with OF.Of_match.dl_type = Some 0x0806 } [];
  let removed =
    N.Flow_table.delete t
      ~of_match:{ OF.Of_match.any with OF.Of_match.tp_dst = Some 80 }
  in
  Alcotest.(check int) "removed one" 1 (List.length removed);
  Alcotest.(check int) "two left" 2 (N.Flow_table.length t);
  let removed_all = N.Flow_table.delete t ~of_match:OF.Of_match.any in
  Alcotest.(check int) "any deletes all" 2 (List.length removed_all);
  Alcotest.(check int) "empty" 0 (N.Flow_table.length t)

let test_table_modify () =
  let t = table () in
  let mm = { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 } in
  add t mm [ OF.Action.Output (OF.Action.Physical 1) ];
  let n = N.Flow_table.modify t ~of_match:mm ~actions:[] in
  Alcotest.(check int) "one updated" 1 n;
  Alcotest.(check int) "modify misses different match" 0
    (N.Flow_table.modify t ~of_match:OF.Of_match.any ~actions:[])

let test_table_timeouts () =
  let t = table () in
  add ~idle:5 t { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 } [];
  add ~hard:10 t { OF.Of_match.any with OF.Of_match.tp_dst = Some 22 } [];
  Alcotest.(check int) "nothing expired yet" 0
    (List.length (N.Flow_table.expire t ~now:4.));
  (match N.Flow_table.lookup t ~now:4. (headers ~in_port:1 ()) with
  | Some e -> N.Flow_table.hit e ~now:4. ~bytes:100
  | None -> Alcotest.fail "should match");
  Alcotest.(check int) "idle refreshed" 0
    (List.length (N.Flow_table.expire t ~now:8.));
  let at12 = N.Flow_table.expire t ~now:12. in
  Alcotest.(check int) "both die by 12" 2 (List.length at12)

let test_table_counters () =
  let t = table () in
  add t OF.Of_match.any [];
  match N.Flow_table.lookup t ~now:1. (headers ~in_port:1 ()) with
  | Some e ->
    N.Flow_table.hit e ~now:1. ~bytes:64;
    N.Flow_table.hit e ~now:2. ~bytes:36;
    Alcotest.(check int64) "packets" 2L e.N.Flow_table.packets;
    Alcotest.(check int64) "bytes" 100L e.N.Flow_table.bytes
  | None -> Alcotest.fail "no match"

(* Regression: entries past their timeout stop matching in [lookup]
   itself, before any [expire] sweep reaps them. *)
let test_table_expired_skipped_in_lookup () =
  List.iter
    (fun (strategy, sname) ->
      let name s = s ^ " (" ^ sname ^ ")" in
      let t = table ~strategy () in
      add ~priority:100 ~idle:5 t
        { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 }
        [ OF.Action.Output (OF.Action.Physical 1) ];
      add ~priority:10 t OF.Of_match.any [ OF.Action.Output (OF.Action.Physical 9) ];
      (* an exact-match rule with a hard timeout, to cover the Exact_hash
         fast path and the classifier's microflow cache *)
      add ~priority:300 ~hard:3 t
        (OF.Of_match.exact_of_headers (headers ~in_port:1 ()))
        [ OF.Action.Output (OF.Action.Physical 2) ];
      let prio_at now =
        Option.map
          (fun e -> e.N.Flow_table.priority)
          (N.Flow_table.lookup t ~now (headers ~in_port:1 ()))
      in
      Alcotest.(check (option int)) (name "all live") (Some 300) (prio_at 1.);
      Alcotest.(check (option int)) (name "hard-expired skipped") (Some 100)
        (prio_at 3.);
      Alcotest.(check (option int)) (name "idle-expired skipped") (Some 10)
        (prio_at 5.);
      (* the table was never swept; expire still reaps both *)
      Alcotest.(check int) (name "expire reaps both") 2
        (List.length (N.Flow_table.expire t ~now:5.)))
    all_strategies

let test_table_strict_delete () =
  List.iter
    (fun (strategy, sname) ->
      let name s = s ^ " (" ^ sname ^ ")" in
      let t = table ~strategy () in
      let tp80 = { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 } in
      let narrow = { tp80 with OF.Of_match.in_port = Some 1 } in
      add ~priority:100 t tp80 [];
      add ~priority:200 t tp80 [];
      add ~priority:100 t narrow [];
      Alcotest.(check int) (name "strict + wrong priority removes nothing") 0
        (List.length
           (N.Flow_table.delete ~strict:true ~priority:50 t ~of_match:tp80));
      (* strict removes only the exact match at the exact priority — not
         the subsumed narrower rule, not the other priority *)
      (match N.Flow_table.delete ~strict:true ~priority:200 t ~of_match:tp80 with
      | [ e ] ->
        Alcotest.(check int) (name "strict removed p200") 200
          e.N.Flow_table.priority
      | l -> Alcotest.failf "strict removed %d entries" (List.length l));
      Alcotest.(check int) (name "two left") 2 (N.Flow_table.length t);
      (* without a priority, strict still requires match equality *)
      (match N.Flow_table.delete ~strict:true t ~of_match:narrow with
      | [ e ] ->
        Alcotest.(check bool) (name "strict needs exact match") true
          (OF.Of_match.equal e.N.Flow_table.of_match narrow)
      | l -> Alcotest.failf "strict/no-priority removed %d" (List.length l));
      add ~priority:100 t narrow [];
      (* non-strict subsumption takes the narrower rule too *)
      Alcotest.(check int) (name "non-strict removes both") 2
        (List.length (N.Flow_table.delete t ~of_match:tp80)))
    all_strategies

let test_table_entries_order () =
  List.iter
    (fun (strategy, sname) ->
      let t = table ~strategy () in
      let rule i = { OF.Of_match.any with OF.Of_match.tp_dst = Some (1000 + i) } in
      List.iteri
        (fun i priority ->
          add ~priority t (rule i) [ OF.Action.Output (OF.Action.Physical i) ])
        [ 100; 100; 100; 200 ];
      let order () =
        List.map
          (fun e ->
            match e.N.Flow_table.actions with
            | [ OF.Action.Output (OF.Action.Physical i) ] -> i
            | _ -> -1)
          (N.Flow_table.entries t)
      in
      Alcotest.(check (list int))
        ("priority desc, ties in install order (" ^ sname ^ ")")
        [ 3; 0; 1; 2 ] (order ());
      (* replacing an entry re-enters it as the newest of its priority *)
      add ~priority:100 t (rule 0) [ OF.Action.Output (OF.Action.Physical 7) ];
      Alcotest.(check (list int))
        ("replace moves to back (" ^ sname ^ ")")
        [ 3; 1; 2; 7 ] (order ()))
    all_strategies

let test_table_timeout_edges () =
  let t = table () in
  let tp80 = { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 } in
  add ~hard:5 ~notify:true t tp80 [];
  (* hits do not extend a hard timeout *)
  (match N.Flow_table.lookup t ~now:4. (headers ~in_port:1 ()) with
  | Some e -> N.Flow_table.hit e ~now:4. ~bytes:64
  | None -> Alcotest.fail "live before hard timeout");
  Alcotest.(check bool) "hit does not extend hard timeout" true
    (N.Flow_table.lookup t ~now:5. (headers ~in_port:1 ()) = None);
  (match N.Flow_table.expire t ~now:5. with
  | [ e ] ->
    Alcotest.(check bool) "notify_removal preserved" true
      e.N.Flow_table.notify_removal;
    Alcotest.(check int64) "counters preserved" 1L e.N.Flow_table.packets
  | l -> Alcotest.failf "expected 1 expiry, got %d" (List.length l));
  (* idle timeouts measure from the last hit, not from install *)
  add ~idle:3 t tp80 [];
  (match N.Flow_table.lookup t ~now:2. (headers ~in_port:1 ()) with
  | Some e -> N.Flow_table.hit e ~now:2. ~bytes:64
  | None -> Alcotest.fail "live before idle timeout");
  Alcotest.(check int) "idle refreshed by hit" 0
    (List.length (N.Flow_table.expire t ~now:4.9));
  Alcotest.(check bool) "idle fires 3s after last hit" true
    (N.Flow_table.lookup t ~now:5. (headers ~in_port:1 ()) = None);
  Alcotest.(check int) "swept" 1 (List.length (N.Flow_table.expire t ~now:5.));
  (* zero means never *)
  add t tp80 [];
  Alcotest.(check int) "0 = no timeout" 0
    (List.length (N.Flow_table.expire t ~now:1.0e9))

(* --- classifier ------------------------------------------------------------------ *)

let test_classifier_microflow () =
  let t = table ~strategy:N.Flow_table.Classifier () in
  let cost = N.Flow_table.cost t in
  let tp80 = { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 } in
  add ~priority:10 t tp80 [ OF.Action.Output (OF.Action.Physical 1) ];
  let h = headers ~in_port:1 () in
  let prio () =
    Option.map (fun e -> e.N.Flow_table.priority) (N.Flow_table.lookup t ~now:0. h)
  in
  Alcotest.(check (option int)) "cold lookup" (Some 10) (prio ());
  Alcotest.(check int) "first lookup misses the cache" 1
    (N.Flow_table.Cost.micro_misses cost);
  Alcotest.(check (option int)) "warm lookup" (Some 10) (prio ());
  Alcotest.(check int) "second lookup hits the cache" 1
    (N.Flow_table.Cost.micro_hits cost);
  let st = N.Flow_table.Cost.subtables_visited cost in
  Alcotest.(check (option int)) "still cached" (Some 10) (prio ());
  Alcotest.(check int) "cache hit probes no subtable" st
    (N.Flow_table.Cost.subtables_visited cost);
  (* any mutation invalidates: a higher-priority add must win at once *)
  add ~priority:20 t
    { OF.Of_match.any with OF.Of_match.in_port = Some 1 }
    [ OF.Action.Output (OF.Action.Physical 2) ];
  Alcotest.(check bool) "add invalidates" true
    (N.Flow_table.Cost.invalidations cost >= 1);
  Alcotest.(check (option int)) "new winner after invalidation" (Some 20)
    (prio ());
  ignore
    (N.Flow_table.delete t
       ~of_match:{ OF.Of_match.any with OF.Of_match.in_port = Some 1 });
  Alcotest.(check (option int)) "old winner back after delete" (Some 10) (prio ())

(* Shared generators for the randomized equivalence suites. *)

let eq_macs = [| "02:00:00:00:00:01"; "02:00:00:00:00:02"; "02:00:00:00:00:03" |]

let eq_ports = [| 22; 80; 443; 8080 |]

let eq_prefixes = [| "10.0.0.0/8"; "10.0.0.0/24"; "10.0.0.2/32"; "10.0.1.0/24" |]

let random_eth rng =
  let ri n = Random.State.int rng n in
  let pick arr = arr.(ri (Array.length arr)) in
  frame ~src:(pick eq_macs) ~dst:(pick eq_macs) ~dst_port:(pick eq_ports) ()

let random_headers rng =
  P.Headers.of_eth ~in_port:(1 + Random.State.int rng 4) (random_eth rng)

let random_match rng =
  let ri n = Random.State.int rng n in
  let pick arr = arr.(ri (Array.length arr)) in
  if ri 6 = 0 then OF.Of_match.exact_of_headers (random_headers rng)
  else begin
    let mm = ref OF.Of_match.any in
    if ri 3 = 0 then mm := { !mm with OF.Of_match.in_port = Some (1 + ri 4) };
    if ri 3 = 0 then mm := { !mm with OF.Of_match.dl_src = Some (m (pick eq_macs)) };
    if ri 3 = 0 then mm := { !mm with OF.Of_match.dl_dst = Some (m (pick eq_macs)) };
    if ri 2 = 0 then begin
      mm := { !mm with OF.Of_match.dl_type = Some 0x0800 };
      if ri 2 = 0 then
        mm := { !mm with OF.Of_match.nw_dst = Some (pfx (pick eq_prefixes)) };
      if ri 3 = 0 then
        mm := { !mm with OF.Of_match.nw_src = Some (pfx (pick eq_prefixes)) };
      if ri 2 = 0 then begin
        mm := { !mm with OF.Of_match.nw_proto = Some 6 };
        if ri 2 = 0 then mm := { !mm with OF.Of_match.tp_dst = Some (pick eq_ports) }
      end
    end;
    !mm
  end

(* Randomized equivalence: the classifier against the linear reference
   over a mixed add/modify/delete/expire/lookup stream. [now] only moves
   forward, as in the simulator. Both tables see exactly the same calls,
   so their install-order counters stay aligned and winners can be
   compared by (priority, seq). *)
let test_classifier_equivalence () =
  let rng = Random.State.make [| 0xC1A55 |] in
  let ri n = Random.State.int rng n in
  let pick arr = arr.(ri (Array.length arr)) in
  let linear = table ~strategy:N.Flow_table.Linear () in
  let cls = table ~strategy:N.Flow_table.Classifier () in
  let both f =
    let a = f linear in
    let b = f cls in
    a, b
  in
  let now = ref 0. in
  let ident e = e.N.Flow_table.priority, e.N.Flow_table.seq in
  let idents l = List.sort compare (List.map ident l) in
  for step = 1 to 1500 do
    if ri 4 = 0 then now := !now +. float_of_int (ri 3);
    let ctx = Printf.sprintf "step %d" step in
    match ri 10 with
    | 0 | 1 | 2 ->
      let of_match = random_match rng in
      let priority = 10 * ri 8 in
      let actions = [ OF.Action.Output (OF.Action.Physical step) ] in
      let idle = pick [| 0; 0; 2; 5 |]
      and hard = pick [| 0; 0; 3; 7 |] in
      ignore
        (both (fun t ->
             N.Flow_table.add t ~now:!now ~of_match ~priority ~actions
               ~idle_timeout:idle ~hard_timeout:hard ()))
    | 3 ->
      let of_match = random_match rng in
      let actions = [ OF.Action.Output (OF.Action.Physical (10_000 + step)) ] in
      let na, nb = both (fun t -> N.Flow_table.modify t ~of_match ~actions) in
      Alcotest.(check int) (ctx ^ ": modify counts agree") na nb
    | 4 ->
      let of_match = random_match rng in
      let strict = ri 2 = 0 in
      let priority = if ri 2 = 0 then Some (10 * ri 8) else None in
      let ra, rb = both (fun t -> N.Flow_table.delete ~strict ?priority t ~of_match) in
      Alcotest.(check bool) (ctx ^ ": delete sets agree") true
        (idents ra = idents rb)
    | 5 ->
      let ra, rb = both (fun t -> N.Flow_table.expire t ~now:!now) in
      Alcotest.(check bool) (ctx ^ ": expiry sets agree") true
        (idents ra = idents rb)
    | _ -> (
      let h = random_headers rng in
      let ra, rb = both (fun t -> N.Flow_table.lookup t ~now:!now h) in
      match ra, rb with
      | None, None -> ()
      | Some ea, Some eb when ident ea = ident eb ->
        (* hit both winners so idle state stays in step on both sides *)
        if ri 2 = 0 then begin
          N.Flow_table.hit ea ~now:!now ~bytes:64;
          N.Flow_table.hit eb ~now:!now ~bytes:64
        end
      | _ ->
        let show = function
          | None -> "none"
          | Some e ->
            Printf.sprintf "p%d#%d" e.N.Flow_table.priority e.N.Flow_table.seq
        in
        Alcotest.failf "%s: winners disagree (linear %s, classifier %s)" ctx
          (show ra) (show rb))
  done;
  (* final state identical, in the deterministic [entries] order *)
  let ea, eb = both (fun t -> List.map ident (N.Flow_table.entries t)) in
  Alcotest.(check bool) "final tables identical" true (ea = eb);
  Alcotest.(check int) "lengths agree" (N.Flow_table.length linear)
    (N.Flow_table.length cls)

(* Whole-pipeline equivalence: two multi-table switches driven with the
   same flow mods and frames must produce identical effect streams,
   whichever datapath backs them. *)
let test_pipeline_equivalence () =
  let rng = Random.State.make [| 0xD47A9 |] in
  let ri n = Random.State.int rng n in
  let pick arr = arr.(ri (Array.length arr)) in
  let mk strategy =
    N.Sim_switch.create ~n_tables:2 ~strategy ~n_ports:4 ~dpid:5L ()
  in
  let lin = mk N.Flow_table.Linear in
  let cls = mk N.Flow_table.Classifier in
  let both f =
    let a = f lin in
    let b = f cls in
    a, b
  in
  let now = ref 0. in
  for step = 1 to 400 do
    if ri 3 = 0 then now := !now +. (0.5 *. float_of_int (ri 4));
    match ri 10 with
    | 0 | 1 ->
      let table_id = ri 2 in
      let of_match = random_match rng in
      let priority = 10 * ri 8 in
      let actions =
        match ri 4 with
        | 0 -> [] (* explicit drop *)
        | 1 -> [ OF.Action.Output OF.Action.Flood ]
        | 2 ->
          [ OF.Action.Set_vlan (1 + ri 100);
            OF.Action.Output (OF.Action.Physical (1 + ri 4)) ]
        | _ -> [ OF.Action.Output (OF.Action.Physical (1 + ri 4)) ]
      in
      let idle = pick [| 0; 0; 2 |]
      and hard = pick [| 0; 0; 4 |] in
      let ra, rb =
        both (fun s ->
            N.Sim_switch.flow_add s ~table_id ~now:!now ~of_match ~priority
              ~actions ~idle_timeout:idle ~hard_timeout:hard ())
      in
      Alcotest.(check bool) (Printf.sprintf "step %d: adds agree" step) true
        (ra = rb)
    | 2 ->
      let of_match = random_match rng in
      let strict = ri 2 = 0 in
      let ra, rb =
        both (fun s -> List.length (N.Sim_switch.flow_delete s ~strict ~of_match ()))
      in
      Alcotest.(check int) (Printf.sprintf "step %d: delete counts" step) ra rb
    | 3 ->
      let ra, rb =
        both (fun s -> List.length (N.Sim_switch.expire_flows s ~now:!now))
      in
      Alcotest.(check int) (Printf.sprintf "step %d: expiry counts" step) ra rb
    | _ ->
      let f = random_eth rng in
      let in_port = 1 + ri 4 in
      let ra, rb = both (fun s -> N.Sim_switch.receive_frame s ~now:!now ~in_port f) in
      if ra <> rb then Alcotest.failf "step %d: pipelines diverge" step
  done;
  let ta, tb =
    both (fun s ->
        List.concat_map
          (fun i ->
            match N.Sim_switch.table s i with
            | Some t ->
              List.map
                (fun e -> i, e.N.Flow_table.priority, e.N.Flow_table.seq)
                (N.Flow_table.entries t)
            | None -> [])
          [ 0; 1 ])
  in
  Alcotest.(check bool) "final pipelines identical" true (ta = tb)

let prop_strategies_agree =
  QCheck.Test.make ~name:"lookup strategies agree" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 4)
           (list_size (int_range 0 12) (pair (int_range 1 4) (int_range 0 3)))))
    (fun (port, rules) ->
      let linear = table ~strategy:N.Flow_table.Linear () in
      let hashed = table ~strategy:N.Flow_table.Exact_hash () in
      let cls = table ~strategy:N.Flow_table.Classifier () in
      List.iteri
        (fun i (in_port, kind) ->
          let of_match =
            match kind with
            | 0 -> OF.Of_match.any
            | 1 -> { OF.Of_match.any with OF.Of_match.in_port = Some in_port }
            | 2 -> { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 }
            | _ -> OF.Of_match.exact_of_headers (headers ~in_port ())
          in
          let actions = [ OF.Action.Output (OF.Action.Physical i) ] in
          add ~priority:(10 * i) linear of_match actions;
          add ~priority:(10 * i) hashed of_match actions;
          add ~priority:(10 * i) cls of_match actions)
        rules;
      let h = headers ~in_port:port () in
      let result t =
        Option.map
          (fun e -> e.N.Flow_table.priority, e.N.Flow_table.actions)
          (N.Flow_table.lookup t ~now:0. h)
      in
      result linear = result hashed && result linear = result cls)

(* --- switch ---------------------------------------------------------------------- *)

let sw ?(n_ports = 4) () = N.Sim_switch.create ~n_ports ~dpid:7L ()

let flow s ?(priority = 100) of_match actions =
  match N.Sim_switch.flow_add s ~now:0. ~of_match ~priority ~actions () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_switch_forward () =
  let s = sw () in
  flow s OF.Of_match.any [ OF.Action.Output (OF.Action.Physical 2) ];
  match N.Sim_switch.receive_frame s ~now:0. ~in_port:1 (frame ()) with
  | [ N.Sim_switch.Transmit { out_port = 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected forward to port 2"

let test_switch_miss_packet_in () =
  let s = sw () in
  match N.Sim_switch.receive_frame s ~now:0. ~in_port:3 (frame ()) with
  | [ N.Sim_switch.Deliver_to_controller pi ] ->
    Alcotest.(check int) "in_port" 3 pi.in_port;
    Alcotest.(check bool) "reason miss" true (pi.reason = OF.Of_types.No_match)
  | _ -> Alcotest.fail "expected packet-in"

let test_switch_buffering () =
  let s = N.Sim_switch.create ~miss_send_len:32 ~dpid:7L () in
  let big =
    P.Eth.make ~src:(m "02:00:00:00:00:01") ~dst:(m "02:00:00:00:00:02")
      (P.Eth.Raw (0x9999, String.make 200 'x'))
  in
  match N.Sim_switch.receive_frame s ~now:0. ~in_port:1 big with
  | [ N.Sim_switch.Deliver_to_controller pi ] -> (
    Alcotest.(check int) "truncated" 32 (String.length pi.data);
    Alcotest.(check bool) "buffered" true (pi.buffer_id <> None);
    Alcotest.(check int) "total_len" (P.Eth.size big) pi.total_len;
    match
      N.Sim_switch.inject s ~now:0. ~buffer_id:pi.buffer_id ~data:""
        ~in_port:None ~actions:[ OF.Action.Output (OF.Action.Physical 4) ]
    with
    | [ N.Sim_switch.Transmit { out_port = 4; frame = out } ] ->
      Alcotest.(check bool) "full frame released" true (P.Eth.equal big out);
      Alcotest.(check bool) "buffer consumed" true
        (N.Sim_switch.pop_buffer s (Option.get pi.buffer_id) = None)
    | _ -> Alcotest.fail "packet-out failed")
  | _ -> Alcotest.fail "expected buffered packet-in"

let test_switch_flood () =
  let s = sw ~n_ports:4 () in
  flow s OF.Of_match.any [ OF.Action.Output OF.Action.Flood ];
  let outs =
    N.Sim_switch.receive_frame s ~now:0. ~in_port:2 (frame ())
    |> List.filter_map (function
         | N.Sim_switch.Transmit { out_port; _ } -> Some out_port
         | _ -> None)
  in
  Alcotest.(check (list int)) "all but ingress" [ 1; 3; 4 ] outs;
  flow s ~priority:200 OF.Of_match.any [ OF.Action.Output OF.Action.All ];
  let outs_all =
    N.Sim_switch.receive_frame s ~now:0. ~in_port:2 (frame ())
    |> List.filter_map (function
         | N.Sim_switch.Transmit { out_port; _ } -> Some out_port
         | _ -> None)
  in
  Alcotest.(check (list int)) "all ports" [ 1; 2; 3; 4 ] outs_all

let test_switch_port_down_drops () =
  let s = sw () in
  flow s OF.Of_match.any [ OF.Action.Output (OF.Action.Physical 2) ];
  N.Sim_switch.set_admin_down s 2 true;
  Alcotest.(check int) "tx suppressed" 0
    (List.length (N.Sim_switch.receive_frame s ~now:0. ~in_port:1 (frame ())));
  N.Sim_switch.set_admin_down s 1 true;
  Alcotest.(check int) "rx dropped" 0
    (List.length (N.Sim_switch.receive_frame s ~now:0. ~in_port:1 (frame ())));
  match N.Sim_switch.port_stats s (Some 1) with
  | [ st ] ->
    Alcotest.(check int64) "rx_dropped counted" 1L
      st.OF.Of_types.Port_stats.rx_dropped
  | _ -> Alcotest.fail "no stats"

let test_switch_rewrite_then_output () =
  let s = sw () in
  flow s OF.Of_match.any
    [ OF.Action.Set_dl_dst (m "02:ff:ff:ff:ff:ff");
      OF.Action.Output (OF.Action.Physical 2);
      OF.Action.Set_dl_dst (m "02:ee:ee:ee:ee:ee");
      OF.Action.Output (OF.Action.Physical 3) ];
  match N.Sim_switch.receive_frame s ~now:0. ~in_port:1 (frame ()) with
  | [ N.Sim_switch.Transmit t1; N.Sim_switch.Transmit t2 ] ->
    Alcotest.(check string) "first copy first rewrite" "02:ff:ff:ff:ff:ff"
      (P.Mac.to_string t1.frame.P.Eth.dst);
    Alcotest.(check string) "second copy second rewrite" "02:ee:ee:ee:ee:ee"
      (P.Mac.to_string t2.frame.P.Eth.dst)
  | _ -> Alcotest.fail "expected two transmissions"

let test_switch_explicit_drop () =
  let s = sw () in
  flow s OF.Of_match.any [];
  Alcotest.(check int) "dropped silently" 0
    (List.length (N.Sim_switch.receive_frame s ~now:0. ~in_port:1 (frame ())))

let test_switch_queues () =
  let s = sw () in
  (* 1 Mbit/s queue: ~125000 bytes/s budget, 1s burst *)
  N.Sim_switch.add_queue s ~port:2 ~queue_id:1 ~rate_mbps:1;
  flow s OF.Of_match.any [ OF.Action.Enqueue { port = 2; queue_id = 1 } ];
  let big =
    P.Eth.make ~src:(m "02:00:00:00:00:01") ~dst:(m "02:00:00:00:00:02")
      (P.Eth.Raw (0x9999, String.make 60_000 'x'))
  in
  (* burst capacity admits ~2 of these 60 KB frames at t=0, drops the rest *)
  let sent = ref 0 in
  for _ = 1 to 5 do
    match N.Sim_switch.receive_frame s ~now:0. ~in_port:1 big with
    | [ N.Sim_switch.Transmit { out_port = 2; _ } ] -> incr sent
    | [] -> ()
    | _ -> Alcotest.fail "unexpected effect"
  done;
  Alcotest.(check int) "burst admits 2" 2 !sent;
  (match N.Sim_switch.queue_stats s ~port:2 with
  | [ q ] ->
    Alcotest.(check int64) "tx counted" 2L q.N.Sim_switch.tx_packets;
    Alcotest.(check int64) "drops counted" 3L q.N.Sim_switch.dropped
  | _ -> Alcotest.fail "queue stats missing");
  (* a second later the bucket refills *)
  (match N.Sim_switch.receive_frame s ~now:1.0 ~in_port:1 big with
  | [ N.Sim_switch.Transmit _ ] -> ()
  | _ -> Alcotest.fail "bucket did not refill");
  (* an unconfigured queue degrades to a plain output *)
  flow s ~priority:500 OF.Of_match.any
    [ OF.Action.Enqueue { port = 3; queue_id = 9 } ];
  match N.Sim_switch.receive_frame s ~now:2. ~in_port:1 big with
  | [ N.Sim_switch.Transmit { out_port = 3; _ } ] -> ()
  | _ -> Alcotest.fail "missing queue should degrade to output"

(* Regression: a resync diff must not count entries that are past their
   timeout but not yet reaped by an [expire] sweep. [flow_stats ~now]
   applies lookup-side expiry; the raw (no [now]) report and [entries]
   still hold the corpse for the sweep to find. *)
let test_switch_flow_stats_lookup_expiry () =
  let s = sw () in
  let tp80 = { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 } in
  (match
     N.Sim_switch.flow_add s ~now:0. ~of_match:tp80 ~priority:100 ~actions:[]
       ~hard_timeout:3 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  flow s ~priority:10 OF.Of_match.any [];
  let stats ?now () =
    List.length (N.Sim_switch.flow_stats s ?now ~of_match:OF.Of_match.any ())
  in
  Alcotest.(check int) "both live at 1s" 2 (stats ~now:1. ());
  (* past the hard timeout, with no expire sweep in between *)
  Alcotest.(check int) "expired excluded with now" 1 (stats ~now:4. ());
  Alcotest.(check int) "raw report still holds the corpse" 2 (stats ());
  (match N.Sim_switch.table s 0 with
  | None -> Alcotest.fail "no table"
  | Some t ->
    Alcotest.(check int) "entries keeps it too" 2
      (List.length (N.Flow_table.entries t));
    Alcotest.(check int) "live_entries drops it" 1
      (List.length (N.Flow_table.live_entries t ~now:4.));
    List.iter
      (fun e ->
        Alcotest.(check bool)
          (Printf.sprintf "is_expired flags p%d correctly" e.N.Flow_table.priority)
          (e.N.Flow_table.priority = 100)
          (N.Flow_table.is_expired e ~now:4.))
      (N.Flow_table.entries t));
  Alcotest.(check int) "expire still reaps the corpse" 1
    (List.length (N.Sim_switch.expire_flows s ~now:4.))

(* Same property over the wire: the agent's stats reply reflects
   lookup-side expiry even when the request beats the expiry sweep. *)
let test_agent_stats_exclude_expired () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:2 ~dpid:1L () in
  N.Network.add_switch net s;
  let sw_end, ctl_end = N.Control_channel.create () in
  let agent =
    N.Of_agent.create ~version:N.Of_agent.V10 ~switch:s ~endpoint:sw_end
      ~network:net ()
  in
  let fm ~priority ~hard =
    OF.Of10.Flow_mod
      { of_match = { OF.Of_match.any with OF.Of_match.tp_dst = Some (priority + 1) };
        cookie = 0L; command = OF.Of10.Add; idle_timeout = 0;
        hard_timeout = hard; priority; buffer_id = None;
        notify_removal = false; actions = [] }
  in
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:1l (fm ~priority:9 ~hard:2));
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:2l (fm ~priority:5 ~hard:0));
  N.Of_agent.step agent ~now:0.;
  ignore (N.Control_channel.recv_all ctl_end);
  N.Control_channel.send ctl_end
    (OF.Of10.encode ~xid:3l
       (OF.Of10.Stats_request (OF.Of10.Flow_stats_req OF.Of_match.any)));
  (* now:3 is past p9's hard timeout; the same step serves the reply *)
  N.Of_agent.step agent ~now:3.;
  let reported =
    List.concat_map
      (fun raw ->
        match OF.Of10.decode raw with
        | Ok (3l, OF.Of10.Stats_reply (OF.Of10.Flow_stats_rep rows)) ->
          List.map (fun (r : OF.Of_types.Flow_stats.t) -> r.priority) rows
        | _ -> [])
      (N.Control_channel.recv_all ctl_end)
  in
  Alcotest.(check (list int)) "only the live flow reported" [ 5 ] reported

let test_switch_port_change_notify () =
  let s = sw () in
  let events = ref [] in
  N.Sim_switch.on_port_change s (fun reason info ->
      events := (reason, info.OF.Of_types.Port_info.port_no) :: !events);
  N.Sim_switch.add_port s 9;
  N.Sim_switch.set_admin_down s 9 true;
  N.Sim_switch.remove_port s 9;
  Alcotest.(check bool) "add seen" true (List.mem (OF.Of_types.Port_add, 9) !events);
  Alcotest.(check bool) "modify seen" true
    (List.mem (OF.Of_types.Port_modify, 9) !events);
  Alcotest.(check bool) "delete seen" true
    (List.mem (OF.Of_types.Port_delete, 9) !events)

(* --- host ------------------------------------------------------------------------- *)

let test_host_arp_reply () =
  let h =
    N.Sim_host.create ~ip:(a "10.0.0.2") ~name:"h" ~mac:(m "02:00:00:00:00:02") ()
  in
  let req =
    P.Builder.arp_request ~src_mac:(m "02:00:00:00:00:01") ~src_ip:(a "10.0.0.1")
      ~target:(a "10.0.0.2")
  in
  (match N.Sim_host.receive h ~now:0. req with
  | [ reply ] -> (
    match reply.P.Eth.payload with
    | P.Eth.Arp arp -> Alcotest.(check bool) "is reply" true (arp.P.Arp.op = P.Arp.Reply)
    | _ -> Alcotest.fail "not arp")
  | _ -> Alcotest.fail "no reply");
  let other =
    P.Builder.arp_request ~src_mac:(m "02:00:00:00:00:01") ~src_ip:(a "10.0.0.1")
      ~target:(a "10.0.0.99")
  in
  Alcotest.(check int) "ignores others" 0
    (List.length (N.Sim_host.receive h ~now:0. other))

let test_host_ping_flow () =
  let h1 =
    N.Sim_host.create ~ip:(a "10.0.0.1") ~name:"h1" ~mac:(m "02:00:00:00:00:01") ()
  in
  let h2 =
    N.Sim_host.create ~ip:(a "10.0.0.2") ~name:"h2" ~mac:(m "02:00:00:00:00:02") ()
  in
  let out1 = N.Sim_host.ping h1 ~now:0. ~dst:(a "10.0.0.2") ~seq:1 in
  (match out1 with
  | [ { P.Eth.payload = P.Eth.Arp _; _ } ] -> ()
  | _ -> Alcotest.fail "expected arp probe");
  let reply = List.concat_map (N.Sim_host.receive h2 ~now:0.001) out1 in
  let echo = List.concat_map (N.Sim_host.receive h1 ~now:0.002) reply in
  (match echo with
  | [ { P.Eth.payload = P.Eth.Ipv4 { P.Ipv4.payload = P.Ipv4.Icmp _; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected icmp after arp resolution");
  let pong = List.concat_map (N.Sim_host.receive h2 ~now:0.003) echo in
  ignore (List.concat_map (N.Sim_host.receive h1 ~now:0.004) pong);
  match N.Sim_host.ping_results h1 with
  | [ r ] ->
    Alcotest.(check int) "seq" 1 r.N.Sim_host.seq;
    Alcotest.(check bool) "rtt positive" true (r.N.Sim_host.rtt > 0.)
  | _ -> Alcotest.fail "ping not recorded"

let test_host_tcp_handshake () =
  let h1 =
    N.Sim_host.create ~ip:(a "10.0.0.1") ~name:"h1" ~mac:(m "02:00:00:00:00:01") ()
  in
  let h2 =
    N.Sim_host.create ~ip:(a "10.0.0.2") ~name:"h2" ~mac:(m "02:00:00:00:00:02") ()
  in
  N.Sim_host.listen h2 22;
  let syn =
    N.Sim_host.tcp_connect h1 ~dst_ip:(a "10.0.0.2")
      ~dst_mac:(m "02:00:00:00:00:02") ~src_port:5000 ~dst_port:22
  in
  let synack = N.Sim_host.receive h2 ~now:0. syn in
  Alcotest.(check int) "synack sent" 1 (List.length synack);
  ignore (List.concat_map (N.Sim_host.receive h1 ~now:0.) synack);
  Alcotest.(check bool) "responder established" true
    (List.mem (22, 5000) (N.Sim_host.tcp_established h2));
  Alcotest.(check bool) "initiator established" true
    (List.mem (5000, 22) (N.Sim_host.tcp_established h1));
  let syn2 =
    N.Sim_host.tcp_connect h1 ~dst_ip:(a "10.0.0.2")
      ~dst_mac:(m "02:00:00:00:00:02") ~src_port:5001 ~dst_port:23
  in
  Alcotest.(check int) "closed port silent" 0
    (List.length (N.Sim_host.receive h2 ~now:0. syn2))

(* --- network ---------------------------------------------------------------------- *)

let test_network_delivery () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:2 ~dpid:1L () in
  N.Network.add_switch net s;
  let h1 =
    N.Sim_host.create ~ip:(a "10.0.0.1") ~name:"h1" ~mac:(m "02:00:00:00:00:01") ()
  in
  let h2 =
    N.Sim_host.create ~ip:(a "10.0.0.2") ~name:"h2" ~mac:(m "02:00:00:00:00:02") ()
  in
  N.Network.add_host net h1;
  N.Network.add_host net h2;
  N.Network.link net (N.Network.Sw (1L, 1)) (N.Network.Hst "h1");
  N.Network.link net (N.Network.Sw (1L, 2)) (N.Network.Hst "h2");
  (match
     N.Sim_switch.flow_add s ~now:0. ~of_match:OF.Of_match.any ~priority:1
       ~actions:[ OF.Action.Output OF.Action.Flood ] ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  N.Network.send_from_host net "h1"
    (N.Sim_host.ping h1 ~now:0. ~dst:(a "10.0.0.2") ~seq:9);
  N.Network.run net;
  Alcotest.(check int) "ping completed" 1 (List.length (N.Sim_host.ping_results h1));
  Alcotest.(check bool) "time advanced" true (N.Network.now net > 0.)

let test_network_link_failure () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:2 ~dpid:1L () in
  N.Network.add_switch net s;
  let h1 =
    N.Sim_host.create ~ip:(a "10.0.0.1") ~name:"h1" ~mac:(m "02:00:00:00:00:01") ()
  in
  N.Network.add_host net h1;
  N.Network.link net (N.Network.Sw (1L, 1)) (N.Network.Hst "h1");
  N.Network.set_link_up net (N.Network.Sw (1L, 1)) false;
  (match N.Sim_switch.port s 1 with
  | Some info ->
    Alcotest.(check bool) "carrier down" true info.OF.Of_types.Port_info.link_down
  | None -> Alcotest.fail "port missing");
  N.Network.send_from_host net "h1" [ frame () ];
  N.Network.run net;
  let _, dropped = N.Network.stats net in
  Alcotest.(check int) "frame dropped on dead link" 1 dropped;
  N.Network.set_link_up net (N.Network.Sw (1L, 1)) true;
  match N.Sim_switch.port s 1 with
  | Some info ->
    Alcotest.(check bool) "carrier restored" false info.OF.Of_types.Port_info.link_down
  | None -> Alcotest.fail "port missing"

let test_network_peer_of () =
  let built = N.Topo_gen.linear 2 in
  let links = N.Network.link_endpoints built.net in
  Alcotest.(check int) "3 links" 3 (List.length links);
  match N.Network.peer_of built.net (N.Network.Sw (1L, 1)) with
  | Some (N.Network.Sw (2L, 1)) -> ()
  | _ -> Alcotest.fail "inter-switch wiring wrong"

(* --- topology generators ------------------------------------------------------------ *)

let count_switches (built : N.Topo_gen.built) = List.length built.dpids

let count_hosts (built : N.Topo_gen.built) = List.length built.host_names

let test_topo_shapes () =
  let lin = N.Topo_gen.linear ~hosts_per_switch:2 3 in
  Alcotest.(check int) "linear switches" 3 (count_switches lin);
  Alcotest.(check int) "linear hosts" 6 (count_hosts lin);
  let ring = N.Topo_gen.ring 4 in
  Alcotest.(check int) "ring switches" 4 (count_switches ring);
  Alcotest.(check int) "ring links" (4 + 4)
    (List.length (N.Network.link_endpoints ring.net));
  let star = N.Topo_gen.star ~leaves:5 () in
  Alcotest.(check int) "star switches" 6 (count_switches star);
  let tree = N.Topo_gen.tree ~fanout:2 ~depth:3 () in
  Alcotest.(check int) "tree switches" 7 (count_switches tree);
  Alcotest.(check int) "tree hosts at leaves" 4 (count_hosts tree)

let test_topo_fat_tree () =
  let ft = N.Topo_gen.fat_tree ~k:4 () in
  Alcotest.(check int) "fat-tree switches" 20 (count_switches ft);
  Alcotest.(check int) "fat-tree hosts" 16 (count_hosts ft);
  (* exact counts at the literature sizes: 5k²/4 switches, k³/4 hosts *)
  List.iter
    (fun k ->
      let ft = N.Topo_gen.fat_tree ~k () in
      Alcotest.(check int)
        (Printf.sprintf "k=%d switches" k)
        (5 * k * k / 4) (count_switches ft);
      Alcotest.(check int)
        (Printf.sprintf "k=%d hosts" k)
        (k * k * k / 4) (count_hosts ft);
      (* edge-agg k³/4 + agg-core k³/4 + host links k³/4 *)
      Alcotest.(check int)
        (Printf.sprintf "k=%d links" k)
        (3 * k * k * k / 4)
        (List.length (N.Network.link_endpoints ft.N.Topo_gen.net)))
    [ 4; 8; 16 ];
  (* host density is a knob: hosts_per_edge overrides the k/2 default *)
  let dense = N.Topo_gen.fat_tree ~k:4 ~hosts_per_edge:3 () in
  Alcotest.(check int) "hosts_per_edge switches" 20 (count_switches dense);
  Alcotest.(check int) "hosts_per_edge hosts" 24 (count_hosts dense);
  let bare = N.Topo_gen.fat_tree ~k:4 ~hosts_per_edge:0 () in
  Alcotest.(check int) "hostless fabric" 0 (count_hosts bare);
  (* invalid k raises Invalid_argument naming the offending value *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "k=%d rejected" k)
        true
        (try
           ignore (N.Topo_gen.fat_tree ~k ());
           false
         with Invalid_argument msg ->
           let needle = Printf.sprintf "(got %d)" k in
           let ll = String.length needle in
           let found = ref false in
           for i = 0 to String.length msg - ll do
             if String.sub msg i ll = needle then found := true
           done;
           !found))
    [ 3; 0; -2 ]

let test_topo_clos () =
  let c = N.Topo_gen.clos ~spines:4 ~leaves:8 ~hosts_per_leaf:2 () in
  Alcotest.(check int) "clos switches" 12 (count_switches c);
  Alcotest.(check int) "clos hosts" 16 (count_hosts c);
  Alcotest.(check int) "clos links" ((4 * 8) + 16)
    (List.length (N.Network.link_endpoints c.N.Topo_gen.net));
  Alcotest.(check bool) "spines must be positive" true
    (try
       ignore (N.Topo_gen.clos ~spines:0 ());
       false
     with Invalid_argument _ -> true)

(* --- object pool ----------------------------------------------------------- *)

let test_pool_reuse () =
  let made = ref 0 in
  let pool =
    N.Pool.create ~capacity:4
      ~make:(fun () -> incr made; ref 0)
      ()
  in
  let a = N.Pool.acquire pool in
  let b = N.Pool.acquire pool in
  Alcotest.(check int) "dry free list allocates" 2 !made;
  Alcotest.(check int) "in_use" 2 (N.Pool.in_use pool);
  Alcotest.(check int) "free" 0 (N.Pool.free pool);
  N.Pool.release pool a;
  N.Pool.release pool b;
  Alcotest.(check int) "released to free list" 2 (N.Pool.free pool);
  let c = N.Pool.acquire pool in
  Alcotest.(check int) "reacquire allocates nothing" 2 !made;
  Alcotest.(check int) "reused counted" 1 (N.Pool.reused pool);
  Alcotest.(check bool) "recycled object is one of ours" true (c == a || c == b);
  Alcotest.(check int) "allocated is lifetime makes" 2 (N.Pool.allocated pool)

let test_pool_capacity_bounds () =
  let pool = N.Pool.create ~capacity:1 ~make:(fun () -> ref 0) () in
  let xs = List.init 3 (fun _ -> N.Pool.acquire pool) in
  List.iter (N.Pool.release pool) xs;
  Alcotest.(check int) "free list capped at capacity" 1 (N.Pool.free pool);
  ignore (N.Pool.acquire pool);
  ignore (N.Pool.acquire pool);
  Alcotest.(check int) "one reuse then a fresh make" 4 (N.Pool.allocated pool);
  Alcotest.(check int) "reused" 1 (N.Pool.reused pool)

let test_topo_random_connected () =
  let r = N.Topo_gen.random ~seed:7 ~extra_links:3 8 in
  Alcotest.(check int) "switches" 8 (count_switches r);
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (ea, eb) ->
      match ea, eb with
      | N.Network.Sw (x, _), N.Network.Sw (y, _) ->
        Hashtbl.add adj x y;
        Hashtbl.add adj y x
      | _ -> ())
    (N.Network.link_endpoints r.net);
  let visited = Hashtbl.create 16 in
  let rec dfs v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.replace visited v ();
      List.iter dfs (Hashtbl.find_all adj v)
    end
  in
  dfs 1L;
  Alcotest.(check int) "connected" 8 (Hashtbl.length visited);
  let r2 = N.Topo_gen.random ~seed:7 ~extra_links:3 8 in
  Alcotest.(check int) "same link count for same seed"
    (List.length (N.Network.link_endpoints r.net))
    (List.length (N.Network.link_endpoints r2.net))

(* --- control channel & agent --------------------------------------------------------- *)

let test_control_channel () =
  let sw_end, ctl_end = N.Control_channel.create () in
  N.Control_channel.send ctl_end "hello";
  N.Control_channel.send ctl_end "world";
  Alcotest.(check int) "pending" 2 (N.Control_channel.pending sw_end);
  Alcotest.(check (list string)) "fifo" [ "hello"; "world" ]
    (N.Control_channel.recv_all sw_end);
  Alcotest.(check bool) "empty now" true (N.Control_channel.recv sw_end = None);
  Alcotest.(check int) "bytes counted" 10 (N.Control_channel.bytes_sent ctl_end)

let test_agent_handshake_v10 () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:3 ~dpid:42L () in
  N.Network.add_switch net s;
  let sw_end, ctl_end = N.Control_channel.create () in
  let agent =
    N.Of_agent.create ~version:N.Of_agent.V10 ~switch:s ~endpoint:sw_end
      ~network:net ()
  in
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:1l OF.Of10.Hello);
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:2l OF.Of10.Features_request);
  N.Of_agent.step agent ~now:0.;
  let replies =
    List.filter_map
      (fun raw -> Result.to_option (OF.Of10.decode raw))
      (N.Control_channel.recv_all ctl_end)
  in
  match replies with
  | [ (_, OF.Of10.Hello); (xid, OF.Of10.Features_reply f) ] ->
    Alcotest.(check int32) "xid echoed" 2l xid;
    Alcotest.(check int64) "dpid" 42L f.datapath_id;
    Alcotest.(check int) "ports" 3 (List.length f.ports)
  | _ -> Alcotest.failf "unexpected replies (%d)" (List.length replies)

let test_agent_flow_mod_and_echo () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:2 ~dpid:1L () in
  N.Network.add_switch net s;
  let sw_end, ctl_end = N.Control_channel.create () in
  let agent =
    N.Of_agent.create ~version:N.Of_agent.V10 ~switch:s ~endpoint:sw_end
      ~network:net ()
  in
  let fm =
    OF.Of10.Flow_mod
      { of_match = OF.Of_match.any; cookie = 0L; command = OF.Of10.Add;
        idle_timeout = 0; hard_timeout = 0; priority = 9; buffer_id = None;
        notify_removal = false;
        actions = [ OF.Action.Output (OF.Action.Physical 2) ] }
  in
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:5l fm);
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:6l (OF.Of10.Echo_request "x"));
  N.Of_agent.step agent ~now:0.;
  Alcotest.(check int) "flow installed" 1
    (match N.Sim_switch.table s 0 with
    | Some t -> N.Flow_table.length t
    | None -> -1);
  let echoed =
    List.exists
      (fun raw ->
        match OF.Of10.decode raw with
        | Ok (6l, OF.Of10.Echo_reply "x") -> true
        | _ -> false)
      (N.Control_channel.recv_all ctl_end)
  in
  Alcotest.(check bool) "echo replied" true echoed

let test_agent_v13_port_desc () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:2 ~dpid:3L () in
  N.Network.add_switch net s;
  let sw_end, ctl_end = N.Control_channel.create () in
  let agent =
    N.Of_agent.create ~version:N.Of_agent.V13 ~switch:s ~endpoint:sw_end
      ~network:net ()
  in
  N.Control_channel.send ctl_end
    (OF.Of13.encode ~xid:1l (OF.Of13.Multipart_request OF.Of13.Port_desc_req));
  N.Of_agent.step agent ~now:0.;
  let got_ports =
    List.exists
      (fun raw ->
        match OF.Of13.decode raw with
        | Ok (_, OF.Of13.Multipart_reply (OF.Of13.Port_desc_rep ports)) ->
          List.length ports = 2
        | _ -> false)
      (N.Control_channel.recv_all ctl_end)
  in
  Alcotest.(check bool) "port desc served" true got_ports

let test_agent_delete_strict () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:2 ~dpid:1L () in
  N.Network.add_switch net s;
  let sw_end, ctl_end = N.Control_channel.create () in
  let agent =
    N.Of_agent.create ~version:N.Of_agent.V10 ~switch:s ~endpoint:sw_end
      ~network:net ()
  in
  let fm ~priority command =
    OF.Of10.Flow_mod
      { of_match = { OF.Of_match.any with OF.Of_match.tp_dst = Some 80 };
        cookie = 0L; command; idle_timeout = 0; hard_timeout = 0; priority;
        buffer_id = None; notify_removal = false; actions = [] }
  in
  let len () =
    match N.Sim_switch.table s 0 with
    | Some t -> N.Flow_table.length t
    | None -> -1
  in
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:1l (fm ~priority:9 OF.Of10.Add));
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:2l (fm ~priority:10 OF.Of10.Add));
  N.Of_agent.step agent ~now:0.;
  Alcotest.(check int) "two installed" 2 (len ());
  (* DELETE_STRICT takes only the entry at the exact priority *)
  N.Control_channel.send ctl_end
    (OF.Of10.encode ~xid:3l (fm ~priority:10 OF.Of10.Delete_strict));
  N.Of_agent.step agent ~now:0.;
  Alcotest.(check int) "strict removed one" 1 (len ());
  (match N.Sim_switch.table s 0 with
  | Some t -> (
    match N.Flow_table.entries t with
    | [ e ] -> Alcotest.(check int) "survivor is p9" 9 e.N.Flow_table.priority
    | _ -> Alcotest.fail "expected one entry")
  | None -> Alcotest.fail "no table");
  (* plain DELETE ignores priority and sweeps the rest *)
  N.Control_channel.send ctl_end
    (OF.Of10.encode ~xid:4l (fm ~priority:0 OF.Of10.Delete));
  N.Of_agent.step agent ~now:0.;
  Alcotest.(check int) "non-strict removed rest" 0 (len ())

let test_agent_flow_removed_notification () =
  let net = N.Network.create () in
  let s = N.Sim_switch.create ~n_ports:2 ~dpid:1L () in
  N.Network.add_switch net s;
  let sw_end, ctl_end = N.Control_channel.create () in
  let agent =
    N.Of_agent.create ~version:N.Of_agent.V10 ~switch:s ~endpoint:sw_end
      ~network:net ()
  in
  let fm =
    OF.Of10.Flow_mod
      { of_match = OF.Of_match.any; cookie = 77L; command = OF.Of10.Add;
        idle_timeout = 0; hard_timeout = 2; priority = 9; buffer_id = None;
        notify_removal = true; actions = [] }
  in
  N.Control_channel.send ctl_end (OF.Of10.encode ~xid:1l fm);
  N.Of_agent.step agent ~now:0.;
  ignore (N.Control_channel.recv_all ctl_end);
  (* Before the hard timeout: nothing. *)
  N.Of_agent.step agent ~now:1.;
  Alcotest.(check int) "quiet before timeout" 0 (N.Control_channel.pending ctl_end);
  N.Of_agent.step agent ~now:3.;
  let removed =
    List.exists
      (fun raw ->
        match OF.Of10.decode raw with
        | Ok (_, OF.Of10.Flow_removed fr) ->
          fr.cookie = 77L && fr.reason = OF.Of_types.Hard_timeout_hit
        | _ -> false)
      (N.Control_channel.recv_all ctl_end)
  in
  Alcotest.(check bool) "flow_removed delivered" true removed

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_strategies_agree ]

let () =
  Alcotest.run "netsim"
    [ ( "flow-table",
        [ Alcotest.test_case "priority" `Quick test_table_priority;
          Alcotest.test_case "replace" `Quick test_table_replace_same_rule;
          Alcotest.test_case "delete subsumption" `Quick test_table_delete_subsumption;
          Alcotest.test_case "modify" `Quick test_table_modify;
          Alcotest.test_case "timeouts" `Quick test_table_timeouts;
          Alcotest.test_case "counters" `Quick test_table_counters;
          Alcotest.test_case "expired entries don't match" `Quick
            test_table_expired_skipped_in_lookup;
          Alcotest.test_case "strict delete" `Quick test_table_strict_delete;
          Alcotest.test_case "entries ordering" `Quick test_table_entries_order;
          Alcotest.test_case "timeout edges" `Quick test_table_timeout_edges ] );
      ( "classifier",
        [ Alcotest.test_case "microflow cache" `Quick test_classifier_microflow;
          Alcotest.test_case "randomized vs linear" `Quick
            test_classifier_equivalence;
          Alcotest.test_case "pipeline vs linear" `Quick
            test_pipeline_equivalence ] );
      ( "switch",
        [ Alcotest.test_case "forward" `Quick test_switch_forward;
          Alcotest.test_case "miss -> packet-in" `Quick test_switch_miss_packet_in;
          Alcotest.test_case "buffering" `Quick test_switch_buffering;
          Alcotest.test_case "flood/all" `Quick test_switch_flood;
          Alcotest.test_case "port down" `Quick test_switch_port_down_drops;
          Alcotest.test_case "rewrite ordering" `Quick test_switch_rewrite_then_output;
          Alcotest.test_case "explicit drop" `Quick test_switch_explicit_drop;
          Alcotest.test_case "qos queues" `Quick test_switch_queues;
          Alcotest.test_case "stats lookup-side expiry" `Quick
            test_switch_flow_stats_lookup_expiry;
          Alcotest.test_case "port notifications" `Quick test_switch_port_change_notify ] );
      ( "host",
        [ Alcotest.test_case "arp reply" `Quick test_host_arp_reply;
          Alcotest.test_case "arp-then-ping" `Quick test_host_ping_flow;
          Alcotest.test_case "tcp handshake" `Quick test_host_tcp_handshake ] );
      ( "network",
        [ Alcotest.test_case "delivery" `Quick test_network_delivery;
          Alcotest.test_case "link failure" `Quick test_network_link_failure;
          Alcotest.test_case "peer_of" `Quick test_network_peer_of ] );
      ( "topologies",
        [ Alcotest.test_case "shapes" `Quick test_topo_shapes;
          Alcotest.test_case "fat tree" `Quick test_topo_fat_tree;
          Alcotest.test_case "clos" `Quick test_topo_clos;
          Alcotest.test_case "random connected" `Quick test_topo_random_connected ] );
      ( "pool",
        [ Alcotest.test_case "acquire/release reuse" `Quick test_pool_reuse;
          Alcotest.test_case "capacity bounds" `Quick test_pool_capacity_bounds ] );
      ( "agent",
        [ Alcotest.test_case "control channel" `Quick test_control_channel;
          Alcotest.test_case "handshake v10" `Quick test_agent_handshake_v10;
          Alcotest.test_case "flow_mod + echo" `Quick test_agent_flow_mod_and_echo;
          Alcotest.test_case "v13 port desc" `Quick test_agent_v13_port_desc;
          Alcotest.test_case "delete strict" `Quick test_agent_delete_strict;
          Alcotest.test_case "stats exclude expired" `Quick
            test_agent_stats_exclude_expired;
          Alcotest.test_case "flow_removed" `Quick test_agent_flow_removed_notification ] );
      "properties", qcheck_cases ]
