(* Tests for the OF 1.0 / 1.3 codecs, matches and actions. *)

module OF = Openflow
module P = Packet

let m s = Option.get (P.Mac.of_string s)

let a s = Option.get (P.Ipv4_addr.of_string s)

let pfx s = Option.get (P.Ipv4_addr.Prefix.of_string s)

let of_match = Alcotest.testable OF.Of_match.pp OF.Of_match.equal

let headers frame in_port = P.Headers.of_eth ~in_port frame

let tcp_frame ?(dst_port = 22) () =
  P.Builder.tcp_syn ~src_mac:(m "02:00:00:00:00:01")
    ~dst_mac:(m "02:00:00:00:00:02") ~src_ip:(a "10.0.0.1")
    ~dst_ip:(a "10.1.2.3") ~src_port:4000 ~dst_port

(* --- Of_match ----------------------------------------------------------------- *)

let test_match_any () =
  let h = headers (tcp_frame ()) 3 in
  Alcotest.(check bool) "any matches" true (OF.Of_match.matches OF.Of_match.any h);
  Alcotest.(check int) "specificity 0" 0 (OF.Of_match.specificity OF.Of_match.any)

let test_match_fields () =
  let h = headers (tcp_frame ()) 3 in
  let match22 =
    { OF.Of_match.any with
      OF.Of_match.dl_type = Some 0x0800;
      nw_proto = Some 6;
      tp_dst = Some 22 }
  in
  Alcotest.(check bool) "ssh flow matches" true (OF.Of_match.matches match22 h);
  let h80 = headers (tcp_frame ~dst_port:80 ()) 3 in
  Alcotest.(check bool) "http misses" false (OF.Of_match.matches match22 h80);
  let port_match = { OF.Of_match.any with OF.Of_match.in_port = Some 3 } in
  Alcotest.(check bool) "in_port" true (OF.Of_match.matches port_match h);
  let wrong_port = { OF.Of_match.any with OF.Of_match.in_port = Some 4 } in
  Alcotest.(check bool) "wrong in_port" false (OF.Of_match.matches wrong_port h)

let test_match_prefix () =
  let h = headers (tcp_frame ()) 1 in
  let inside = { OF.Of_match.any with OF.Of_match.nw_dst = Some (pfx "10.1.0.0/16") } in
  let outside = { OF.Of_match.any with OF.Of_match.nw_dst = Some (pfx "10.2.0.0/16") } in
  Alcotest.(check bool) "cidr inside" true (OF.Of_match.matches inside h);
  Alcotest.(check bool) "cidr outside" false (OF.Of_match.matches outside h)

let test_match_exact_of_headers () =
  let h = headers (tcp_frame ()) 5 in
  let exact = OF.Of_match.exact_of_headers h in
  Alcotest.(check bool) "exact matches source" true (OF.Of_match.matches exact h);
  Alcotest.(check bool) "is_exact" true (OF.Of_match.is_exact exact);
  let h2 = headers (tcp_frame ~dst_port:23 ()) 5 in
  Alcotest.(check bool) "exact rejects different packet" false
    (OF.Of_match.matches exact h2)

let test_match_subsumes () =
  let broad = { OF.Of_match.any with OF.Of_match.dl_type = Some 0x0800 } in
  let narrow =
    { OF.Of_match.any with
      OF.Of_match.dl_type = Some 0x0800;
      nw_dst = Some (pfx "10.0.0.0/8") }
  in
  Alcotest.(check bool) "any subsumes broad" true
    (OF.Of_match.subsumes OF.Of_match.any broad);
  Alcotest.(check bool) "broad subsumes narrow" true (OF.Of_match.subsumes broad narrow);
  Alcotest.(check bool) "narrow !subsumes broad" false
    (OF.Of_match.subsumes narrow broad);
  Alcotest.(check bool) "reflexive" true (OF.Of_match.subsumes narrow narrow)

let test_match_intersect () =
  let ssh = { OF.Of_match.any with OF.Of_match.tp_dst = Some 22 } in
  let subnet = { OF.Of_match.any with OF.Of_match.nw_src = Some (pfx "10.0.0.0/8") } in
  (match OF.Of_match.intersect ssh subnet with
  | None -> Alcotest.fail "should intersect"
  | Some meet ->
    Alcotest.(check (option int)) "tp kept" (Some 22) meet.OF.Of_match.tp_dst;
    Alcotest.(check bool) "prefix kept" true
      (meet.OF.Of_match.nw_src = Some (pfx "10.0.0.0/8")));
  let telnet = { OF.Of_match.any with OF.Of_match.tp_dst = Some 23 } in
  Alcotest.(check bool) "disjoint ports" true (OF.Of_match.intersect ssh telnet = None);
  let sub16 = { OF.Of_match.any with OF.Of_match.nw_src = Some (pfx "10.1.0.0/16") } in
  match OF.Of_match.intersect subnet sub16 with
  | Some meet ->
    Alcotest.(check bool) "narrower prefix wins" true
      (meet.OF.Of_match.nw_src = Some (pfx "10.1.0.0/16"))
  | None -> Alcotest.fail "prefixes overlap"

let test_match_fields_roundtrip () =
  let full =
    { OF.Of_match.in_port = Some 2;
      dl_src = Some (m "02:00:00:00:00:01");
      dl_dst = Some (m "02:00:00:00:00:02");
      dl_vlan = Some 100;
      dl_vlan_pcp = Some 3;
      dl_type = Some 0x0800;
      nw_src = Some (pfx "10.0.0.0/24");
      nw_dst = Some (pfx "10.0.1.5");
      nw_proto = Some 6;
      nw_tos = Some 16;
      tp_src = Some 1000;
      tp_dst = Some 22 }
  in
  let fields = OF.Of_match.to_fields full in
  Alcotest.(check int) "12 fields" 12 (List.length fields);
  (match OF.Of_match.of_fields fields with
  | Ok back -> Alcotest.check of_match "field roundtrip" full back
  | Error e -> Alcotest.failf "of_fields: %s" e);
  Alcotest.(check bool) "bad field name" true
    (Result.is_error (OF.Of_match.of_fields [ "tp_dst_wrong", "22" ]));
  Alcotest.(check bool) "bad value" true
    (Result.is_error (OF.Of_match.of_fields [ "nw_src", "not-an-ip" ]))

(* --- Actions --------------------------------------------------------------------- *)

let test_action_fields () =
  let actions =
    [ OF.Action.Set_vlan 10;
      OF.Action.Set_dl_dst (m "02:00:00:00:00:09");
      OF.Action.Output (OF.Action.Physical 3) ]
  in
  let fields = OF.Action.to_fields actions in
  Alcotest.(check (list string)) "file names"
    [ "action.0.set_vlan"; "action.1.set_dl_dst"; "action.2.out" ]
    (List.map fst fields);
  match OF.Action.of_fields fields with
  | Ok back ->
    Alcotest.(check bool) "roundtrip" true (List.for_all2 OF.Action.equal actions back)
  | Error e -> Alcotest.failf "of_fields: %s" e

let test_action_fields_unordered () =
  let fields = [ "action.1.out", "flood"; "action.0.set_vlan", "5" ] in
  match OF.Action.of_fields fields with
  | Ok [ OF.Action.Set_vlan 5; OF.Action.Output OF.Action.Flood ] -> ()
  | Ok other ->
    Alcotest.failf "wrong order: %s" (Format.asprintf "%a" OF.Action.pp_list other)
  | Error e -> Alcotest.fail e

let test_action_paper_form () =
  match OF.Action.of_fields [ "action.out", "2" ] with
  | Ok [ OF.Action.Output (OF.Action.Physical 2) ] -> ()
  | _ -> Alcotest.fail "bare action.out should parse"

let test_action_ports () =
  let cases =
    [ "3", OF.Action.Physical 3; "in_port", OF.Action.In_port;
      "flood", OF.Action.Flood; "all", OF.Action.All;
      "controller", OF.Action.Controller 0;
      "controller:64", OF.Action.Controller 64; "drop", OF.Action.Drop ]
  in
  List.iter
    (fun (s, expected) ->
      match OF.Action.parse_one ~kind:"out" s with
      | Ok (OF.Action.Output p) ->
        Alcotest.(check bool) ("port " ^ s) true (p = expected)
      | _ -> Alcotest.failf "failed to parse port %S" s)
    cases;
  Alcotest.(check bool) "garbage port" true
    (Result.is_error (OF.Action.parse_one ~kind:"out" "chaos"))

let test_action_enqueue () =
  (* file form *)
  (match OF.Action.of_fields [ "action.0.enqueue", "3:1" ] with
  | Ok [ OF.Action.Enqueue { port = 3; queue_id = 1 } ] -> ()
  | _ -> Alcotest.fail "enqueue file form");
  Alcotest.(check bool) "bad enqueue" true
    (Result.is_error (OF.Action.parse_one ~kind:"enqueue" "3"));
  (* OF 1.0 wire: native OFPAT_ENQUEUE *)
  let fm actions =
    OF.Of10.Flow_mod
      { of_match = OF.Of_match.any; cookie = 0L; command = OF.Of10.Add;
        idle_timeout = 0; hard_timeout = 0; priority = 1; buffer_id = None;
        notify_removal = false; actions }
  in
  (match
     OF.Of10.decode
       (OF.Of10.encode ~xid:0l (fm [ OF.Action.Enqueue { port = 2; queue_id = 7 } ]))
   with
  | Ok (_, OF.Of10.Flow_mod { actions = [ OF.Action.Enqueue { port = 2; queue_id = 7 } ]; _ })
    -> ()
  | _ -> Alcotest.fail "of10 enqueue roundtrip");
  (* OF 1.3 wire: SET_QUEUE + OUTPUT pair, merged back on decode *)
  let fm13 actions =
    OF.Of13.Flow_mod
      { table_id = 0; of_match = OF.Of_match.any; cookie = 0L;
        command = OF.Of13.Add; idle_timeout = 0; hard_timeout = 0; priority = 1;
        buffer_id = None; notify_removal = false;
        instructions = [ OF.Of13.Apply_actions actions ] }
  in
  match
    OF.Of13.decode
      (OF.Of13.encode ~xid:0l
         (fm13
            [ OF.Action.Set_vlan 5;
              OF.Action.Enqueue { port = 4; queue_id = 2 };
              OF.Action.Output OF.Action.Flood ]))
  with
  | Ok (_, OF.Of13.Flow_mod { instructions = [ OF.Of13.Apply_actions acts ]; _ }) ->
    Alcotest.(check bool) "of13 enqueue reconstructed" true
      (acts
      = [ OF.Action.Set_vlan 5;
          OF.Action.Enqueue { port = 4; queue_id = 2 };
          OF.Action.Output OF.Action.Flood ])
  | _ -> Alcotest.fail "of13 enqueue roundtrip"

let test_action_rewrites () =
  let frame = tcp_frame () in
  let rewritten =
    OF.Action.apply_rewrites
      [ OF.Action.Set_dl_src (m "02:aa:aa:aa:aa:aa");
        OF.Action.Set_nw_dst (a "99.0.0.1");
        OF.Action.Set_tp_dst 2222;
        OF.Action.Set_vlan 77 ]
      frame
  in
  Alcotest.(check string) "mac rewritten" "02:aa:aa:aa:aa:aa"
    (P.Mac.to_string rewritten.P.Eth.src);
  (match rewritten.P.Eth.payload with
  | P.Eth.Ipv4 ip ->
    Alcotest.(check string) "ip rewritten" "99.0.0.1"
      (P.Ipv4_addr.to_string ip.P.Ipv4.dst);
    (match ip.P.Ipv4.payload with
    | P.Ipv4.Tcp tcp -> Alcotest.(check int) "port rewritten" 2222 tcp.P.Tcp.dst_port
    | _ -> Alcotest.fail "tcp gone")
  | _ -> Alcotest.fail "ip gone");
  Alcotest.(check (option int)) "vlan pushed" (Some 77)
    (Option.map (fun (v : P.Eth.vlan) -> v.vid) rewritten.P.Eth.vlan);
  let untagged = OF.Action.apply_rewrites [ OF.Action.Strip_vlan ] rewritten in
  Alcotest.(check bool) "vlan stripped" true (untagged.P.Eth.vlan = None)

(* --- OF 1.0 codec ------------------------------------------------------------------ *)

let roundtrip10 msg =
  match OF.Of10.decode (OF.Of10.encode ~xid:42l msg) with
  | Ok (xid, back) ->
    Alcotest.(check int32) "xid" 42l xid;
    back
  | Error e -> Alcotest.failf "of10 %s: %s" (OF.Of10.msg_name msg) e

let some_match =
  { OF.Of_match.any with
    OF.Of_match.in_port = Some 1;
    dl_type = Some 0x0800;
    nw_dst = Some (pfx "10.0.0.0/8");
    nw_proto = Some 6;
    tp_dst = Some 22 }

let test_of10_simple_messages () =
  List.iter
    (fun msg ->
      let back = roundtrip10 msg in
      Alcotest.(check string) "same message" (OF.Of10.msg_name msg)
        (OF.Of10.msg_name back))
    [ OF.Of10.Hello; OF.Of10.Features_request; OF.Of10.Barrier_request;
      OF.Of10.Barrier_reply; OF.Of10.Echo_request "ping";
      OF.Of10.Echo_reply "pong" ]

let test_of10_features () =
  let ports =
    [ OF.Of_types.Port_info.make ~port_no:1 ~hw_addr:(m "02:00:00:00:01:01") ();
      OF.Of_types.Port_info.make ~admin_down:true ~port_no:2
        ~hw_addr:(m "02:00:00:00:01:02") () ]
  in
  let msg =
    OF.Of10.Features_reply
      { datapath_id = 0xabcdefL; n_buffers = 256; n_tables = 1;
        capabilities = OF.Of_types.Capabilities.default; ports }
  in
  match roundtrip10 msg with
  | OF.Of10.Features_reply f ->
    Alcotest.(check int64) "dpid" 0xabcdefL f.datapath_id;
    Alcotest.(check int) "buffers" 256 f.n_buffers;
    Alcotest.(check int) "ports" 2 (List.length f.ports);
    let p2 = List.nth f.ports 1 in
    Alcotest.(check bool) "admin_down survived" true
      p2.OF.Of_types.Port_info.admin_down;
    Alcotest.(check string) "port name" "port_2" p2.OF.Of_types.Port_info.name
  | _ -> Alcotest.fail "wrong message"

let test_of10_flow_mod () =
  let msg =
    OF.Of10.Flow_mod
      { of_match = some_match; cookie = 7L; command = OF.Of10.Add;
        idle_timeout = 30; hard_timeout = 300; priority = 0x8000;
        buffer_id = Some 55l; notify_removal = true;
        actions =
          [ OF.Action.Set_dl_src (m "02:00:00:00:00:07");
            OF.Action.Set_nw_tos 8;
            OF.Action.Output (OF.Action.Physical 2) ] }
  in
  match roundtrip10 msg with
  | OF.Of10.Flow_mod fm ->
    Alcotest.check of_match "match" some_match fm.of_match;
    Alcotest.(check int) "idle" 30 fm.idle_timeout;
    Alcotest.(check bool) "notify flag" true fm.notify_removal;
    Alcotest.(check (option int32)) "buffer" (Some 55l) fm.buffer_id;
    Alcotest.(check int) "3 actions" 3 (List.length fm.actions)
  | _ -> Alcotest.fail "wrong message"

let test_of10_packet_in_out () =
  let data = P.Eth.to_wire (tcp_frame ()) in
  (match
     roundtrip10
       (OF.Of10.Packet_in
          { buffer_id = None; total_len = String.length data; in_port = 4;
            reason = OF.Of_types.No_match; data })
   with
  | OF.Of10.Packet_in pi ->
    Alcotest.(check int) "in_port" 4 pi.in_port;
    Alcotest.(check string) "payload intact" data pi.data;
    Alcotest.(check bool) "reason" true (pi.reason = OF.Of_types.No_match)
  | _ -> Alcotest.fail "wrong message");
  match
    roundtrip10
      (OF.Of10.Packet_out
         { buffer_id = Some 9l; in_port = Some 1;
           actions = [ OF.Action.Output OF.Action.Flood ]; data = "" })
  with
  | OF.Of10.Packet_out po ->
    Alcotest.(check (option int32)) "buffer" (Some 9l) po.buffer_id;
    Alcotest.(check (option int)) "in_port" (Some 1) po.in_port
  | _ -> Alcotest.fail "wrong message"

let test_of10_stats () =
  let stats =
    [ { OF.Of_types.Flow_stats.of_match = some_match; priority = 10; cookie = 3L;
        packets = 100L; bytes = 6400L; duration_s = 5; idle_timeout = 0;
        hard_timeout = 0; actions = [ OF.Action.Output (OF.Action.Physical 1) ] } ]
  in
  (match roundtrip10 (OF.Of10.Stats_reply (OF.Of10.Flow_stats_rep stats)) with
  | OF.Of10.Stats_reply (OF.Of10.Flow_stats_rep [ s ]) ->
    Alcotest.(check int64) "packets" 100L s.packets;
    Alcotest.check of_match "match" some_match s.of_match
  | _ -> Alcotest.fail "wrong reply");
  let pstats =
    [ { (OF.Of_types.Port_stats.zero 3) with OF.Of_types.Port_stats.rx_packets = 42L } ]
  in
  match roundtrip10 (OF.Of10.Stats_reply (OF.Of10.Port_stats_rep pstats)) with
  | OF.Of10.Stats_reply (OF.Of10.Port_stats_rep [ s ]) ->
    Alcotest.(check int) "port" 3 s.port_no;
    Alcotest.(check int64) "rx" 42L s.rx_packets
  | _ -> Alcotest.fail "wrong reply"

let test_flow_mod_commands_roundtrip () =
  List.iter
    (fun command ->
      let msg =
        OF.Of10.Flow_mod
          { of_match = some_match; cookie = 0L; command; idle_timeout = 0;
            hard_timeout = 0; priority = 7; buffer_id = None;
            notify_removal = false; actions = [] }
      in
      match roundtrip10 msg with
      | OF.Of10.Flow_mod fm ->
        Alcotest.(check bool) "of10 command preserved" true (fm.command = command)
      | _ -> Alcotest.fail "wrong message")
    [ OF.Of10.Add; OF.Of10.Modify; OF.Of10.Delete; OF.Of10.Delete_strict ]

let test_of10_errors () =
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (OF.Of10.decode "junk"));
  Alcotest.(check bool) "wrong version" true
    (Result.is_error (OF.Of10.decode (OF.Of13.encode ~xid:1l OF.Of13.Hello)));
  let truncated = String.sub (OF.Of10.encode ~xid:1l OF.Of10.Hello) 0 4 in
  Alcotest.(check bool) "truncated" true (Result.is_error (OF.Of10.decode truncated))

(* --- OF 1.3 codec ------------------------------------------------------------------- *)

let roundtrip13 msg =
  match OF.Of13.decode (OF.Of13.encode ~xid:7l msg) with
  | Ok (xid, back) ->
    Alcotest.(check int32) "xid" 7l xid;
    back
  | Error e -> Alcotest.failf "of13 %s: %s" (OF.Of13.msg_name msg) e

let test_of13_flow_mod () =
  let msg =
    OF.Of13.Flow_mod
      { table_id = 2; of_match = some_match; cookie = 9L; command = OF.Of13.Add;
        idle_timeout = 10; hard_timeout = 0; priority = 100; buffer_id = None;
        notify_removal = false;
        instructions =
          [ OF.Of13.Apply_actions
              [ OF.Action.Set_vlan 5; OF.Action.Output (OF.Action.Physical 1) ];
            OF.Of13.Goto_table 3 ] }
  in
  match roundtrip13 msg with
  | OF.Of13.Flow_mod fm ->
    Alcotest.(check int) "table" 2 fm.table_id;
    Alcotest.check of_match "oxm match" some_match fm.of_match;
    (match fm.instructions with
    | [ OF.Of13.Apply_actions acts; OF.Of13.Goto_table 3 ] ->
      Alcotest.(check int) "actions kept" 2 (List.length acts)
    | _ -> Alcotest.fail "instructions mangled")
  | _ -> Alcotest.fail "wrong message"

let flow_mod13 mm =
  OF.Of13.Flow_mod
    { table_id = 0; of_match = mm; cookie = 0L; command = OF.Of13.Add;
      idle_timeout = 0; hard_timeout = 0; priority = 1; buffer_id = None;
      notify_removal = false; instructions = [] }

let test_of13_oxm_prefix () =
  let matches =
    [ { OF.Of_match.any with OF.Of_match.nw_src = Some (pfx "10.0.0.0/8") };
      { OF.Of_match.any with OF.Of_match.nw_dst = Some (pfx "192.168.1.7") };
      { OF.Of_match.any with OF.Of_match.dl_vlan = Some 99; dl_vlan_pcp = Some 2 } ]
  in
  List.iter
    (fun mm ->
      match roundtrip13 (flow_mod13 mm) with
      | OF.Of13.Flow_mod fm -> Alcotest.check of_match "oxm roundtrip" mm fm.of_match
      | _ -> Alcotest.fail "wrong message")
    matches

let test_of13_udp_ports () =
  let mm =
    { OF.Of_match.any with
      OF.Of_match.dl_type = Some 0x0800; nw_proto = Some 17; tp_dst = Some 53 }
  in
  match roundtrip13 (flow_mod13 mm) with
  | OF.Of13.Flow_mod fm -> Alcotest.check of_match "udp oxm" mm fm.of_match
  | _ -> Alcotest.fail "wrong message"

let test_of13_commands_roundtrip () =
  List.iter
    (fun command ->
      let msg =
        OF.Of13.Flow_mod
          { table_id = 1; of_match = some_match; cookie = 0L; command;
            idle_timeout = 0; hard_timeout = 0; priority = 7; buffer_id = None;
            notify_removal = false; instructions = [] }
      in
      match roundtrip13 msg with
      | OF.Of13.Flow_mod fm ->
        Alcotest.(check bool) "of13 command preserved" true (fm.command = command)
      | _ -> Alcotest.fail "wrong message")
    [ OF.Of13.Add; OF.Of13.Modify; OF.Of13.Delete; OF.Of13.Delete_strict ]

let test_of13_packet_in () =
  let data = P.Eth.to_wire (tcp_frame ()) in
  match
    roundtrip13
      (OF.Of13.Packet_in
         { buffer_id = Some 77l; total_len = String.length data;
           reason = OF.Of_types.No_match; table_id = 0; cookie = 0L;
           in_port = 6; data })
  with
  | OF.Of13.Packet_in pi ->
    Alcotest.(check int) "in_port via oxm" 6 pi.in_port;
    Alcotest.(check string) "data" data pi.data
  | _ -> Alcotest.fail "wrong message"

let test_of13_port_desc () =
  let ports =
    [ OF.Of_types.Port_info.make ~speed_mbps:10000 ~port_no:1
        ~hw_addr:(m "02:00:00:00:02:01") () ]
  in
  match roundtrip13 (OF.Of13.Multipart_reply (OF.Of13.Port_desc_rep ports)) with
  | OF.Of13.Multipart_reply (OF.Of13.Port_desc_rep [ back ]) ->
    Alcotest.(check int) "speed preserved" 10000
      back.OF.Of_types.Port_info.speed_mbps
  | _ -> Alcotest.fail "wrong message"

let test_of13_set_field_actions () =
  let msg =
    OF.Of13.Packet_out
      { buffer_id = None; in_port = Some 3;
        actions =
          [ OF.Action.Set_nw_src (a "1.2.3.4");
            OF.Action.Set_tp_dst 8080;
            OF.Action.Strip_vlan;
            OF.Action.Output (OF.Action.Controller 128) ];
        data = "payload" }
  in
  match roundtrip13 msg with
  | OF.Of13.Packet_out po ->
    Alcotest.(check int) "4 actions" 4 (List.length po.actions);
    Alcotest.(check string) "data" "payload" po.data;
    Alcotest.(check bool) "controller maxlen" true
      (List.exists
         (fun x -> x = OF.Action.Output (OF.Action.Controller 128))
         po.actions)
  | _ -> Alcotest.fail "wrong message"

(* --- framing ------------------------------------------------------------------------- *)

let test_framing () =
  let f = OF.Framing.create () in
  let m1 = OF.Of10.encode ~xid:1l OF.Of10.Hello in
  let m2 = OF.Of10.encode ~xid:2l (OF.Of10.Echo_request "abc") in
  let joined = m1 ^ m2 in
  OF.Framing.push f (String.sub joined 0 3);
  Alcotest.(check bool) "incomplete" true (OF.Framing.pop f = None);
  OF.Framing.push f (String.sub joined 3 6);
  OF.Framing.push f (String.sub joined 9 (String.length joined - 9));
  (match OF.Framing.pop_all f with
  | [ x; y ] ->
    Alcotest.(check string) "first" m1 x;
    Alcotest.(check string) "second" m2 y
  | l -> Alcotest.failf "expected 2 messages, got %d" (List.length l));
  Alcotest.(check int) "drained" 0 (OF.Framing.buffered f);
  Alcotest.(check (option int)) "peek version" (Some 1) (OF.Framing.peek_version m1)

let test_framing_interleaved_versions () =
  let f = OF.Framing.create () in
  OF.Framing.push f (OF.Of13.encode ~xid:9l OF.Of13.Hello);
  OF.Framing.push f (OF.Of10.encode ~xid:10l OF.Of10.Hello);
  match OF.Framing.pop_all f with
  | [ x; y ] ->
    Alcotest.(check (option int)) "v4 first" (Some 4) (OF.Framing.peek_version x);
    Alcotest.(check (option int)) "v1 second" (Some 1) (OF.Framing.peek_version y)
  | _ -> Alcotest.fail "framing lost messages"

(* --- properties ----------------------------------------------------------------------- *)

let match_gen =
  let open QCheck.Gen in
  let omac = opt (map P.Mac.of_int (int_bound ((1 lsl 48) - 1))) in
  let oport = opt (int_range 1 0xff00) in
  let o16 = opt (int_bound 0xffff) in
  (* /0 is excluded: on the OF 1.0 wire a /0 prefix and a wildcard are
     the same bits, so the roundtrip is identity only for /1../32. *)
  let oprefix =
    opt
      (map2
         (fun base bits ->
           P.Ipv4_addr.Prefix.make (P.Ipv4_addr.of_int32 (Int32.of_int base)) bits)
         int (int_range 1 32))
  in
  let ovlan = opt (int_bound 0xfff) in
  let opcp = opt (int_bound 7) in
  let oproto = opt (oneofl [ 1; 6; 17 ]) in
  let otos = opt (map (fun v -> v land 0xfc) (int_bound 255)) in
  map
    (fun ( (in_port, dl_src, dl_dst, dl_vlan),
           ((dl_vlan_pcp, dl_type), (nw_src, nw_dst)),
           ((nw_proto, nw_tos), (tp_src, tp_dst)) ) ->
      { OF.Of_match.in_port; dl_src; dl_dst; dl_vlan; dl_vlan_pcp;
        dl_type = Option.map (fun () -> 0x0800) dl_type;
        nw_src; nw_dst; nw_proto; nw_tos; tp_src; tp_dst })
    (triple
       (quad oport omac omac ovlan)
       (pair (pair opcp (opt unit)) (pair oprefix oprefix))
       (pair (pair oproto otos) (pair o16 o16)))

let prop_match10_roundtrip =
  QCheck.Test.make ~name:"OF1.0 match wire roundtrip" ~count:300
    (QCheck.make match_gen) (fun mm ->
      let msg =
        OF.Of10.Flow_mod
          { of_match = mm; cookie = 0L; command = OF.Of10.Add; idle_timeout = 0;
            hard_timeout = 0; priority = 1; buffer_id = None;
            notify_removal = false; actions = [] }
      in
      match OF.Of10.decode (OF.Of10.encode ~xid:0l msg) with
      | Ok (_, OF.Of10.Flow_mod fm) -> OF.Of_match.equal mm fm.of_match
      | _ -> false)

let prop_match13_roundtrip =
  QCheck.Test.make ~name:"OF1.3 OXM wire roundtrip" ~count:300
    (QCheck.make match_gen) (fun mm ->
      match OF.Of13.decode (OF.Of13.encode ~xid:0l (flow_mod13 mm)) with
      | Ok (_, OF.Of13.Flow_mod fm) -> OF.Of_match.equal mm fm.of_match
      | _ -> false)

(* Header generator with variety in every packed field: macs, ips and
   ports from small pools (so matches derived from one header often hit
   another), optional vlan tag pushed by the rewrite engine. *)
let mac_pool = [| "02:00:00:00:00:01"; "02:00:00:00:00:02"; "02:aa:00:00:00:03" |]

let ip_pool = [| "10.0.0.1"; "10.1.2.3"; "192.168.1.9" |]

let header_gen =
  let open QCheck.Gen in
  map
    (fun ((smi, dmi, sii), (dii, spo, dpo), (inp, vlan)) ->
      let f =
        P.Builder.tcp_syn ~src_mac:(m mac_pool.(smi)) ~dst_mac:(m mac_pool.(dmi))
          ~src_ip:(a ip_pool.(sii)) ~dst_ip:(a ip_pool.(dii)) ~src_port:spo
          ~dst_port:dpo
      in
      let f =
        match vlan with
        | Some v -> OF.Action.apply_rewrites [ OF.Action.Set_vlan v ] f
        | None -> f
      in
      P.Headers.of_eth ~in_port:inp f)
    (triple
       (triple (int_bound 2) (int_bound 2) (int_bound 2))
       (triple (int_bound 2) (oneofl [ 1234; 4000 ]) (oneofl [ 22; 80; 443 ]))
       (pair (int_range 1 8) (opt (int_bound 0xfff))))

let prefix_pool =
  [| "10.0.0.0/8"; "10.0.0.0/24"; "10.1.0.0/16"; "192.168.1.0/24"; "10.1.2.3/32" |]

(* A match widened from a concrete header: each field kept exact,
   dropped, or (for the nw prefixes) replaced by a pool CIDR. Returns
   the source header too so positive matches are frequent. *)
let widened_gen =
  let open QCheck.Gen in
  map2
    (fun h (bits, (pi, pj)) ->
      let e = OF.Of_match.exact_of_headers h in
      let keep i v = if bits land (1 lsl i) <> 0 then v else None in
      ( { OF.Of_match.in_port = keep 0 e.OF.Of_match.in_port;
          dl_src = keep 1 e.OF.Of_match.dl_src;
          dl_dst = keep 2 e.OF.Of_match.dl_dst;
          dl_vlan = keep 3 e.OF.Of_match.dl_vlan;
          dl_vlan_pcp = keep 4 e.OF.Of_match.dl_vlan_pcp;
          dl_type = keep 5 e.OF.Of_match.dl_type;
          nw_src =
            (match (bits lsr 6) land 3 with
            | 0 -> None
            | 1 -> e.OF.Of_match.nw_src
            | _ -> Some (pfx prefix_pool.(pi)));
          nw_dst =
            (match (bits lsr 8) land 3 with
            | 0 -> None
            | 1 -> e.OF.Of_match.nw_dst
            | _ -> Some (pfx prefix_pool.(pj)));
          nw_proto = keep 10 e.OF.Of_match.nw_proto;
          nw_tos = keep 11 e.OF.Of_match.nw_tos;
          tp_src = keep 12 e.OF.Of_match.tp_src;
          tp_dst = keep 13 e.OF.Of_match.tp_dst },
        h ))
    header_gen
    (pair (int_bound ((1 lsl 14) - 1)) (pair (int_bound 4) (int_bound 4)))

let packed_matches mm h =
  OF.Of_match.Packed.matches (OF.Of_match.pack_rule mm)
    (OF.Of_match.Packed.of_headers h)

let prop_packed_agrees =
  QCheck.Test.make ~name:"packed matching = Of_match.matches" ~count:1000
    (QCheck.make QCheck.Gen.(pair widened_gen header_gen)) (fun ((mm, src), h) ->
      packed_matches mm src = OF.Of_match.matches mm src
      && packed_matches mm h = OF.Of_match.matches mm h)

(* Same agreement over the wire-oriented generator, whose prefixes have
   arbitrary (unnormalized) bases: both representations must treat a
   prefix whose base has host bits set as unmatchable, not mask it. *)
let prop_packed_agrees_raw =
  QCheck.Test.make ~name:"packed matching = matches (raw masks)" ~count:1000
    (QCheck.make QCheck.Gen.(pair match_gen header_gen)) (fun (mm, h) ->
      packed_matches mm h = OF.Of_match.matches mm h)

let prop_subsumes_packed =
  QCheck.Test.make ~name:"widening subsumes; subsumption sound on packed keys"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(triple widened_gen (int_bound ((1 lsl 14) - 1)) header_gen))
    (fun ((b_, src), dropbits, h) ->
      let drop i v = if dropbits land (1 lsl i) <> 0 then None else v in
      let a_ =
        { OF.Of_match.in_port = drop 0 b_.OF.Of_match.in_port;
          dl_src = drop 1 b_.OF.Of_match.dl_src;
          dl_dst = drop 2 b_.OF.Of_match.dl_dst;
          dl_vlan = drop 3 b_.OF.Of_match.dl_vlan;
          dl_vlan_pcp = drop 4 b_.OF.Of_match.dl_vlan_pcp;
          dl_type = drop 5 b_.OF.Of_match.dl_type;
          nw_src = drop 6 b_.OF.Of_match.nw_src;
          nw_dst = drop 7 b_.OF.Of_match.nw_dst;
          nw_proto = drop 8 b_.OF.Of_match.nw_proto;
          nw_tos = drop 9 b_.OF.Of_match.nw_tos;
          tp_src = drop 10 b_.OF.Of_match.tp_src;
          tp_dst = drop 11 b_.OF.Of_match.tp_dst }
      in
      OF.Of_match.subsumes a_ b_
      && List.for_all
           (fun k -> (not (packed_matches b_ k)) || packed_matches a_ k)
           [ src; h ])

let prop_intersect_packed =
  QCheck.Test.make ~name:"intersect is the packed conjunction" ~count:1000
    (QCheck.make QCheck.Gen.(triple widened_gen widened_gen header_gen))
    (fun ((a_, ha), (b_, hb), h) ->
      let agrees k =
        let ma = packed_matches a_ k
        and mb = packed_matches b_ k in
        match OF.Of_match.intersect a_ b_ with
        | Some meet -> packed_matches meet k = (ma && mb)
        | None -> not (ma && mb)
      in
      List.for_all agrees [ ha; hb; h ])

let prop_subsumes_implies_matches =
  QCheck.Test.make ~name:"subsumption is sound for matching" ~count:300
    (QCheck.make QCheck.Gen.(pair match_gen (int_range 1 8))) (fun (mm, port) ->
      let h = P.Headers.of_eth ~in_port:port (tcp_frame ()) in
      let exact = OF.Of_match.exact_of_headers h in
      if OF.Of_match.subsumes mm exact then OF.Of_match.matches mm h else true)

let fuzz_frame_gen =
  (* correctly framed (version+type+consistent length) random bodies *)
  QCheck.Gen.(
    map2
      (fun (version, ty) body ->
        let w = P.Wire.W.create () in
        P.Wire.W.u8 w version;
        P.Wire.W.u8 w ty;
        P.Wire.W.u16 w (8 + String.length body);
        P.Wire.W.u32 w 0l;
        P.Wire.W.string w body;
        P.Wire.W.contents w)
      (pair (oneofl [ 1; 4 ]) (int_bound 30))
      (string_size ~gen:char (int_bound 120)))

let prop_decode_never_raises =
  QCheck.Test.make ~name:"decoders never raise on framed garbage" ~count:1000
    (QCheck.make fuzz_frame_gen) (fun raw ->
      let safe f = match f raw with Ok _ | Error _ -> true in
      safe OF.Of10.decode && safe OF.Of13.decode)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_match10_roundtrip; prop_match13_roundtrip;
      prop_subsumes_implies_matches; prop_decode_never_raises;
      prop_packed_agrees; prop_packed_agrees_raw; prop_subsumes_packed;
      prop_intersect_packed ]

let () =
  Alcotest.run "openflow"
    [ ( "match",
        [ Alcotest.test_case "any" `Quick test_match_any;
          Alcotest.test_case "fields" `Quick test_match_fields;
          Alcotest.test_case "prefix" `Quick test_match_prefix;
          Alcotest.test_case "exact" `Quick test_match_exact_of_headers;
          Alcotest.test_case "subsumes" `Quick test_match_subsumes;
          Alcotest.test_case "intersect" `Quick test_match_intersect;
          Alcotest.test_case "field files" `Quick test_match_fields_roundtrip ] );
      ( "actions",
        [ Alcotest.test_case "field files" `Quick test_action_fields;
          Alcotest.test_case "sequence order" `Quick test_action_fields_unordered;
          Alcotest.test_case "paper form" `Quick test_action_paper_form;
          Alcotest.test_case "ports" `Quick test_action_ports;
          Alcotest.test_case "enqueue" `Quick test_action_enqueue;
          Alcotest.test_case "rewrites" `Quick test_action_rewrites ] );
      ( "of10",
        [ Alcotest.test_case "simple messages" `Quick test_of10_simple_messages;
          Alcotest.test_case "features" `Quick test_of10_features;
          Alcotest.test_case "flow_mod" `Quick test_of10_flow_mod;
          Alcotest.test_case "packet in/out" `Quick test_of10_packet_in_out;
          Alcotest.test_case "stats" `Quick test_of10_stats;
          Alcotest.test_case "flow-mod commands" `Quick
            test_flow_mod_commands_roundtrip;
          Alcotest.test_case "malformed" `Quick test_of10_errors ] );
      ( "of13",
        [ Alcotest.test_case "flow_mod+instructions" `Quick test_of13_flow_mod;
          Alcotest.test_case "oxm masks" `Quick test_of13_oxm_prefix;
          Alcotest.test_case "udp oxm ports" `Quick test_of13_udp_ports;
          Alcotest.test_case "flow-mod commands" `Quick
            test_of13_commands_roundtrip;
          Alcotest.test_case "packet_in" `Quick test_of13_packet_in;
          Alcotest.test_case "port desc" `Quick test_of13_port_desc;
          Alcotest.test_case "set-field actions" `Quick test_of13_set_field_actions ] );
      ( "framing",
        [ Alcotest.test_case "chunked" `Quick test_framing;
          Alcotest.test_case "mixed versions" `Quick test_framing_interleaved_versions ] );
      "properties", qcheck_cases ]
