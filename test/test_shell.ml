(* Tests for the coreutils-over-VFS shell (paper §5.4), including the
   paper's literal one-liners. *)

module Fs = Vfs.Fs
module Path = Vfs.Path

let cred = Vfs.Cred.root

let p = Path.of_string_exn


let env () = Shell.Env.create (Fs.create ())

let run env line = Shell.Pipeline.run env line

let out env line =
  let r = run env line in
  if r.Shell.Pipeline.code <> 0 then
    Alcotest.failf "command failed: %s\n%s" line r.Shell.Pipeline.err;
  r.Shell.Pipeline.out

(* --- tokenizer -------------------------------------------------------------------- *)

let test_tokenizer () =
  let words s =
    match Shell.Pipeline.split_words s with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string)) "plain" [ "ls"; "-l"; "/net" ] (words "ls -l /net");
  Alcotest.(check (list string)) "quotes" [ "echo"; "two words" ]
    (words "echo 'two words'");
  Alcotest.(check (list string)) "double quotes" [ "echo"; "a b" ] (words "echo \"a b\"");
  Alcotest.(check (list string)) "comment" [ "echo"; "x" ] (words "echo x # noise");
  Alcotest.(check (list string)) "empty" [] (words "   ");
  Alcotest.(check bool) "unterminated quote" true
    (Result.is_error (Shell.Pipeline.split_words "echo 'oops"))

let test_glob_matching () =
  Alcotest.(check bool) "star" true (Shell.Glob.matches ~pattern:"*.txt" "a.txt");
  Alcotest.(check bool) "star miss" false (Shell.Glob.matches ~pattern:"*.txt" "a.bin");
  Alcotest.(check bool) "question" true (Shell.Glob.matches ~pattern:"sw?" "sw1");
  Alcotest.(check bool) "question strict" false (Shell.Glob.matches ~pattern:"sw?" "sw12");
  Alcotest.(check bool) "middle star" true
    (Shell.Glob.matches ~pattern:"match.*" "match.tp_dst");
  Alcotest.(check bool) "exact" true (Shell.Glob.matches ~pattern:"peer" "peer");
  Alcotest.(check bool) "star empty" true (Shell.Glob.matches ~pattern:"a*" "a")

(* --- basic commands ------------------------------------------------------------------ *)

let test_echo_redirect_cat () =
  let e = env () in
  ignore (out e "mkdir /d");
  ignore (out e "echo hello world > /d/f");
  Alcotest.(check string) "cat" "hello world\n" (out e "cat /d/f");
  ignore (out e "echo more >> /d/f");
  Alcotest.(check string) "append" "hello world\nmore\n" (out e "cat /d/f");
  Alcotest.(check string) "echo -n" "flat" (out e "echo -n flat")

let test_ls () =
  let e = env () in
  ignore (out e "mkdir -p /net/switches/sw1");
  ignore (out e "mkdir /net/switches/sw2");
  ignore (out e "echo 1 > /net/switches/marker");
  Alcotest.(check string) "names" "marker\nsw1\nsw2\n" (out e "ls /net/switches");
  let long = out e "ls -l /net/switches" in
  Alcotest.(check bool) "long format has modes" true
    (String.length long > 10 && (long.[0] = 'd' || long.[0] = '-'));
  let r = run e "ls /nonexistent" in
  Alcotest.(check bool) "missing path fails" true (r.Shell.Pipeline.code <> 0)

let test_mkdir_rm () =
  let e = env () in
  ignore (out e "mkdir -p /a/b/c");
  Alcotest.(check string) "tree exists" "c\n" (out e "ls /a/b");
  let r = run e "rm /a" in
  Alcotest.(check bool) "rm dir without -r fails" true (r.Shell.Pipeline.code <> 0);
  ignore (out e "rm -r /a");
  Alcotest.(check bool) "gone" true ((run e "ls /a").Shell.Pipeline.code <> 0);
  Alcotest.(check int) "rm -f missing is fine" 0 (run e "rm -f /ghost").Shell.Pipeline.code

let test_cp_mv () =
  let e = env () in
  ignore (out e "mkdir -p /src/sub");
  ignore (out e "echo data > /src/f");
  ignore (out e "echo deep > /src/sub/g");
  ignore (out e "ln -s /src/f /src/link");
  ignore (out e "cp -r /src /dst");
  Alcotest.(check string) "file copied" "data\n" (out e "cat /dst/f");
  Alcotest.(check string) "subtree copied" "deep\n" (out e "cat /dst/sub/g");
  Alcotest.(check string) "symlink preserved" "/src/f\n" (out e "readlink /dst/link");
  ignore (out e "mv /dst/f /dst/renamed");
  Alcotest.(check string) "moved" "data\n" (out e "cat /dst/renamed");
  (* mv into an existing directory targets basename *)
  ignore (out e "mv /dst/renamed /src/sub");
  Alcotest.(check string) "into dir" "data\n" (out e "cat /src/sub/renamed")

let test_pipes () =
  let e = env () in
  ignore (out e "mkdir /d");
  ignore (out e "echo banana > /d/1");
  ignore (out e "echo apple > /d/2");
  ignore (out e "echo banana > /d/3");
  Alcotest.(check string) "cat | sort | uniq" "apple\nbanana\n"
    (out e "cat /d/1 /d/2 /d/3 | sort | uniq");
  Alcotest.(check string) "wc -l" "3\n" (out e "ls /d | wc -l");
  Alcotest.(check string) "head" "apple\n" (out e "cat /d/2 /d/1 | head -n 1");
  Alcotest.(check string) "tail" "banana\n" (out e "cat /d/2 /d/1 | tail -n 1");
  Alcotest.(check string) "cut" "b\n" (out e "echo a:b:c | cut -d : -f 2")

let test_grep () =
  let e = env () in
  ignore (out e "mkdir /logs");
  ignore (out e "echo error one > /logs/a");
  ignore (out e "echo all fine > /logs/b");
  ignore (out e "echo ERROR two > /logs/c");
  Alcotest.(check string) "grep file" "error one\n" (out e "grep error /logs/a");
  Alcotest.(check string) "grep -i across files" "/logs/a:error one\n/logs/c:ERROR two\n"
    (out e "grep -i error /logs/a /logs/b /logs/c");
  Alcotest.(check string) "grep -l" "/logs/a\n" (out e "grep -l error /logs/a /logs/b");
  Alcotest.(check string) "grep -c" "1\n" (out e "grep -c error /logs/a");
  Alcotest.(check string) "grep -v" "all fine\n" (out e "cat /logs/b | grep -v error");
  Alcotest.(check int) "no match exit code" 1
    (run e "grep nothing /logs/b").Shell.Pipeline.code;
  Alcotest.(check string) "grep -r" "/logs/a:error one\n"
    (out e "grep -r error /logs | grep -v ERROR")

let test_find () =
  let e = env () in
  ignore (out e "mkdir -p /net/switches/sw1/flows/ssh");
  ignore (out e "mkdir -p /net/switches/sw2/flows/web");
  ignore (out e "echo 22 > /net/switches/sw1/flows/ssh/match.tp_dst");
  ignore (out e "echo 80 > /net/switches/sw2/flows/web/match.tp_dst");
  let hits = out e "find /net -name match.tp_dst" in
  Alcotest.(check string) "find -name"
    "/net/switches/sw1/flows/ssh/match.tp_dst\n/net/switches/sw2/flows/web/match.tp_dst\n"
    hits;
  Alcotest.(check string) "find -type d -name" "/net/switches/sw1/flows/ssh\n"
    (out e "find /net -type d -name ssh");
  Alcotest.(check string) "maxdepth" "/net/switches\n"
    (out e "find /net -maxdepth 1 -name switches")

let test_find_exec_paper_oneliner () =
  (* The paper's §5.4 one-liner: find /net -name tp.dst -exec grep 22
     (our field files are named match.tp_dst). *)
  let e = env () in
  ignore (out e "mkdir -p /net/switches/sw1/flows/ssh");
  ignore (out e "mkdir -p /net/switches/sw1/flows/web");
  ignore (out e "echo 22 > /net/switches/sw1/flows/ssh/match.tp_dst");
  ignore (out e "echo 80 > /net/switches/sw1/flows/web/match.tp_dst");
  Alcotest.(check string) "flows affecting ssh traffic" "22\n"
    (out e "find /net -name match.tp_dst -exec grep 22")

let test_globbing () =
  let e = env () in
  ignore (out e "mkdir -p /net/switches/sw1/ports/port_1");
  ignore (out e "mkdir -p /net/switches/sw2/ports/port_1");
  ignore (out e "echo 0 > /net/switches/sw1/ports/port_1/config.port_down");
  ignore (out e "echo 1 > /net/switches/sw2/ports/port_1/config.port_down");
  Alcotest.(check string) "glob across switches" "0\n1\n"
    (out e "cat /net/switches/*/ports/port_1/config.port_down");
  Alcotest.(check string) "glob expansion in operands"
    "/net/switches/sw1 /net/switches/sw2\n"
    (out e "echo /net/switches/sw?")

let test_cd_pwd () =
  let e = env () in
  ignore (out e "mkdir -p /net/switches");
  Alcotest.(check string) "initial pwd" "/\n" (out e "pwd");
  ignore (out e "cd /net/switches");
  Alcotest.(check string) "pwd after cd" "/net/switches\n" (out e "pwd");
  ignore (out e "mkdir swX");
  Alcotest.(check bool) "relative mkdir" true
    (Fs.is_dir e.Shell.Env.fs ~cred (p "/net/switches/swX"));
  Alcotest.(check bool) "cd to missing fails" true
    ((run e "cd /void").Shell.Pipeline.code <> 0)

let test_chmod_stat_touch () =
  let e = env () in
  ignore (out e "touch /f");
  ignore (out e "chmod 600 /f");
  let st = out e "stat /f" in
  Alcotest.(check bool) "stat shows mode" true
    (String.length st > 0
    &&
    let has_0600 = ref false in
    String.iteri
      (fun i _ ->
        if i + 4 <= String.length st && String.sub st i 4 = "0600" then has_0600 := true)
      st;
    !has_0600);
  Alcotest.(check int) "touch existing ok" 0 (run e "touch /f").Shell.Pipeline.code

let test_sequencing () =
  let e = env () in
  Alcotest.(check string) "&& runs both" "a\nb\n" (out e "echo a && echo b");
  let r = run e "false && echo never" in
  Alcotest.(check string) "&& short circuits" "" r.Shell.Pipeline.out;
  Alcotest.(check string) "; runs regardless" "x\ny\n" (out e "echo x ; echo y")

let test_tee () =
  let e = env () in
  Alcotest.(check string) "tee passes through" "data\n" (out e "echo data | tee /copy");
  Alcotest.(check string) "tee wrote" "data\n" (out e "cat /copy")

let test_unknown_command () =
  let e = env () in
  let r = run e "frobnicate /net" in
  Alcotest.(check int) "127" 127 r.Shell.Pipeline.code

let test_run_script () =
  let e = env () in
  let script =
    "# static flow pusher, as a shell script (paper §8)\n\
     mkdir -p /net/switches/sw1/flows/fwd\n\
     echo 3 > /net/switches/sw1/flows/fwd/action.0.out\n\
     echo 100 > /net/switches/sw1/flows/fwd/priority\n\
     echo 1 > /net/switches/sw1/flows/fwd/version\n"
  in
  let r = Shell.Pipeline.run_script e script in
  Alcotest.(check int) "script ok" 0 r.Shell.Pipeline.code;
  Alcotest.(check string) "files written" "1\n"
    (out e "cat /net/switches/sw1/flows/fwd/version")

let test_facl_commands () =
  let e = env () in
  ignore (out e "mkdir -p /net/switches/sw1");
  ignore (out e "chmod 700 /net/switches/sw1");
  (* grant uid 101 read+exec via ACL, as an admin would with setfacl *)
  ignore (out e "setfacl -m user:101:r-x /net/switches/sw1");
  let shown = out e "getfacl /net/switches/sw1" in
  Alcotest.(check bool) "entry listed" true
    (let needle = "user:101:r-x" in
     let nl = String.length needle and hl = String.length shown in
     let rec at i = i + nl <= hl && (String.sub shown i nl = needle || at (i + 1)) in
     at 0);
  (* uid 101 can now traverse *)
  let tenant = Vfs.Cred.make ~uid:101 ~gid:101 () in
  Alcotest.(check bool) "acl grants access" true
    (Result.is_ok (Fs.readdir e.Shell.Env.fs ~cred:tenant (p "/net/switches/sw1")));
  (* and revoke *)
  ignore (out e "setfacl -x user:101 /net/switches/sw1");
  Alcotest.(check bool) "revoked" true
    (Fs.readdir e.Shell.Env.fs ~cred:tenant (p "/net/switches/sw1")
    = Error Vfs.Errno.EACCES);
  ignore (out e "setfacl -m user:102:rwx /net/switches/sw1");
  ignore (out e "setfacl -b /net/switches/sw1");
  Alcotest.(check string) "cleared acl has no named entries" ""
    (out e "getfacl /net/switches/sw1 | grep user:102 | cat")

let test_fattr_commands () =
  let e = env () in
  ignore (out e "mkdir -p /net/switches/sw1/flows");
  (* mark a subtree as requiring strict consistency (paper 5.1 + 6) *)
  ignore (out e "setfattr -n user.consistency -v strict /net/switches/sw1/flows");
  Alcotest.(check string) "read back"
    "user.consistency=\"strict\"\n"
    (out e "getfattr -n user.consistency /net/switches/sw1/flows");
  Alcotest.(check string) "listing" "user.consistency\n"
    (out e "getfattr /net/switches/sw1/flows");
  ignore (out e "setfattr -x user.consistency /net/switches/sw1/flows");
  Alcotest.(check bool) "removed" true
    ((run e "getfattr -n user.consistency /net/switches/sw1/flows").Shell.Pipeline.code
    <> 0)

let test_permissions_respected () =
  let e = env () in
  ignore (out e "mkdir -p /net/secret");
  ignore (out e "chmod 700 /net/secret");
  ignore (out e "echo classified > /net/secret/f");
  e.Shell.Env.cred <- Vfs.Cred.make ~uid:1000 ~gid:1000 ();
  let r = run e "cat /net/secret/f" in
  Alcotest.(check bool) "denied" true (r.Shell.Pipeline.code <> 0);
  Alcotest.(check bool) "says permission denied" true
    (let err = r.Shell.Pipeline.err in
     let has = ref false in
     String.iteri
       (fun i _ ->
         if
           i + 10 <= String.length err
           && String.sub err i 10 = "Permission"
         then has := true)
       err;
     !has)

(* --- properties ----------------------------------------------------------- *)

let word_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; '0'; '-'; '/'; '.'; '*' ]) (int_range 1 10))

let prop_tokenizer_quoting =
  QCheck.Test.make ~name:"single-quoting survives tokenization" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 8) word_gen))
    (fun words ->
      let line = String.concat " " (List.map (fun w -> "'" ^ w ^ "'") words) in
      Shell.Pipeline.split_words line = Ok words)

let prop_glob_star_reflexive =
  QCheck.Test.make ~name:"every name matches itself and the * pattern" ~count:300
    (QCheck.make word_gen) (fun name ->
      Shell.Glob.matches ~pattern:name name && Shell.Glob.matches ~pattern:"*" name)

let prop_echo_cat_roundtrip =
  QCheck.Test.make ~name:"echo > file; cat file roundtrips words" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 5)
           (* a leading '-' would parse as an echo flag *)
           (map (fun w -> "w" ^ w) word_gen)))
    (fun words ->
      (* '*' can glob-expand; quote everything *)
      let e = env () in
      let quoted = String.concat " " (List.map (fun w -> "'" ^ w ^ "'") words) in
      let w = run e (Printf.sprintf "echo %s > /f" quoted) in
      let r = run e "cat /f" in
      w.Shell.Pipeline.code = 0
      && r.Shell.Pipeline.out = String.concat " " words ^ "\n")

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tokenizer_quoting; prop_glob_star_reflexive; prop_echo_cat_roundtrip ]

let () =
  Alcotest.run "shell"
    [ ( "parsing",
        [ Alcotest.test_case "tokenizer" `Quick test_tokenizer;
          Alcotest.test_case "glob matching" `Quick test_glob_matching ] );
      ( "commands",
        [ Alcotest.test_case "echo/redirect/cat" `Quick test_echo_redirect_cat;
          Alcotest.test_case "ls" `Quick test_ls;
          Alcotest.test_case "mkdir/rm" `Quick test_mkdir_rm;
          Alcotest.test_case "cp/mv" `Quick test_cp_mv;
          Alcotest.test_case "chmod/stat/touch" `Quick test_chmod_stat_touch;
          Alcotest.test_case "cd/pwd" `Quick test_cd_pwd;
          Alcotest.test_case "unknown command" `Quick test_unknown_command ] );
      ( "pipelines",
        [ Alcotest.test_case "pipes" `Quick test_pipes;
          Alcotest.test_case "grep" `Quick test_grep;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "find -exec (paper one-liner)" `Quick
            test_find_exec_paper_oneliner;
          Alcotest.test_case "globbing" `Quick test_globbing;
          Alcotest.test_case "sequencing" `Quick test_sequencing;
          Alcotest.test_case "tee" `Quick test_tee;
          Alcotest.test_case "scripts" `Quick test_run_script ] );
      ( "security",
        [ Alcotest.test_case "permissions respected" `Quick test_permissions_respected;
          Alcotest.test_case "getfacl/setfacl" `Quick test_facl_commands;
          Alcotest.test_case "getfattr/setfattr" `Quick test_fattr_commands ] );
      "properties", qcheck_cases ]
