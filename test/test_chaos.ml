(* Chaos & fault-injection tests: the control plane must survive a
   misbehaving control channel (ISSUE 5 tentpole).

   - channel properties: an all-zero fault policy is exactly
     transparent, and no fault combination ever invents bytes;
   - backoff: deterministic from the seed, exponential with cap,
     jitter bounded and upward-only;
   - recovery: a hard disconnect is detected, the driver re-handshakes
     and resynchronizes the flow table against the file system (strays
     deleted, missing rules installed);
   - a driver that exhausts its retry budget goes [dead] and is
     reported as such through yancfs;
   - soak matrix: every profile in {!Chaos.profiles} × several seeds
     must reconverge with hardware ≡ file system. *)

module N = Netsim
module D = Driver
module Y = Yancfs
module OF = Openflow
module CC = N.Control_channel

let cred = Vfs.Cred.root

(* --- channel properties (satellite c) --------------------------------------- *)

let zero_stats =
  { CC.dropped = 0; duplicated = 0; reordered = 0; truncated = 0; delayed = 0 }

let prop_zero_faults_transparent =
  QCheck.Test.make ~name:"all-zero fault policy is byte-transparent" ~count:150
    QCheck.(pair small_int (small_list string))
    (fun (seed, msgs) ->
      let rx1, tx1 = CC.create () in
      let rx2, tx2 = CC.create () in
      CC.set_faults tx2
        (Some (CC.Faults.create ~policy:CC.Faults.default ~seed ()));
      List.iter (CC.send tx1) msgs;
      List.iter (CC.send tx2) msgs;
      CC.recv_all rx1 = CC.recv_all rx2
      && CC.bytes_sent tx1 = CC.bytes_sent tx2
      && CC.fault_stats tx2 = zero_stats)

let is_prefix ~of_:m c =
  String.length c <= String.length m && String.sub m 0 (String.length c) = c

let prop_faults_never_invent =
  QCheck.Test.make ~name:"faults never invent bytes" ~count:150
    QCheck.(pair small_int (small_list string))
    (fun (seed, msgs) ->
      let rx, tx = CC.create () in
      let policy =
        { CC.Faults.default with
          CC.Faults.drop = 0.2; duplicate = 0.4; reorder = 0.4; truncate = 0.3 }
      in
      CC.set_faults tx (Some (CC.Faults.create ~policy ~seed ()));
      List.iter (CC.send tx) msgs;
      let got = CC.recv_all rx in
      let stats = CC.fault_stats tx in
      List.for_all (fun c -> List.exists (fun m -> is_prefix ~of_:m c) msgs) got
      && List.length got <= List.length msgs + stats.CC.duplicated)

(* --- backoff (satellite d) --------------------------------------------------- *)

let schedule ~seed ~jitter n =
  let b =
    D.Backoff.create ~base:0.25 ~cap:4.0 ~jitter
      ~prng:(N.Prng.create ~seed) ()
  in
  List.init n (fun _ -> D.Backoff.next b)

let test_backoff_deterministic () =
  Alcotest.(check (list (float 1e-12)))
    "same seed, same schedule"
    (schedule ~seed:42 ~jitter:0.1 12)
    (schedule ~seed:42 ~jitter:0.1 12);
  Alcotest.(check bool) "different seed, different schedule" true
    (schedule ~seed:42 ~jitter:0.1 12 <> schedule ~seed:43 ~jitter:0.1 12)

let test_backoff_shape () =
  let b =
    D.Backoff.create ~base:0.25 ~cap:4.0 ~jitter:0.
      ~prng:(N.Prng.create ~seed:1) ()
  in
  Alcotest.(check (list (float 1e-9)))
    "no jitter: exact doubling, clamped at the cap"
    [ 0.25; 0.5; 1.0; 2.0; 4.0; 4.0; 4.0 ]
    (List.init 7 (fun _ -> D.Backoff.next b));
  Alcotest.(check int) "attempts counted" 7 (D.Backoff.attempts b);
  D.Backoff.reset b;
  Alcotest.(check (float 1e-9)) "reset restarts the schedule" 0.25
    (D.Backoff.next b)

let test_backoff_jitter_bounds () =
  let jitter = 0.25 in
  let b =
    D.Backoff.create ~base:0.25 ~cap:4.0 ~jitter
      ~prng:(N.Prng.create ~seed:9) ()
  in
  for i = 0 to 11 do
    let pure = min (0.25 *. (2. ** float_of_int (min i 30))) 4.0 in
    let d = D.Backoff.next b in
    if d < pure -. 1e-9 || d > (pure *. (1. +. jitter)) +. 1e-9 then
      Alcotest.failf "attempt %d: delay %.4f outside [%.4f, %.4f]" i d pure
        (pure *. (1. +. jitter))
  done

(* --- recovery scenarios ------------------------------------------------------ *)

let mk_flow ~tp_dst ~priority =
  { Y.Flowdir.default with
    Y.Flowdir.of_match = { OF.Of_match.any with OF.Of_match.tp_dst = Some tp_dst };
    actions = [ OF.Action.Output (OF.Action.Physical 1) ];
    priority }

let rig ?(tuning = Chaos.fast_tuning) ?(seed = 7) () =
  let built = N.Topo_gen.linear ~hosts_per_switch:1 1 in
  let net = built.N.Topo_gen.net in
  let ctl = Yanc.Controller.create ~tuning ~seed ~net () in
  Yanc.Controller.attach_switches ctl;
  Yanc.Controller.run_for ~tick:0.02 ctl 0.3;
  let mgr = Yanc.Controller.manager ctl in
  let dpid = List.hd (D.Manager.attached mgr) in
  (ctl, mgr, dpid, Option.get (D.Manager.switch_name mgr ~dpid))

let hw_rule_count ctl dpid =
  let sw = Option.get (N.Network.switch (Yanc.Controller.net ctl) dpid) in
  List.length
    (N.Sim_switch.flow_stats sw ~now:(Yanc.Controller.now ctl)
       ~of_match:OF.Of_match.any ())

let counters mgr dpid = Option.get (D.Manager.link_counters mgr ~dpid)

(* A hard outage: fs changes made while the channel is down must reach
   hardware through the reconnect + resync path, not be lost. *)
let test_disconnect_recovery () =
  let ctl, mgr, dpid, swname = rig () in
  let yfs = Yanc.Controller.yfs ctl in
  let ok =
    Y.Yanc_fs.create_flow yfs ~cred ~switch:swname ~name:"keep"
      (mk_flow ~tp_dst:80 ~priority:50)
  in
  Alcotest.(check bool) "create keep" true (ok = Ok ());
  let ok =
    Y.Yanc_fs.create_flow yfs ~cred ~switch:swname ~name:"doomed"
      (mk_flow ~tp_dst:443 ~priority:60)
  in
  Alcotest.(check bool) "create doomed" true (ok = Ok ());
  Yanc.Controller.run_for ~tick:0.02 ctl 0.3;
  Alcotest.(check int) "both flows on hardware" 2 (hw_rule_count ctl dpid);
  Alcotest.(check (option string))
    "status file says connected" (Some "connected")
    (Y.Yanc_fs.switch_status yfs swname);
  (* kill the channel, then edit the fs while it is down: delete one
     installed flow, add a new one *)
  let _sw_end, ctl_end = Option.get (D.Manager.channel mgr ~dpid) in
  CC.disconnect ctl_end;
  Alcotest.(check bool) "delete doomed while down" true
    (Y.Yanc_fs.delete_flow yfs ~cred ~switch:swname "doomed" = Ok ());
  Alcotest.(check bool) "create fresh while down" true
    (Y.Yanc_fs.create_flow yfs ~cred ~switch:swname ~name:"fresh"
       (mk_flow ~tp_dst:8080 ~priority:70)
    = Ok ());
  let recovered =
    Yanc.Controller.run_until ~tick:0.02 ~timeout:10. ctl (fun () ->
        D.Manager.switch_status mgr ~dpid = Some D.Driver_intf.Connected
        && (counters mgr dpid).D.Driver_intf.resyncs >= 1)
  in
  Alcotest.(check bool) "driver recovered" true recovered;
  Yanc.Controller.run_for ~tick:0.02 ctl 0.3;
  let c = counters mgr dpid in
  Alcotest.(check bool) "disconnect counted" true (c.D.Driver_intf.disconnects >= 1);
  Alcotest.(check bool) "resync counted" true (c.D.Driver_intf.resyncs >= 1);
  Alcotest.(check int) "hardware back in sync (keep + fresh)" 2
    (hw_rule_count ctl dpid);
  let sw = Option.get (N.Network.switch (Yanc.Controller.net ctl) dpid) in
  let rules =
    List.map
      (fun ((_, e) : int * N.Flow_table.entry) ->
        (e.of_match.OF.Of_match.tp_dst, e.priority))
      (N.Sim_switch.flow_stats sw ~now:(Yanc.Controller.now ctl)
         ~of_match:OF.Of_match.any ())
    |> List.sort compare
  in
  Alcotest.(check (list (pair (option int) int)))
    "exactly the committed rules survive"
    [ (Some 80, 50); (Some 8080, 70) ]
    rules;
  Alcotest.(check (option string))
    "status file back to connected" (Some "connected")
    (Y.Yanc_fs.switch_status yfs swname)

(* Resync must also repair silent divergence: rules that exist only on
   the switch (installed behind the controller's back) are strays and
   get DELETE_STRICTed. *)
let test_resync_deletes_strays () =
  let ctl, mgr, dpid, swname = rig () in
  let yfs = Yanc.Controller.yfs ctl in
  ignore
    (Y.Yanc_fs.create_flow yfs ~cred ~switch:swname ~name:"legit"
       (mk_flow ~tp_dst:80 ~priority:50));
  Yanc.Controller.run_for ~tick:0.02 ctl 0.3;
  (* a rule the file system never committed appears on the switch *)
  let sw = Option.get (N.Network.switch (Yanc.Controller.net ctl) dpid) in
  ignore
    (N.Sim_switch.flow_add sw ~now:(Yanc.Controller.now ctl)
       ~of_match:{ OF.Of_match.any with OF.Of_match.tp_dst = Some 6666 }
       ~priority:999
       ~actions:[ OF.Action.Output (OF.Action.Physical 1) ]
       ());
  Alcotest.(check int) "stray present" 2 (hw_rule_count ctl dpid);
  let _sw_end, ctl_end = Option.get (D.Manager.channel mgr ~dpid) in
  CC.disconnect ctl_end;
  let recovered =
    Yanc.Controller.run_until ~tick:0.02 ~timeout:10. ctl (fun () ->
        D.Manager.switch_status mgr ~dpid = Some D.Driver_intf.Connected
        && (counters mgr dpid).D.Driver_intf.resyncs >= 1)
  in
  Alcotest.(check bool) "driver recovered" true recovered;
  Yanc.Controller.run_for ~tick:0.02 ctl 0.3;
  Alcotest.(check int) "stray deleted by resync" 1 (hw_rule_count ctl dpid);
  Alcotest.(check bool) "stray delete counted" true
    ((counters mgr dpid).D.Driver_intf.resync_deletes >= 1)

(* A channel that can never be re-established exhausts the retry budget
   and the driver surfaces [dead] — yancctl exits nonzero on this. *)
let test_dead_after_retry_budget () =
  let tuning = { Chaos.fast_tuning with D.Driver_intf.max_retries = 3 } in
  let ctl, mgr, dpid, swname = rig ~tuning () in
  let yfs = Yanc.Controller.yfs ctl in
  let _sw_end, ctl_end = Option.get (D.Manager.channel mgr ~dpid) in
  (* the gate is read from the disconnecting endpoint's policy: make
     reconnection impossible, then sever *)
  CC.set_faults ctl_end
    (Some
       (CC.Faults.create
          ~policy:{ CC.Faults.default with CC.Faults.reconnect_after = 1e9 }
          ~seed:1 ()));
  CC.disconnect ctl_end;
  let died =
    Yanc.Controller.run_until ~tick:0.05 ~timeout:10. ctl (fun () ->
        D.Manager.switch_status mgr ~dpid = Some D.Driver_intf.Dead)
  in
  Alcotest.(check bool) "driver declared dead" true died;
  Alcotest.(check bool) "manager reports a dead switch" true
    (D.Manager.any_dead mgr);
  Alcotest.(check (option string)) "status file says dead" (Some "dead")
    (Y.Yanc_fs.switch_status yfs swname);
  Alcotest.(check bool) "retries were spent" true
    ((counters mgr dpid).D.Driver_intf.retries >= 3)

(* --- soak matrix (satellite d) ----------------------------------------------- *)

let soak_seeds = [ 11; 23; 37 ]

let soak_case profile seed =
  Alcotest.test_case
    (Printf.sprintf "soak %s seed=%d" profile.Chaos.pname seed)
    `Quick
    (fun () ->
      let o = Chaos.run ~seed profile in
      if o.Chaos.resyncs < 1 then
        Alcotest.failf "chaos seed=%d profile=%s: no resync happened" seed
          profile.Chaos.pname;
      if o.Chaos.keepalives < 1 then
        Alcotest.failf "chaos seed=%d profile=%s: no keepalives sent" seed
          profile.Chaos.pname;
      if profile.Chaos.disconnect_at <> [] && o.Chaos.disconnects < 1 then
        Alcotest.failf "chaos seed=%d profile=%s: scripted disconnects missed"
          seed profile.Chaos.pname;
      if profile.Chaos.policy.CC.Faults.drop > 0. && o.Chaos.faults_injected = 0
      then
        Alcotest.failf "chaos seed=%d profile=%s: policy injected nothing" seed
          profile.Chaos.pname)

(* Policy soak (ISSUE 10 satellite): the policy engine recompiles and
   re-installs while the channels misbehave — the first text installs
   before the turbulence, the rewrite lands mid-workload, and
   {!Chaos.run} then asserts hardware ≡ file system ≡ compiled policy
   after recovery. One fixed seed per profile keeps the matrix fast. *)
let soak_policy_texts =
  ( "filter dl_type = 0x0806 ; controller\n\
     | filter dl_type = 0x0800 && tp_dst = 80 ; fwd(1)\n\
     | filter dl_type = 0x0800 && tp_dst = 53 ; fwd(2)",
    "filter dl_type = 0x0806 ; controller\n\
     | filter dl_type = 0x0800 && tp_dst = 443 ; fwd(2)\n\
     | filter dl_type = 0x0800 && tp_dst = 53 ; fwd(2)\n\
     | filter dl_type = 0x0800 && nw_dst = 10.0.0.0/8 ; dl_src := \
     02:00:00:00:00:01 ; fwd(1)" )

let soak_policy_case profile =
  let seed = 13 in
  Alcotest.test_case
    (Printf.sprintf "soak+policy %s seed=%d" profile.Chaos.pname seed)
    `Quick
    (fun () ->
      let o = Chaos.run ~seed ~policy:soak_policy_texts profile in
      if o.Chaos.resyncs < 1 then
        Alcotest.failf "chaos seed=%d profile=%s: no resync happened" seed
          profile.Chaos.pname)

(* Determinism of the harness itself: the same (seed, profile) must
   yield the same counters — this is what makes a printed seed a
   reproduction recipe. *)
let test_chaos_reproducible () =
  let a = Chaos.run ~seed:11 Chaos.drop_profile in
  let b = Chaos.run ~seed:11 Chaos.drop_profile in
  Alcotest.(check bool) "same seed, same outcome" true (a = b)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_zero_faults_transparent; prop_faults_never_invent ]

let () =
  Alcotest.run "chaos"
    [ ("channel-properties", qcheck_cases);
      ( "backoff",
        [ Alcotest.test_case "deterministic from seed" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "exponential shape with cap" `Quick
            test_backoff_shape;
          Alcotest.test_case "jitter bounds" `Quick test_backoff_jitter_bounds
        ] );
      ( "recovery",
        [ Alcotest.test_case "disconnect recovery + resync" `Quick
            test_disconnect_recovery;
          Alcotest.test_case "resync deletes strays" `Quick
            test_resync_deletes_strays;
          Alcotest.test_case "dead after retry budget" `Quick
            test_dead_after_retry_budget
        ] );
      ( "soak",
        Alcotest.test_case "reproducible outcome" `Quick test_chaos_reproducible
        :: List.concat_map
             (fun p -> List.map (soak_case p) soak_seeds)
             Chaos.profiles
        @ List.map soak_policy_case Chaos.profiles ) ]
