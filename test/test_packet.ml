(* Wire-format tests for the packet library. *)

module P = Packet

let mac = Alcotest.testable P.Mac.pp P.Mac.equal

let ip = Alcotest.testable P.Ipv4_addr.pp P.Ipv4_addr.equal

let eth = Alcotest.testable P.Eth.pp P.Eth.equal

let m s = Option.get (P.Mac.of_string s)

let a s = Option.get (P.Ipv4_addr.of_string s)

(* --- addresses -------------------------------------------------------------- *)

let test_mac_strings () =
  Alcotest.(check (option string)) "roundtrip" (Some "0a:1b:2c:3d:4e:5f")
    (Option.map P.Mac.to_string (P.Mac.of_string "0a:1b:2c:3d:4e:5f"));
  Alcotest.(check (option string)) "bad" None
    (Option.map P.Mac.to_string (P.Mac.of_string "nonsense"));
  Alcotest.(check (option string)) "short" None
    (Option.map P.Mac.to_string (P.Mac.of_string "0a:1b"));
  Alcotest.check mac "octets roundtrip" (m "12:34:56:78:9a:bc")
    (P.Mac.of_octets (P.Mac.to_octets (m "12:34:56:78:9a:bc")))

let test_mac_classes () =
  Alcotest.(check bool) "broadcast" true (P.Mac.is_broadcast P.Mac.broadcast);
  Alcotest.(check bool) "broadcast is multicast" true
    (P.Mac.is_multicast P.Mac.broadcast);
  Alcotest.(check bool) "lldp group is multicast" true
    (P.Mac.is_multicast P.Lldp.multicast_mac);
  Alcotest.(check bool) "unicast" false (P.Mac.is_multicast (m "02:00:00:00:00:01"))

let test_ipv4_strings () =
  Alcotest.(check (option string)) "roundtrip" (Some "10.1.2.3")
    (Option.map P.Ipv4_addr.to_string (P.Ipv4_addr.of_string "10.1.2.3"));
  Alcotest.(check (option string)) "range" None
    (Option.map P.Ipv4_addr.to_string (P.Ipv4_addr.of_string "256.0.0.1"));
  Alcotest.(check (option string)) "trailing junk" None
    (Option.map P.Ipv4_addr.to_string (P.Ipv4_addr.of_string "1.2.3"));
  Alcotest.check ip "octets" (a "192.168.0.1")
    (P.Ipv4_addr.of_octets (P.Ipv4_addr.to_octets (a "192.168.0.1")))

let test_prefixes () =
  let pfx = Option.get (P.Ipv4_addr.Prefix.of_string "10.0.0.0/8") in
  Alcotest.(check bool) "matches inside" true
    (P.Ipv4_addr.Prefix.matches pfx (a "10.200.3.4"));
  Alcotest.(check bool) "misses outside" false
    (P.Ipv4_addr.Prefix.matches pfx (a "11.0.0.1"));
  Alcotest.(check string) "normalizes base" "10.0.0.0/8"
    (P.Ipv4_addr.Prefix.to_string
       (Option.get (P.Ipv4_addr.Prefix.of_string "10.9.9.9/8")));
  Alcotest.(check string) "host prefix prints bare" "1.2.3.4"
    (P.Ipv4_addr.Prefix.to_string (P.Ipv4_addr.Prefix.host (a "1.2.3.4")));
  let narrower = Option.get (P.Ipv4_addr.Prefix.of_string "10.1.0.0/16") in
  Alcotest.(check bool) "subsumes" true (P.Ipv4_addr.Prefix.subsumes pfx narrower);
  Alcotest.(check bool) "not vice versa" false
    (P.Ipv4_addr.Prefix.subsumes narrower pfx);
  Alcotest.(check bool) "/0 matches all" true
    (P.Ipv4_addr.Prefix.matches P.Ipv4_addr.Prefix.all (a "8.8.8.8"))

(* --- frame roundtrips ----------------------------------------------------------- *)

let roundtrip frame =
  match P.Eth.of_wire (P.Eth.to_wire frame) with
  | Some decoded -> Alcotest.check eth "wire roundtrip" frame decoded
  | None -> Alcotest.fail "failed to decode the encoded frame"

let test_arp_roundtrip () =
  roundtrip
    (P.Builder.arp_request ~src_mac:(m "02:00:00:00:00:01") ~src_ip:(a "10.0.0.1")
       ~target:(a "10.0.0.2"));
  roundtrip
    (P.Eth.make ~src:(m "02:00:00:00:00:02") ~dst:(m "02:00:00:00:00:01")
       (P.Eth.Arp
          (P.Arp.reply ~sha:(m "02:00:00:00:00:02") ~spa:(a "10.0.0.2")
             ~tha:(m "02:00:00:00:00:01") ~tpa:(a "10.0.0.1"))))

let test_icmp_roundtrip () =
  roundtrip
    (P.Builder.ping ~src_mac:(m "02:00:00:00:00:01") ~dst_mac:(m "02:00:00:00:00:02")
       ~src_ip:(a "10.0.0.1") ~dst_ip:(a "10.0.0.2") ~id:7 ~seq:3)

let test_tcp_roundtrip () =
  roundtrip
    (P.Builder.tcp_syn ~src_mac:(m "02:00:00:00:00:01")
       ~dst_mac:(m "02:00:00:00:00:02") ~src_ip:(a "10.0.0.1")
       ~dst_ip:(a "10.0.0.2") ~src_port:43210 ~dst_port:22);
  roundtrip
    (P.Eth.make ~src:(m "02:00:00:00:00:01") ~dst:(m "02:00:00:00:00:02")
       (P.Eth.Ipv4
          (P.Ipv4.make ~src:(a "1.1.1.1") ~dst:(a "2.2.2.2")
             (P.Ipv4.Tcp
                (P.Tcp.make ~seq:77l ~ack_no:88l ~flags:P.Tcp.syn_ack
                   ~payload:"hello" ~src_port:80 ~dst_port:1024 ())))))

let test_udp_roundtrip () =
  roundtrip
    (P.Builder.udp ~src_mac:(m "02:00:00:00:00:01") ~dst_mac:(m "02:00:00:00:00:02")
       ~src_ip:(a "10.0.0.1") ~dst_ip:(a "10.0.0.2") ~src_port:5353 ~dst_port:53
       "query")

let test_lldp_roundtrip () =
  roundtrip (P.Builder.lldp ~src_mac:(m "02:00:00:00:00:01") ~dpid:42L ~port:3);
  let lldp = { P.Lldp.chassis_id = 0x1234567890abcdefL; port_id = 65535; ttl = 120 } in
  match P.Lldp.of_wire (P.Lldp.to_wire lldp) with
  | Some back -> Alcotest.(check bool) "lldp tlvs" true (P.Lldp.equal lldp back)
  | None -> Alcotest.fail "lldp decode failed"

let test_dhcp_roundtrip () =
  let dhcp =
    P.Dhcp.make ~msg_type:P.Dhcp.Offer ~xid:99l ~chaddr:(m "02:00:00:00:00:09")
      ~yiaddr:(a "10.0.0.9") ~siaddr:(a "10.0.255.254")
      ~server_id:(a "10.0.255.254") ~lease:3600l ~netmask:(a "255.255.0.0") ()
  in
  (match P.Dhcp.of_wire (P.Dhcp.to_wire dhcp) with
  | Some back -> Alcotest.(check bool) "dhcp fields" true (P.Dhcp.equal dhcp back)
  | None -> Alcotest.fail "dhcp decode failed");
  (* and embedded in a full frame *)
  roundtrip
    (P.Eth.make ~src:(m "02:00:00:00:00:09") ~dst:P.Mac.broadcast
       (P.Eth.Ipv4
          (P.Ipv4.make ~src:P.Ipv4_addr.any ~dst:P.Ipv4_addr.broadcast
             (P.Ipv4.Udp
                { P.Udp.src_port = 68; dst_port = 67; payload = P.Udp.Dhcp dhcp }))))

let test_vlan_roundtrip () =
  roundtrip
    (P.Eth.make
       ~vlan:{ P.Eth.vid = 42; pcp = 5 }
       ~src:(m "02:00:00:00:00:01") ~dst:(m "02:00:00:00:00:02")
       (P.Eth.Raw (0x9999, "opaque")))

let test_ipv4_checksum () =
  let frame =
    P.Builder.ping ~src_mac:(m "02:00:00:00:00:01") ~dst_mac:(m "02:00:00:00:00:02")
      ~src_ip:(a "10.0.0.1") ~dst_ip:(a "10.0.0.2") ~id:1 ~seq:1
  in
  let wire = Bytes.of_string (P.Eth.to_wire frame) in
  (* Corrupt one byte in the IP header (the TTL at eth(14)+8). *)
  Bytes.set wire 22 '\042';
  match P.Eth.of_wire (Bytes.to_string wire) with
  | Some { P.Eth.payload = P.Eth.Ipv4 _; _ } ->
    Alcotest.fail "corrupted header accepted"
  | Some { P.Eth.payload = P.Eth.Raw _; _ } -> () (* fell back to raw: good *)
  | Some _ | None -> ()

let test_ttl_decrement () =
  let ipkt = P.Ipv4.make ~ttl:2 ~src:(a "1.1.1.1") ~dst:(a "2.2.2.2") (P.Ipv4.Raw (99, "")) in
  (match P.Ipv4.decrement_ttl ipkt with
  | Some x -> Alcotest.(check int) "ttl 1" 1 x.P.Ipv4.ttl
  | None -> Alcotest.fail "should survive");
  let dying = { ipkt with P.Ipv4.ttl = 1 } in
  Alcotest.(check bool) "dies at 1" true (P.Ipv4.decrement_ttl dying = None)

let test_truncated_inputs () =
  Alcotest.(check bool) "empty" true (P.Eth.of_wire "" = None);
  Alcotest.(check bool) "short eth" true (P.Eth.of_wire "123456" = None);
  Alcotest.(check bool) "arp garbage" true (P.Arp.of_wire "xx" = None);
  Alcotest.(check bool) "dhcp garbage" true (P.Dhcp.of_wire "yy" = None);
  Alcotest.(check bool) "lldp garbage" true (P.Lldp.of_wire (String.make 3 'z') = None)

(* --- headers view ------------------------------------------------------------------ *)

let test_headers_of_tcp () =
  let frame =
    P.Builder.tcp_syn ~src_mac:(m "02:00:00:00:00:01")
      ~dst_mac:(m "02:00:00:00:00:02") ~src_ip:(a "10.0.0.1")
      ~dst_ip:(a "10.0.0.2") ~src_port:1234 ~dst_port:22
  in
  let h = P.Headers.of_eth ~in_port:7 frame in
  Alcotest.(check int) "in_port" 7 h.P.Headers.in_port;
  Alcotest.(check int) "dl_type" 0x0800 h.P.Headers.dl_type;
  Alcotest.(check (option int)) "proto" (Some 6) h.P.Headers.nw_proto;
  Alcotest.(check (option int)) "tp_dst" (Some 22) h.P.Headers.tp_dst;
  Alcotest.check (Alcotest.option ip) "nw_src" (Some (a "10.0.0.1")) h.P.Headers.nw_src

let test_headers_of_arp () =
  let frame =
    P.Builder.arp_request ~src_mac:(m "02:00:00:00:00:01") ~src_ip:(a "10.0.0.1")
      ~target:(a "10.0.0.2")
  in
  let h = P.Headers.of_eth ~in_port:1 frame in
  Alcotest.(check int) "dl_type arp" 0x0806 h.P.Headers.dl_type;
  Alcotest.(check (option int)) "opcode as proto" (Some 1) h.P.Headers.nw_proto;
  Alcotest.check (Alcotest.option ip) "target" (Some (a "10.0.0.2")) h.P.Headers.nw_dst

let test_headers_of_vlan () =
  let frame =
    P.Eth.make
      ~vlan:{ P.Eth.vid = 7; pcp = 3 }
      ~src:(m "02:00:00:00:00:01") ~dst:(m "02:00:00:00:00:02")
      (P.Eth.Raw (0x1234, ""))
  in
  let h = P.Headers.of_eth ~in_port:1 frame in
  Alcotest.(check (option int)) "vid" (Some 7) h.P.Headers.dl_vlan;
  Alcotest.(check (option int)) "pcp" (Some 3) h.P.Headers.dl_vlan_pcp;
  Alcotest.(check int) "inner ethertype" 0x1234 h.P.Headers.dl_type

(* --- builders ---------------------------------------------------------------------- *)

let test_pong_of () =
  let ping =
    P.Builder.ping ~src_mac:(m "02:00:00:00:00:01") ~dst_mac:(m "02:00:00:00:00:02")
      ~src_ip:(a "10.0.0.1") ~dst_ip:(a "10.0.0.2") ~id:9 ~seq:4
  in
  match P.Builder.pong_of ping with
  | None -> Alcotest.fail "no pong"
  | Some pong -> (
    Alcotest.check mac "pong dst" (m "02:00:00:00:00:01") pong.P.Eth.dst;
    match pong.P.Eth.payload with
    | P.Eth.Ipv4 { P.Ipv4.payload = P.Ipv4.Icmp icmp; src; dst; _ } ->
      Alcotest.(check bool) "reply kind" true (icmp.P.Icmp.kind = P.Icmp.Echo_reply);
      Alcotest.(check int) "seq preserved" 4 icmp.P.Icmp.seq;
      Alcotest.check ip "src swapped" (a "10.0.0.2") src;
      Alcotest.check ip "dst swapped" (a "10.0.0.1") dst
    | _ -> Alcotest.fail "not icmp")

let test_arp_reply_to () =
  let req =
    P.Builder.arp_request ~src_mac:(m "02:00:00:00:00:01") ~src_ip:(a "10.0.0.1")
      ~target:(a "10.0.0.2")
  in
  match P.Builder.arp_reply_to req ~mac:(m "02:00:00:00:00:02") with
  | None -> Alcotest.fail "no reply"
  | Some reply -> (
    match reply.P.Eth.payload with
    | P.Eth.Arp arp ->
      Alcotest.(check bool) "is reply" true (arp.P.Arp.op = P.Arp.Reply);
      Alcotest.check ip "spa is requested ip" (a "10.0.0.2") arp.P.Arp.spa;
      Alcotest.check mac "delivered to requester" (m "02:00:00:00:00:01")
        reply.P.Eth.dst
    | _ -> Alcotest.fail "not arp");
  Alcotest.(check bool) "reply-to-reply is None" true
    (P.Builder.arp_reply_to
       (Option.get (P.Builder.arp_reply_to req ~mac:(m "02:00:00:00:00:02")))
       ~mac:(m "02:00:00:00:00:02")
    = None)

(* --- properties --------------------------------------------------------------------- *)

let mac_gen = QCheck.Gen.(map P.Mac.of_int (int_bound ((1 lsl 48) - 1)))

let ip_gen = QCheck.Gen.(map (fun i -> P.Ipv4_addr.of_int32 (Int32.of_int i)) int)

let prop_mac_roundtrip =
  QCheck.Test.make ~name:"mac string roundtrip" ~count:300 (QCheck.make mac_gen)
    (fun mc -> P.Mac.of_string (P.Mac.to_string mc) = Some mc)

let prop_ip_roundtrip =
  QCheck.Test.make ~name:"ipv4 string roundtrip" ~count:300 (QCheck.make ip_gen)
    (fun addr -> P.Ipv4_addr.of_string (P.Ipv4_addr.to_string addr) = Some addr)

let prop_prefix_contains_base =
  QCheck.Test.make ~name:"prefix matches its own base" ~count:300
    (QCheck.make QCheck.Gen.(pair ip_gen (int_range 0 32)))
    (fun (addr, bits) ->
      let pfx = P.Ipv4_addr.Prefix.make addr bits in
      P.Ipv4_addr.Prefix.matches pfx pfx.P.Ipv4_addr.Prefix.base)

let frame_gen =
  let open QCheck.Gen in
  let mac2 = pair mac_gen mac_gen in
  let tcp =
    map2
      (fun (sp, dp) payload ->
        P.Ipv4.Tcp (P.Tcp.make ~payload ~src_port:sp ~dst_port:dp ()))
      (pair (int_bound 0xffff) (int_bound 0xffff))
      (string_size ~gen:printable (int_bound 32))
  in
  let udp =
    map2
      (fun (sp, dp) payload ->
        P.Ipv4.Udp { P.Udp.src_port = sp; dst_port = dp; payload = P.Udp.Data payload })
      (pair (int_range 1 9999) (int_range 1 9999))
      (string_size ~gen:printable (int_bound 32))
  in
  let icmp =
    map2
      (fun id seq -> P.Ipv4.Icmp { P.Icmp.kind = P.Icmp.Echo_request; id; seq; payload = "x" })
      (int_bound 0xffff) (int_bound 0xffff)
  in
  let ipv4 =
    map2
      (fun (src, dst) payload -> fun (smac, dmac) ->
        P.Eth.make ~src:smac ~dst:dmac (P.Eth.Ipv4 (P.Ipv4.make ~src ~dst payload)))
      (pair ip_gen ip_gen) (oneof [ tcp; udp; icmp ])
  in
  map2 (fun f macs -> f macs) ipv4 mac2

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"random ip frames roundtrip the wire" ~count:200
    (QCheck.make frame_gen) (fun frame ->
      match P.Eth.of_wire (P.Eth.to_wire frame) with
      | Some back -> P.Eth.equal frame back
      | None -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mac_roundtrip; prop_ip_roundtrip; prop_prefix_contains_base;
      prop_frame_roundtrip ]

let () =
  Alcotest.run "packet"
    [ ( "addresses",
        [ Alcotest.test_case "mac strings" `Quick test_mac_strings;
          Alcotest.test_case "mac classes" `Quick test_mac_classes;
          Alcotest.test_case "ipv4 strings" `Quick test_ipv4_strings;
          Alcotest.test_case "prefixes" `Quick test_prefixes ] );
      ( "roundtrips",
        [ Alcotest.test_case "arp" `Quick test_arp_roundtrip;
          Alcotest.test_case "icmp" `Quick test_icmp_roundtrip;
          Alcotest.test_case "tcp" `Quick test_tcp_roundtrip;
          Alcotest.test_case "udp" `Quick test_udp_roundtrip;
          Alcotest.test_case "lldp" `Quick test_lldp_roundtrip;
          Alcotest.test_case "dhcp" `Quick test_dhcp_roundtrip;
          Alcotest.test_case "vlan" `Quick test_vlan_roundtrip;
          Alcotest.test_case "checksum" `Quick test_ipv4_checksum;
          Alcotest.test_case "ttl" `Quick test_ttl_decrement;
          Alcotest.test_case "truncated" `Quick test_truncated_inputs ] );
      ( "headers",
        [ Alcotest.test_case "tcp headers" `Quick test_headers_of_tcp;
          Alcotest.test_case "arp headers" `Quick test_headers_of_arp;
          Alcotest.test_case "vlan headers" `Quick test_headers_of_vlan ] );
      ( "builders",
        [ Alcotest.test_case "pong" `Quick test_pong_of;
          Alcotest.test_case "arp reply" `Quick test_arp_reply_to ] );
      "properties", qcheck_cases ]
