(* The dentry + attribute cache must be semantically invisible: every
   operation returns the same result and emits the same ops with the
   cache on or off — the cache may only change the Cost counters. These
   tests chase the invalidation edges where a stale entry would show
   (rename over a cached prefix, symlink retarget, replay on a replica,
   readonly flips, negative-entry expiry) and finish with a scripted
   cache-on vs cache-off equivalence check over errno results and
   fsnotify event sequences. *)

module Fs = Vfs.Fs
module Path = Vfs.Path
module Cred = Vfs.Cred
module Cost = Vfs.Cost

let root = Cred.root

let alice = Cred.make ~uid:100 ~gid:100 ()

let p = Path.of_string_exn

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error %s" what (Vfs.Errno.to_string e)

let check_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" what (Vfs.Errno.to_string expected)
  | Error e ->
    Alcotest.(check string) what (Vfs.Errno.to_string expected) (Vfs.Errno.to_string e)

let fresh () = Fs.create ()

(* --- hit/miss accounting --------------------------------------------------- *)

let test_warm_lookup_hits () =
  let fs = fresh () in
  check_ok "mkdir" (Fs.mkdir_p fs ~cred:root (p "/a/b/c/d/e"));
  check_ok "write" (Fs.write_file fs ~cred:root (p "/a/b/c/d/e/f") "x");
  let cost = Fs.cost fs in
  Cost.reset cost;
  ignore (check_ok "cold read" (Fs.read_file fs ~cred:root (p "/a/b/c/d/e/f")));
  let cold = Cost.components cost in
  Alcotest.(check bool) "cold lookup walks every component" true (cold >= 6);
  for _ = 1 to 10 do
    ignore (check_ok "warm read" (Fs.read_file fs ~cred:root (p "/a/b/c/d/e/f")))
  done;
  let warm = Cost.components cost - cold in
  (* the acceptance bar: warm resolution >= 5x fewer component walks *)
  Alcotest.(check bool)
    (Printf.sprintf "warm walks (%d) at least 5x below cold (%d)" warm cold)
    true (warm * 5 <= cold);
  Alcotest.(check bool) "dentry hits recorded" true (Cost.dentry_hits cost >= 10);
  Alcotest.(check bool) "attr hits recorded" true (Cost.attr_hits cost >= 9)

let test_negative_entry_expiry () =
  let fs = fresh () in
  check_ok "mkdir" (Fs.mkdir fs ~cred:root (p "/a"));
  let cost = Fs.cost fs in
  Cost.reset cost;
  check_err "cold miss" Vfs.Errno.ENOENT (Fs.stat fs ~cred:root (p "/a/ghost"));
  let cold = Cost.components cost in
  check_err "warm miss" Vfs.Errno.ENOENT (Fs.stat fs ~cred:root (p "/a/ghost"));
  Alcotest.(check int) "negative entry answers without walking" cold
    (Cost.components cost);
  Alcotest.(check bool) "negative hit counted" true (Cost.negative_hits cost >= 1);
  (* create_file must kill the negative entry *)
  check_ok "create" (Fs.create_file fs ~cred:root (p "/a/ghost"));
  ignore (check_ok "visible after create" (Fs.stat fs ~cred:root (p "/a/ghost")))

(* --- namespace invalidation ------------------------------------------------ *)

let test_rename_over_cached_prefix () =
  let fs = fresh () in
  check_ok "mkdir" (Fs.mkdir_p fs ~cred:root (p "/a/b"));
  check_ok "write" (Fs.write_file fs ~cred:root (p "/a/b/f") "one");
  Alcotest.(check string) "cached" "one"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/a/b/f")));
  check_ok "rename" (Fs.rename fs ~cred:root ~src:(p "/a") ~dst:(p "/z"));
  check_err "old prefix gone" Vfs.Errno.ENOENT
    (Fs.read_file fs ~cred:root (p "/a/b/f"));
  Alcotest.(check string) "new prefix live" "one"
    (check_ok "read moved" (Fs.read_file fs ~cred:root (p "/z/b/f")));
  (* and back: the ENOENT just cached for /a/b/f must die with the
     destination-prefix invalidation *)
  check_ok "rename back" (Fs.rename fs ~cred:root ~src:(p "/z") ~dst:(p "/a"));
  Alcotest.(check string) "negative killed by rename dst" "one"
    (check_ok "read back" (Fs.read_file fs ~cred:root (p "/a/b/f")))

let test_rename_onto_cached_destination () =
  let fs = fresh () in
  check_ok "mkdir" (Fs.mkdir fs ~cred:root (p "/d"));
  check_ok "write src" (Fs.write_file fs ~cred:root (p "/d/src") "S");
  check_ok "write dst" (Fs.write_file fs ~cred:root (p "/d/dst") "D");
  Alcotest.(check string) "dst cached" "D"
    (check_ok "read dst" (Fs.read_file fs ~cred:root (p "/d/dst")));
  check_ok "rename" (Fs.rename fs ~cred:root ~src:(p "/d/src") ~dst:(p "/d/dst"));
  Alcotest.(check string) "replacement visible" "S"
    (check_ok "read dst again" (Fs.read_file fs ~cred:root (p "/d/dst")));
  check_err "src gone" Vfs.Errno.ENOENT (Fs.read_file fs ~cred:root (p "/d/src"))

let test_symlink_retarget () =
  let fs = fresh () in
  check_ok "mkdir t1" (Fs.mkdir fs ~cred:root (p "/t1"));
  check_ok "mkdir t2" (Fs.mkdir fs ~cred:root (p "/t2"));
  check_ok "write t1" (Fs.write_file fs ~cred:root (p "/t1/x") "one");
  check_ok "write t2" (Fs.write_file fs ~cred:root (p "/t2/x") "two");
  check_ok "link" (Fs.symlink fs ~cred:root ~target:"/t1" (p "/ln"));
  (* resolutions through the link are never cached, so the retarget
     cannot leave an alias behind *)
  Alcotest.(check string) "via link" "one"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/ln/x")));
  Alcotest.(check string) "via link again" "one"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/ln/x")));
  check_ok "unlink" (Fs.unlink fs ~cred:root (p "/ln"));
  check_ok "relink" (Fs.symlink fs ~cred:root ~target:"/t2" (p "/ln"));
  Alcotest.(check string) "retargeted" "two"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/ln/x")));
  (* the canonical path itself stays warm and correct *)
  Alcotest.(check string) "canonical untouched" "one"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/t1/x")))

let test_rmdir_recursive_invalidates () =
  let fs = fresh () in
  check_ok "mkdir" (Fs.mkdir_p fs ~cred:root (p "/top/sub"));
  check_ok "write" (Fs.write_file fs ~cred:root (p "/top/sub/f") "x");
  ignore (check_ok "cache it" (Fs.stat fs ~cred:root (p "/top/sub/f")));
  check_ok "rmdir -r" (Fs.rmdir ~recursive:true fs ~cred:root (p "/top"));
  check_err "deep path gone" Vfs.Errno.ENOENT
    (Fs.stat fs ~cred:root (p "/top/sub/f"));
  check_err "top gone" Vfs.Errno.ENOENT (Fs.stat fs ~cred:root (p "/top"))

(* --- attribute invalidation ------------------------------------------------ *)

let test_chmod_invalidates_traversal () =
  let fs = fresh () in
  check_ok "mkdir" (Fs.mkdir fs ~cred:root (p "/priv"));
  check_ok "write" (Fs.write_file fs ~cred:root (p "/priv/f") "secret");
  check_ok "chmod f" (Fs.chmod fs ~cred:root (p "/priv/f") 0o644);
  Alcotest.(check string) "alice reads while open" "secret"
    (check_ok "read" (Fs.read_file fs ~cred:alice (p "/priv/f")));
  (* closing the x bit on the directory must evict the cached positive
     resolution of everything below it *)
  check_ok "close dir" (Fs.chmod fs ~cred:root (p "/priv") 0o700);
  check_err "alice locked out" Vfs.Errno.EACCES
    (Fs.read_file fs ~cred:alice (p "/priv/f"));
  check_ok "reopen dir" (Fs.chmod fs ~cred:root (p "/priv") 0o755);
  Alcotest.(check string) "alice back in" "secret"
    (check_ok "read" (Fs.read_file fs ~cred:alice (p "/priv/f")))

let test_chown_invalidates_decision () =
  let fs = fresh () in
  check_ok "write" (Fs.write_file fs ~cred:root (p "/f") "x");
  check_ok "chmod" (Fs.chmod fs ~cred:root (p "/f") 0o600);
  check_err "alice denied (decision cached)" Vfs.Errno.EACCES
    (Fs.read_file fs ~cred:alice (p "/f"));
  check_ok "chown to alice" (Fs.chown fs ~cred:root (p "/f") ~uid:100 ~gid:100);
  Alcotest.(check string) "alice owns it now" "x"
    (check_ok "read" (Fs.read_file fs ~cred:alice (p "/f")))

let test_set_acl_invalidates_decision () =
  let fs = fresh () in
  check_ok "write" (Fs.write_file fs ~cred:root (p "/f") "x");
  check_ok "chmod" (Fs.chmod fs ~cred:root (p "/f") 0o600);
  check_err "alice denied" Vfs.Errno.EACCES (Fs.read_file fs ~cred:alice (p "/f"));
  let acl =
    Vfs.Acl.add
      (Vfs.Acl.add Vfs.Acl.empty { Vfs.Acl.tag = Vfs.Acl.User 100; perms = 4 })
      { Vfs.Acl.tag = Vfs.Acl.Mask; perms = 7 }
  in
  check_ok "grant via acl" (Fs.set_acl fs ~cred:root (p "/f") acl);
  Alcotest.(check string) "acl read" "x"
    (check_ok "read" (Fs.read_file fs ~cred:alice (p "/f")));
  check_ok "revoke acl" (Fs.set_acl fs ~cred:root (p "/f") Vfs.Acl.empty);
  check_err "alice denied again" Vfs.Errno.EACCES
    (Fs.read_file fs ~cred:alice (p "/f"))

(* --- replay on a replica --------------------------------------------------- *)

let test_replay_keeps_replica_honest () =
  let primary = fresh () in
  let replica = fresh () in
  (* pipe the primary's op stream straight into the replica, the way the
     DFS layer replicates, without re-emitting (~emit:false) *)
  ignore
    (Fs.subscribe primary (fun op ->
         ignore (Fs.replay ~emit:false replica op)));
  check_ok "mkdir" (Fs.mkdir primary ~cred:root (p "/a"));
  check_ok "write" (Fs.write_file primary ~cred:root (p "/a/f") "v1");
  (* warm the replica's cache *)
  Alcotest.(check string) "replica serves" "v1"
    (check_ok "read" (Fs.read_file replica ~cred:root (p "/a/f")));
  check_err "replica negative" Vfs.Errno.ENOENT
    (Fs.read_file replica ~cred:root (p "/a/g"));
  Alcotest.(check string) "alice too" "v1"
    (check_ok "read" (Fs.read_file replica ~cred:alice (p "/a/f")));
  (* structural op: replayed create must kill the negative entry *)
  check_ok "create g" (Fs.write_file primary ~cred:root (p "/a/g") "new");
  Alcotest.(check string) "negative expired on replica" "new"
    (check_ok "read" (Fs.read_file replica ~cred:root (p "/a/g")));
  (* attribute op: replay applies chmod inline, bypassing [chmod] — the
     replica's cached traversal + permission decisions must still die *)
  check_ok "chmod" (Fs.chmod primary ~cred:root (p "/a") 0o700);
  check_err "alice locked out of replica" Vfs.Errno.EACCES
    (Fs.read_file replica ~cred:alice (p "/a/f"));
  (* rename: the replica's cached old path must move *)
  check_ok "rename" (Fs.rename primary ~cred:root ~src:(p "/a") ~dst:(p "/b"));
  check_err "old path gone on replica" Vfs.Errno.ENOENT
    (Fs.read_file replica ~cred:root (p "/a/f"));
  Alcotest.(check string) "new path live on replica" "v1"
    (check_ok "read" (Fs.read_file replica ~cred:root (p "/b/f")));
  (* unlink *)
  check_ok "unlink" (Fs.unlink primary ~cred:root (p "/b/f"));
  check_err "unlinked on replica" Vfs.Errno.ENOENT
    (Fs.read_file replica ~cred:root (p "/b/f"))

(* --- readonly flips -------------------------------------------------------- *)

let test_readonly_flips () =
  let fs = fresh () in
  check_ok "write" (Fs.write_file fs ~cred:root (p "/f") "x");
  Alcotest.(check string) "warm" "x"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/f")));
  Fs.set_readonly fs true;
  (* lookups keep working warm; mutations fail with EROFS, and the
     failure must not poison the cache *)
  Alcotest.(check string) "read under readonly" "x"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/f")));
  Alcotest.(check bool) "exists under readonly" true (Fs.exists fs ~cred:root (p "/f"));
  check_err "write blocked" Vfs.Errno.EROFS
    (Fs.write_file fs ~cred:root (p "/f") "y");
  check_err "create blocked" Vfs.Errno.EROFS
    (Fs.create_file fs ~cred:root (p "/g"));
  Fs.set_readonly fs false;
  check_ok "write after flip back" (Fs.write_file fs ~cred:root (p "/f") "y");
  Alcotest.(check string) "new content" "y"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/f")));
  check_err "no stale entry for /g" Vfs.Errno.ENOENT
    (Fs.read_file fs ~cred:root (p "/g"));
  check_ok "create after flip back" (Fs.create_file fs ~cred:root (p "/g"));
  Alcotest.(check bool) "g exists" true (Fs.exists fs ~cred:root (p "/g"))

(* --- enable/disable -------------------------------------------------------- *)

let test_disable_flushes () =
  let fs = fresh () in
  check_ok "write" (Fs.write_file fs ~cred:root (p "/a")  "x");
  ignore (check_ok "warm" (Fs.read_file fs ~cred:root (p "/a")));
  Alcotest.(check bool) "enabled by default" true (Fs.dcache_enabled fs);
  Fs.set_dcache_enabled fs false;
  Alcotest.(check bool) "disabled" false (Fs.dcache_enabled fs);
  let cost = Fs.cost fs in
  Cost.reset cost;
  Alcotest.(check string) "still correct" "x"
    (check_ok "read" (Fs.read_file fs ~cred:root (p "/a")));
  Alcotest.(check int) "no hits while disabled" 0
    (Cost.dentry_hits cost + Cost.attr_hits cost + Cost.negative_hits cost);
  Fs.set_dcache_enabled fs true;
  ignore (check_ok "warms again" (Fs.read_file fs ~cred:root (p "/a")));
  ignore (check_ok "hit" (Fs.read_file fs ~cred:root (p "/a")));
  Alcotest.(check bool) "hits again" true (Cost.dentry_hits cost >= 1)

(* --- cache-on vs cache-off equivalence ------------------------------------- *)

(* A workload touching every invalidation edge; every step's outcome is
   recorded as a string, and a recursive fsnotify watch on / records the
   emitted event sequence. Cache on and cache off must produce
   bit-identical traces. *)
let run_equivalence_script fs =
  let n = Fsnotify.Notifier.create fs in
  ignore (Fsnotify.Notifier.add_watch ~recursive:true n Path.root Fsnotify.Notifier.all);
  let out = ref [] in
  let record what r =
    let s =
      match r with Ok () -> "ok" | Error e -> Vfs.Errno.to_string e
    in
    out := (what ^ ":" ^ s) :: !out
  in
  let u r = Result.map (fun _ -> ()) r in
  record "mkdir" (Fs.mkdir_p fs ~cred:root (p "/net/sw1/flows"));
  record "write" (Fs.write_file fs ~cred:root (p "/net/sw1/flows/f1") "a");
  record "read" (u (Fs.read_file fs ~cred:root (p "/net/sw1/flows/f1")));
  record "read-again" (u (Fs.read_file fs ~cred:root (p "/net/sw1/flows/f1")));
  record "miss" (u (Fs.stat fs ~cred:root (p "/net/sw1/flows/nope")));
  record "miss-again" (u (Fs.stat fs ~cred:root (p "/net/sw1/flows/nope")));
  record "fill-miss" (Fs.write_file fs ~cred:root (p "/net/sw1/flows/nope") "b");
  record "read-filled" (u (Fs.read_file fs ~cred:root (p "/net/sw1/flows/nope")));
  record "alice-denied" (u (Fs.read_file fs ~cred:alice (p "/net/sw1/flows/f1")));
  record "open-up" (Fs.chmod fs ~cred:root (p "/net/sw1/flows/f1") 0o644);
  record "alice-read" (u (Fs.read_file fs ~cred:alice (p "/net/sw1/flows/f1")));
  record "lock-dir" (Fs.chmod fs ~cred:root (p "/net/sw1") 0o700);
  record "alice-locked" (u (Fs.read_file fs ~cred:alice (p "/net/sw1/flows/f1")));
  record "unlock-dir" (Fs.chmod fs ~cred:root (p "/net/sw1") 0o755);
  record "alice-back" (u (Fs.read_file fs ~cred:alice (p "/net/sw1/flows/f1")));
  record "rename" (Fs.rename fs ~cred:root ~src:(p "/net/sw1") ~dst:(p "/net/sw2"));
  record "old-gone" (u (Fs.read_file fs ~cred:root (p "/net/sw1/flows/f1")));
  record "new-live" (u (Fs.read_file fs ~cred:root (p "/net/sw2/flows/f1")));
  record "symlink" (Fs.symlink fs ~cred:root ~target:"/net/sw2" (p "/net/sw1"));
  record "via-link" (u (Fs.read_file fs ~cred:root (p "/net/sw1/flows/f1")));
  record "unlink-link" (Fs.unlink fs ~cred:root (p "/net/sw1"));
  record "link-gone" (u (Fs.read_file fs ~cred:root (p "/net/sw1/flows/f1")));
  Fs.set_readonly fs true;
  record "ro-write" (Fs.write_file fs ~cred:root (p "/net/sw2/flows/f1") "c");
  record "ro-read" (u (Fs.read_file fs ~cred:root (p "/net/sw2/flows/f1")));
  Fs.set_readonly fs false;
  record "rw-write" (Fs.write_file fs ~cred:root (p "/net/sw2/flows/f1") "c");
  record "replay"
    (Fs.replay ~emit:true fs
       (Vfs.Op.Chmod { path = p "/net/sw2/flows/f1"; mode = 0o600 }));
  record "alice-replayed-out" (u (Fs.read_file fs ~cred:alice (p "/net/sw2/flows/f1")));
  record "rmdir" (Fs.rmdir ~recursive:true fs ~cred:root (p "/net/sw2"));
  record "all-gone" (u (Fs.stat fs ~cred:root (p "/net/sw2/flows/f1")));
  let events =
    List.map
      (Format.asprintf "%a" Fsnotify.Event.pp)
      (Fsnotify.Notifier.read_events n)
  in
  List.rev !out, events

let test_equivalence_cache_on_off () =
  let on = fresh () in
  let off = fresh () in
  Fs.set_dcache_enabled off false;
  let results_on, events_on = run_equivalence_script on in
  let results_off, events_off = run_equivalence_script off in
  Alcotest.(check (list string)) "identical errno results" results_off results_on;
  Alcotest.(check (list string)) "identical fsnotify event sequences" events_off
    events_on;
  Alcotest.(check bool) "events actually flowed" true (List.length events_on > 10)

let () =
  Alcotest.run "dcache"
    [ ( "accounting",
        [ Alcotest.test_case "warm lookups hit" `Quick test_warm_lookup_hits;
          Alcotest.test_case "negative entry expiry" `Quick
            test_negative_entry_expiry ] );
      ( "namespace invalidation",
        [ Alcotest.test_case "rename over cached prefix" `Quick
            test_rename_over_cached_prefix;
          Alcotest.test_case "rename onto cached destination" `Quick
            test_rename_onto_cached_destination;
          Alcotest.test_case "symlink retarget" `Quick test_symlink_retarget;
          Alcotest.test_case "recursive rmdir" `Quick
            test_rmdir_recursive_invalidates ] );
      ( "attribute invalidation",
        [ Alcotest.test_case "chmod" `Quick test_chmod_invalidates_traversal;
          Alcotest.test_case "chown" `Quick test_chown_invalidates_decision;
          Alcotest.test_case "set_acl" `Quick test_set_acl_invalidates_decision ] );
      ( "replication",
        [ Alcotest.test_case "replay ~emit:false on a replica" `Quick
            test_replay_keeps_replica_honest ] );
      ( "modes",
        [ Alcotest.test_case "readonly flips" `Quick test_readonly_flips;
          Alcotest.test_case "disable flushes" `Quick test_disable_flushes ] );
      ( "equivalence",
        [ Alcotest.test_case "cache on = cache off" `Quick
            test_equivalence_cache_on_off ] ) ]
