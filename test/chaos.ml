(* Deterministic chaos harness (tentpole of the fault-injection PR).

   [run ~seed profile] boots a controller over a linear topology, lets
   it handshake cleanly, then installs the profile's fault policy on
   both ends of every control channel — each endpoint's PRNG stream is
   derived from [seed], so the whole run is a pure function of
   (seed, profile). A flow create/delete workload races the faults;
   afterwards the faults are cleared, every channel is bounced once
   (the clean-room reconnect), and the run must converge:

   - every driver back to [Connected], with at least one resync;
   - per switch, hardware flow table ≡ committed file-system flows
     (compared as sorted (match, priority) sets, lookup-side expiry
     applied);
   - when a [policy] pair is given, the policy engine runs too: the
     first text is installed before the turbulence, the second is
     written mid-workload so the recompile + diffed install races the
     faults, and afterwards every switch's [pol_*] flows must equal
     the engine's compiled desired rules (which, with the invariant
     above, gives hardware ≡ file system ≡ compiled policy);
   - applications still making progress (no wedged scheduler entry);
   - no unbounded chunk build-up in either channel direction.

   Failures print the seed and profile, which reproduce the run
   exactly (see DESIGN.md "Reproducing chaos failures"). *)

module N = Netsim
module D = Driver
module Y = Yancfs
module OF = Openflow
module CC = N.Control_channel

let cred = Vfs.Cred.root

type profile = {
  pname : string;
  policy : CC.Faults.policy;
  (* scripted hard disconnects, relative to the start of the chaos
     phase (controller-side endpoint only) *)
  disconnect_at : float list;
}

let drop_profile =
  { pname = "drop";
    policy = { CC.Faults.default with CC.Faults.drop = 0.25; truncate = 0.05 };
    disconnect_at = [] }

let reorder_profile =
  { pname = "reorder";
    policy =
      { CC.Faults.default with
        CC.Faults.reorder = 0.3; duplicate = 0.15; delay = 0.2; delay_s = 0.08 };
    disconnect_at = [] }

let disconnect_profile =
  { pname = "disconnect";
    policy = { CC.Faults.default with CC.Faults.reconnect_after = 0.15 };
    disconnect_at = [ 0.5; 1.3 ] }

let profiles = [ drop_profile; reorder_profile; disconnect_profile ]

(* Aggressive timers so a whole chaos run stays under a few simulated
   seconds; max_retries is deliberately generous — going [Dead] during
   turbulence is not the behaviour under test here. *)
let fast_tuning =
  { D.Driver_intf.default_tuning with
    D.Driver_intf.keepalive_interval = 0.1;
    liveness_timeout = 0.35;
    backoff_base = 0.05;
    backoff_cap = 0.4;
    max_retries = 200 }

type outcome = {
  disconnects : int;
  retries : int;
  resyncs : int;
  resync_installs : int;
  resync_deletes : int;
  keepalives : int;
  faults_injected : int;
}

let flow_name i = Printf.sprintf "chaos_%02d" i

let sorted_rules l = List.sort_uniq compare l

let fs_rules yfs swname =
  List.filter_map
    (fun fname ->
      match Y.Yanc_fs.read_flow yfs ~cred ~switch:swname fname with
      | Ok (f : Y.Flowdir.t) -> Some (f.of_match, f.priority)
      | Error _ -> None)
    (Y.Yanc_fs.flow_names yfs ~cred swname)

let hw_rules sw ~now =
  List.map
    (fun ((_, e) : int * N.Flow_table.entry) -> (e.of_match, e.priority))
    (N.Sim_switch.flow_stats sw ~now ~of_match:OF.Of_match.any ())

let app_iterations ctl name =
  match List.assoc_opt name (Yanc.Scheduler.stats (Yanc.Controller.scheduler ctl))
  with
  | Some (s : Yanc.Scheduler.app_stats) -> s.iterations
  | None -> 0

let run ?(switches = 3) ?(flows = 9) ?policy ~seed profile =
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Alcotest.failf "chaos seed=%d profile=%s: %s" seed profile.pname s)
      fmt
  in
  let built = N.Topo_gen.linear ~hosts_per_switch:1 switches in
  let net = built.N.Topo_gen.net in
  let ctl = Yanc.Controller.create ~tuning:fast_tuning ~seed ~net () in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  let topo = Apps.Topology.create ~probe_interval:0.5 yfs in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  let mgr = Yanc.Controller.manager ctl in
  let dpids = D.Manager.attached mgr in
  let write_policy text =
    match
      Vfs.Fs.write_file (Yanc.Controller.fs ctl) ~cred
        (Y.Layout.policy_file "chaos") text
    with
    | Ok () -> ()
    | Error e -> fail "write policy file: %s" (Vfs.Errno.to_string e)
  in
  let engine =
    match policy with
    | None -> None
    | Some (initial, _) ->
      let eng = Yanc.Controller.add_policy_engine ctl in
      write_policy initial;
      Some eng
  in
  (* clean boot: everything handshakes before the turbulence starts *)
  Yanc.Controller.run_for ~tick:0.02 ctl 0.3;
  List.iter
    (fun (dpid, st) ->
      if st <> D.Driver_intf.Connected then
        fail "dpid %Ld not connected after fault-free boot (%s)" dpid
          (D.Driver_intf.status_to_string st))
    (D.Manager.statuses mgr);
  let chaos_start = Yanc.Controller.now ctl in
  let endpoints =
    List.map
      (fun dpid ->
        match D.Manager.channel mgr ~dpid with
        | Some pair -> (dpid, pair)
        | None -> fail "dpid %Ld has no channel" dpid)
      dpids
  in
  (* Install the fault policies: each endpoint gets its own PRNG stream
     derived from the run seed, so both directions misbehave but a rerun
     misbehaves identically. *)
  List.iteri
    (fun i (_, (sw_end, ctl_end)) ->
      let script =
        List.map
          (fun at ->
            { CC.Faults.at = chaos_start +. at; action = CC.Faults.Disconnect })
          profile.disconnect_at
      in
      CC.set_faults ctl_end
        (Some
           (CC.Faults.create ~policy:profile.policy ~script
              ~seed:(seed + (2 * i)) ()));
      CC.set_faults sw_end
        (Some
           (CC.Faults.create ~policy:profile.policy ~seed:(seed + (2 * i) + 1) ())))
    endpoints;
  (* The workload races the faults: committed flows must eventually
     reach hardware no matter what the channel did to the flow_mods. *)
  let names =
    List.map
      (fun dpid ->
        match D.Manager.switch_name mgr ~dpid with
        | Some n -> n
        | None -> fail "dpid %Ld has no switch name" dpid)
      dpids
  in
  let nsw = List.length names in
  for i = 0 to flows - 1 do
    Yanc.Controller.run_for ~tick:0.02 ctl 0.2;
    (* mid-workload policy rewrite: the recompile and its diffed
       install run while the channels are still misbehaving (and, for
       the disconnect profile, while scripted severs land) *)
    if i = flows / 2 then
      Option.iter (fun (_, rewrite) -> write_policy rewrite) policy;
    let swname = List.nth names (i mod nsw) in
    let flow =
      { Y.Flowdir.default with
        Y.Flowdir.of_match =
          { OF.Of_match.any with OF.Of_match.tp_dst = Some (2000 + i) };
        actions = [ OF.Action.Output (OF.Action.Physical 1) ];
        priority = 100 + i }
    in
    (match Y.Yanc_fs.create_flow yfs ~cred ~switch:swname ~name:(flow_name i) flow
     with
    | Ok () -> ()
    | Error e -> fail "create_flow %s: %s" (flow_name i) (Vfs.Errno.to_string e));
    (* every third flow is deleted two rounds after it was created, so
       deletions race the faults too *)
    if i >= 2 && i mod 3 = 2 then
      ignore
        (Y.Yanc_fs.delete_flow yfs ~cred ~switch:(List.nth names ((i - 2) mod nsw))
           (flow_name (i - 2)))
  done;
  Yanc.Controller.run_for ~tick:0.02 ctl 0.4;
  let iterations_mid = app_iterations ctl Apps.Topology.app_name in
  let faults_injected =
    List.fold_left
      (fun acc (_, (sw_end, ctl_end)) ->
        let tally e =
          let s = CC.fault_stats e in
          s.CC.dropped + s.CC.duplicated + s.CC.reordered + s.CC.truncated
          + s.CC.delayed
        in
        acc + tally sw_end + tally ctl_end)
      0 endpoints
  in
  (* Turbulence over. Clear the policies and bounce every channel once:
     a lossy-but-never-disconnected profile can have swallowed a
     flow_mod without ever tripping liveness, and only a fresh
     handshake + resync is guaranteed to repair that. *)
  List.iter
    (fun (_, (sw_end, ctl_end)) ->
      CC.set_faults sw_end None;
      CC.set_faults ctl_end None;
      CC.disconnect ctl_end)
    endpoints;
  let converged =
    Yanc.Controller.run_until ~tick:0.02 ~timeout:30. ctl (fun () ->
        List.for_all
          (fun (_, st) -> st = D.Driver_intf.Connected)
          (D.Manager.statuses mgr)
        && List.for_all
             (fun dpid ->
               match D.Manager.link_counters mgr ~dpid with
               | Some (c : D.Driver_intf.link_counters) -> c.resyncs >= 1
               | None -> false)
             dpids)
  in
  if not converged then
    fail "did not reconverge: statuses [%s]"
      (String.concat "; "
         (List.map
            (fun (d, s) ->
              Printf.sprintf "%Ld:%s" d (D.Driver_intf.status_to_string s))
            (D.Manager.statuses mgr)));
  (* one settle beat so the last resync's repairs reach hardware *)
  Yanc.Controller.run_for ~tick:0.02 ctl 0.5;
  (* Invariant 1: per switch, hardware ≡ file system. *)
  let now = Yanc.Controller.now ctl in
  List.iter2
    (fun dpid swname ->
      let sw =
        match N.Network.switch net dpid with
        | Some sw -> sw
        | None -> fail "dpid %Ld vanished from the network" dpid
      in
      let fs = sorted_rules (fs_rules yfs swname) in
      let hw = sorted_rules (hw_rules sw ~now) in
      if fs <> hw then
        fail "%s diverged after convergence: fs has %d rules, hardware %d"
          swname (List.length fs) (List.length hw))
    dpids names;
  (* Invariant 1b: the compiled policy survived the turbulence — every
     switch's pol_* flows are exactly the engine's desired rules.
     Together with invariant 1 this closes the chain
     hardware ≡ file system ≡ compiled policy. *)
  (match engine with
  | None -> ()
  | Some eng ->
    let want =
      sorted_rules
        (List.map
           (fun (d : Policy.Compile.flow_rule) ->
             (d.name, d.of_match, d.actions))
           (Apps.Policy_engine.desired eng))
    in
    if want = [] then fail "policy compiled to no rules";
    List.iter
      (fun swname ->
        let got =
          List.filter_map
            (fun fname ->
              let p = Apps.Policy_engine.flow_prefix in
              if
                String.length fname > String.length p
                && String.sub fname 0 (String.length p) = p
              then
                match Y.Yanc_fs.read_flow yfs ~cred ~switch:swname fname with
                | Ok (f : Y.Flowdir.t) -> Some (fname, f.of_match, f.actions)
                | Error e -> fail "read policy flow %s/%s: %s" swname fname e
              else None)
            (Y.Yanc_fs.flow_names yfs ~cred swname)
          |> sorted_rules
        in
        if got <> want then
          fail "%s: policy flows diverged (%d in fs, %d desired)" swname
            (List.length got) (List.length want))
      names);
  (* Invariant 2: the application kept running through the failures. *)
  let iterations_end = app_iterations ctl Apps.Topology.app_name in
  if iterations_end <= iterations_mid then
    fail "topology app wedged: %d iterations before convergence, %d after"
      iterations_mid iterations_end;
  (* Invariant 3: no event-queue leak — nothing should still be
     accumulating in either channel direction once the system is calm. *)
  List.iter
    (fun (dpid, (sw_end, ctl_end)) ->
      let p = CC.pending sw_end + CC.pending ctl_end in
      if p > 8 then fail "dpid %Ld: %d chunks still queued after convergence"
          dpid p)
    endpoints;
  let sum f =
    List.fold_left
      (fun acc dpid ->
        match D.Manager.link_counters mgr ~dpid with
        | Some c -> acc + f c
        | None -> acc)
      0 dpids
  in
  { disconnects = sum (fun (c : D.Driver_intf.link_counters) -> c.disconnects);
    retries = sum (fun c -> c.D.Driver_intf.retries);
    resyncs = sum (fun c -> c.D.Driver_intf.resyncs);
    resync_installs = sum (fun c -> c.D.Driver_intf.resync_installs);
    resync_deletes = sum (fun c -> c.D.Driver_intf.resync_deletes);
    keepalives = sum (fun c -> c.D.Driver_intf.keepalives_sent);
    faults_injected }
