(* Tests for the inotify-like notifier (paper §5.2). *)

module Fs = Vfs.Fs
module Path = Vfs.Path
module N = Fsnotify.Notifier
module E = Fsnotify.Event

let cred = Vfs.Cred.root

let p = Path.of_string_exn

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.Errno.to_string e)

let kinds evs = List.map (fun (e : E.t) -> E.kind_to_string e.kind) evs

let setup () =
  let fs = Fs.create () in
  let n = N.create fs in
  fs, n

let test_create_events () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/watched"));
  let wd = N.add_watch n (p "/watched") N.all in
  ok (Fs.mkdir fs ~cred (p "/watched/sub"));
  ok (Fs.write_file fs ~cred (p "/watched/f") "x");
  ok (Fs.symlink fs ~cred ~target:"/x" (p "/watched/l"));
  let evs = N.read_events n in
  Alcotest.(check (list string)) "created * 3 + modified"
    [ "created"; "created"; "modified"; "created" ]
    (kinds evs);
  List.iter (fun (e : E.t) -> Alcotest.(check int) "wd" wd e.wd) evs;
  Alcotest.(check (option string)) "name of first" (Some "sub")
    (match evs with e :: _ -> e.E.name | [] -> None)

let test_modify_and_delete () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ok (Fs.write_file fs ~cred (p "/d/f") "1");
  ignore (N.add_watch n (p "/d") N.all);
  ok (Fs.write_file fs ~cred (p "/d/f") "2");
  ok (Fs.unlink fs ~cred (p "/d/f"));
  Alcotest.(check (list string)) "modify then delete"
    [ "modified"; "modified"; "deleted" ] (* truncate + write *)
    (kinds (N.read_events n))

let test_file_watch_self () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ok (Fs.write_file fs ~cred (p "/d/version") "0");
  ignore (N.add_watch n (p "/d/version") [ E.Modified; E.Delete_self ]);
  ok (Fs.write_file fs ~cred (p "/d/version") "1");
  ok (Fs.write_file fs ~cred (p "/d/other") "x");
  ok (Fs.unlink fs ~cred (p "/d/version"));
  Alcotest.(check (list string)) "only the version file's events"
    [ "modified"; "modified"; "delete_self" ]
    (kinds (N.read_events n))

let test_mask_filtering () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n (p "/d") [ E.Created ]);
  ok (Fs.write_file fs ~cred (p "/d/f") "x");
  ok (Fs.unlink fs ~cred (p "/d/f"));
  Alcotest.(check (list string)) "only created" [ "created" ]
    (kinds (N.read_events n))

let test_move_events () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/a"));
  ok (Fs.mkdir fs ~cred (p "/b"));
  ok (Fs.write_file fs ~cred (p "/a/f") "x");
  ignore (N.add_watch n (p "/a") N.all);
  ignore (N.add_watch n (p "/b") N.all);
  ok (Fs.rename fs ~cred ~src:(p "/a/f") ~dst:(p "/b/g"));
  Alcotest.(check (list string)) "moved_from then moved_to"
    [ "moved_from"; "moved_to" ]
    (kinds (N.read_events n))

let test_recursive_watch () =
  let fs, n = setup () in
  ok (Fs.mkdir_p fs ~cred (p "/deep/a/b"));
  ignore (N.add_watch ~recursive:true n (p "/deep") N.all);
  ok (Fs.write_file fs ~cred (p "/deep/a/b/f") "x");
  let evs = N.read_events n in
  Alcotest.(check bool) "saw nested create" true
    (List.exists (fun (e : E.t) -> e.kind = E.Created) evs);
  Alcotest.(check bool) "full path reported" true
    (List.exists
       (fun (e : E.t) -> Path.to_string e.path = "/deep/a/b/f")
       evs)

let test_attrib_events () =
  let fs, n = setup () in
  ok (Fs.write_file fs ~cred (p "/f") "x");
  ignore (N.add_watch n (p "/f") N.all);
  ok (Fs.chmod fs ~cred (p "/f") 0o600);
  ok (Fs.setxattr fs ~cred (p "/f") ~name:"a" ~value:"b");
  Alcotest.(check (list string)) "attrib twice" [ "attrib"; "attrib" ]
    (kinds (N.read_events n))

let test_watch_future_path () =
  (* A watch on a path that does not exist yet becomes live when the
     object appears — drivers rely on this. *)
  let fs, n = setup () in
  ignore (N.add_watch n (p "/later") N.all);
  ok (Fs.mkdir fs ~cred (p "/later"));
  ok (Fs.write_file fs ~cred (p "/later/f") "x");
  let evs = N.read_events n in
  Alcotest.(check bool) "child create seen" true
    (List.exists (fun (e : E.t) -> e.E.name = Some "f") evs)

let test_rm_watch () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  let wd = N.add_watch n (p "/d") N.all in
  ok (Fs.write_file fs ~cred (p "/d/f1") "");
  N.rm_watch n wd;
  ok (Fs.write_file fs ~cred (p "/d/f2") "");
  let evs = N.read_events n in
  Alcotest.(check bool) "no f2 events" true
    (not (List.exists (fun (e : E.t) -> e.E.name = Some "f2") evs))

let test_queue_overflow () =
  let fs = Fs.create () in
  let n = N.create ~queue_limit:5 fs in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n (p "/d") N.all);
  for i = 1 to 20 do
    ok (Fs.create_file fs ~cred (p (Printf.sprintf "/d/f%d" i)))
  done;
  let evs = N.read_events n in
  Alcotest.(check int) "bounded" 6 (List.length evs);
  Alcotest.(check bool) "overflow marker" true
    (List.exists (fun (e : E.t) -> e.kind = E.Overflow) evs)

let test_close_detaches () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n (p "/d") N.all);
  N.close n;
  ok (Fs.write_file fs ~cred (p "/d/f") "");
  Alcotest.(check int) "nothing delivered" 0 (List.length (N.read_events n))

let test_two_notifiers_independent () =
  let fs = Fs.create () in
  let n1 = N.create fs in
  let n2 = N.create fs in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n1 (p "/d") N.all);
  ignore (N.add_watch n2 (p "/d") [ E.Deleted ]);
  ok (Fs.write_file fs ~cred (p "/d/f") "");
  Alcotest.(check bool) "n1 sees create" true (N.pending n1 > 0);
  Alcotest.(check int) "n2 filtered" 0 (N.pending n2)

let test_read_events_charges_syscall () =
  let fs, n = setup () in
  let c = Fs.cost fs in
  Vfs.Cost.reset c;
  ignore (N.read_events n);
  Alcotest.(check int) "one crossing" 1 (Vfs.Cost.crossings c)

let () =
  Alcotest.run "fsnotify"
    [ ( "events",
        [ Alcotest.test_case "create" `Quick test_create_events;
          Alcotest.test_case "modify+delete" `Quick test_modify_and_delete;
          Alcotest.test_case "self watch on file" `Quick test_file_watch_self;
          Alcotest.test_case "mask filtering" `Quick test_mask_filtering;
          Alcotest.test_case "moves" `Quick test_move_events;
          Alcotest.test_case "recursive" `Quick test_recursive_watch;
          Alcotest.test_case "attrib" `Quick test_attrib_events;
          Alcotest.test_case "watch future path" `Quick test_watch_future_path ] );
      ( "lifecycle",
        [ Alcotest.test_case "rm_watch" `Quick test_rm_watch;
          Alcotest.test_case "overflow" `Quick test_queue_overflow;
          Alcotest.test_case "close" `Quick test_close_detaches;
          Alcotest.test_case "independent notifiers" `Quick test_two_notifiers_independent;
          Alcotest.test_case "read charges a syscall" `Quick
            test_read_events_charges_syscall ] ) ]
