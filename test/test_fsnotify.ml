(* Tests for the inotify-like notifier (paper §5.2): event semantics,
   masks-as-bitsets, coalescing, bounded drains, overflow clamping, and
   the equivalence of the indexed routing backend with the retained
   linear reference. *)

module Fs = Vfs.Fs
module Path = Vfs.Path
module N = Fsnotify.Notifier
module E = Fsnotify.Event

let cred = Vfs.Cred.root

let p = Path.of_string_exn

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.Errno.to_string e)

let kinds evs = List.map (fun (e : E.t) -> E.kind_to_string e.kind) evs

let strings evs = List.map (Format.asprintf "%a" E.pp) evs

let setup () =
  let fs = Fs.create () in
  let n = N.create fs in
  fs, n

let test_create_events () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/watched"));
  let wd = N.add_watch n (p "/watched") N.all in
  ok (Fs.mkdir fs ~cred (p "/watched/sub"));
  ok (Fs.write_file fs ~cred (p "/watched/f") "x");
  ok (Fs.symlink fs ~cred ~target:"/x" (p "/watched/l"));
  let evs = N.read_events n in
  Alcotest.(check (list string)) "created * 3 + modified"
    [ "created"; "created"; "modified"; "created" ]
    (kinds evs);
  List.iter (fun (e : E.t) -> Alcotest.(check int) "wd" wd e.wd) evs;
  Alcotest.(check (option string)) "name of first" (Some "sub")
    (match evs with e :: _ -> e.E.name | [] -> None)

let test_modify_and_delete () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ok (Fs.write_file fs ~cred (p "/d/f") "1");
  ignore (N.add_watch n (p "/d") N.all);
  ok (Fs.write_file fs ~cred (p "/d/f") "2");
  ok (Fs.unlink fs ~cred (p "/d/f"));
  (* truncate + write coalesce into one modified *)
  Alcotest.(check (list string)) "modify then delete"
    [ "modified"; "deleted" ]
    (kinds (N.read_events n))

let test_file_watch_self () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ok (Fs.write_file fs ~cred (p "/d/version") "0");
  ignore (N.add_watch n (p "/d/version") (N.mask [ E.Modified; E.Delete_self ]));
  ok (Fs.write_file fs ~cred (p "/d/version") "1");
  ok (Fs.write_file fs ~cred (p "/d/other") "x");
  ok (Fs.unlink fs ~cred (p "/d/version"));
  Alcotest.(check (list string)) "only the version file's events"
    [ "modified"; "delete_self" ]
    (kinds (N.read_events n))

let test_mask_filtering () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n (p "/d") (N.mask [ E.Created ]));
  ok (Fs.write_file fs ~cred (p "/d/f") "x");
  ok (Fs.unlink fs ~cred (p "/d/f"));
  Alcotest.(check (list string)) "only created" [ "created" ]
    (kinds (N.read_events n))

let test_move_events () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/a"));
  ok (Fs.mkdir fs ~cred (p "/b"));
  ok (Fs.write_file fs ~cred (p "/a/f") "x");
  ignore (N.add_watch n (p "/a") N.all);
  ignore (N.add_watch n (p "/b") N.all);
  ok (Fs.rename fs ~cred ~src:(p "/a/f") ~dst:(p "/b/g"));
  Alcotest.(check (list string)) "moved_from then moved_to"
    [ "moved_from"; "moved_to" ]
    (kinds (N.read_events n))

let test_recursive_watch () =
  let fs, n = setup () in
  ok (Fs.mkdir_p fs ~cred (p "/deep/a/b"));
  ignore (N.add_watch ~recursive:true n (p "/deep") N.all);
  ok (Fs.write_file fs ~cred (p "/deep/a/b/f") "x");
  let evs = N.read_events n in
  Alcotest.(check bool) "saw nested create" true
    (List.exists (fun (e : E.t) -> e.kind = E.Created) evs);
  Alcotest.(check bool) "full path reported" true
    (List.exists
       (fun (e : E.t) -> Path.to_string e.path = "/deep/a/b/f")
       evs)

let test_attrib_events () =
  let fs, n = setup () in
  ok (Fs.write_file fs ~cred (p "/f") "x");
  ignore (N.add_watch n (p "/f") N.all);
  ok (Fs.chmod fs ~cred (p "/f") 0o600);
  ok (Fs.setxattr fs ~cred (p "/f") ~name:"a" ~value:"b");
  Alcotest.(check (list string)) "attrib twice" [ "attrib"; "attrib" ]
    (kinds (N.read_events n))

let test_watch_future_path () =
  (* A watch on a path that does not exist yet becomes live when the
     object appears — drivers rely on this. *)
  let fs, n = setup () in
  ignore (N.add_watch n (p "/later") N.all);
  ok (Fs.mkdir fs ~cred (p "/later"));
  ok (Fs.write_file fs ~cred (p "/later/f") "x");
  let evs = N.read_events n in
  Alcotest.(check bool) "child create seen" true
    (List.exists (fun (e : E.t) -> e.E.name = Some "f") evs)

let test_rm_watch () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  let wd = N.add_watch n (p "/d") N.all in
  ok (Fs.write_file fs ~cred (p "/d/f1") "");
  N.rm_watch n wd;
  ok (Fs.write_file fs ~cred (p "/d/f2") "");
  let evs = N.read_events n in
  Alcotest.(check bool) "no f2 events" true
    (not (List.exists (fun (e : E.t) -> e.E.name = Some "f2") evs))

let test_queue_overflow () =
  let fs = Fs.create () in
  let n = N.create ~queue_limit:5 fs in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n (p "/d") N.all);
  for i = 1 to 20 do
    ok (Fs.create_file fs ~cred (p (Printf.sprintf "/d/f%d" i)))
  done;
  (* The queue is clamped at queue_limit, sentinel included: 4 real
     events plus the overflow marker; the other 16 are dropped and
     counted. *)
  Alcotest.(check int) "clamped at queue_limit" 5 (N.pending n);
  let evs = N.read_events n in
  Alcotest.(check int) "bounded" 5 (List.length evs);
  Alcotest.(check string) "overflow marker is last" "overflow"
    (E.kind_to_string (List.nth evs 4).E.kind);
  Alcotest.(check int) "dropped events counted" 16 (N.overflows n);
  Alcotest.(check int) "dropped events in cost model" 16
    (Vfs.Cost.overflows (Fs.cost fs));
  (* after the sentinel is read, delivery resumes *)
  ok (Fs.create_file fs ~cred (p "/d/after"));
  Alcotest.(check (list string)) "resumes after drain" [ "created" ]
    (kinds (N.read_events n))

let test_close_detaches () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n (p "/d") N.all);
  N.close n;
  ok (Fs.write_file fs ~cred (p "/d/f") "");
  Alcotest.(check int) "nothing delivered" 0 (List.length (N.read_events n))

let test_two_notifiers_independent () =
  let fs = Fs.create () in
  let n1 = N.create fs in
  let n2 = N.create fs in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n1 (p "/d") N.all);
  ignore (N.add_watch n2 (p "/d") (N.mask [ E.Deleted ]));
  ok (Fs.write_file fs ~cred (p "/d/f") "");
  Alcotest.(check bool) "n1 sees create" true (N.pending n1 > 0);
  Alcotest.(check int) "n2 filtered" 0 (N.pending n2)

let test_read_events_charges_syscall () =
  let fs, n = setup () in
  let c = Fs.cost fs in
  Vfs.Cost.reset c;
  ignore (N.read_events n);
  Alcotest.(check int) "one crossing" 1 (Vfs.Cost.crossings c)

(* --- coalescing --------------------------------------------------------- *)

let test_coalesce_repeated_writes () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ok (Fs.write_file fs ~cred (p "/d/f") "0");
  ignore (N.add_watch n (p "/d") N.all);
  for i = 1 to 5 do
    ok (Fs.write_file fs ~cred (p "/d/f") (string_of_int i))
  done;
  (* 5 writes = 10 Modified mutations, all back-to-back on one (wd,
     path): one queued event. *)
  Alcotest.(check (list string)) "one modified" [ "modified" ]
    (kinds (N.read_events n));
  Alcotest.(check int) "coalesced counter" 9 (N.coalesced n);
  Alcotest.(check int) "cost counter agrees" 9
    (Vfs.Cost.events_coalesced (Fs.cost fs))

let test_coalesce_interleaving_boundary () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ok (Fs.write_file fs ~cred (p "/d/f1") "0");
  ok (Fs.write_file fs ~cred (p "/d/f2") "0");
  ignore (N.add_watch n (p "/d") N.all);
  ok (Fs.write_file fs ~cred (p "/d/f1") "1");
  ok (Fs.write_file fs ~cred (p "/d/f2") "1");
  ok (Fs.write_file fs ~cred (p "/d/f1") "2");
  ok (Fs.write_file fs ~cred (p "/d/f2") "2");
  (* interleaved paths never merge (only the truncate+write inside each
     write_file coalesces) *)
  let evs = N.read_events n in
  Alcotest.(check (list string)) "alternating modifies survive"
    [ "modified"; "modified"; "modified"; "modified" ]
    (kinds evs);
  Alcotest.(check (list (option string))) "per-file order"
    [ Some "f1"; Some "f2"; Some "f1"; Some "f2" ]
    (List.map (fun (e : E.t) -> e.name) evs)

let test_coalesce_drain_boundary () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ok (Fs.write_file fs ~cred (p "/d/f") "0");
  ignore (N.add_watch n (p "/d") N.all);
  ok (Fs.write_file fs ~cred (p "/d/f") "1");
  Alcotest.(check (list string)) "first write delivered" [ "modified" ]
    (kinds (N.read_events n));
  (* the queue was emptied: an identical write afterwards must NOT merge
     into the already-read event *)
  ok (Fs.write_file fs ~cred (p "/d/f") "2");
  Alcotest.(check (list string)) "second write delivered" [ "modified" ]
    (kinds (N.read_events n))

let test_coalesce_distinct_watches () =
  (* A self watch and a parent watch both report the same write; each
     event merges only with the queue tail, so the pair never collapses
     across watches (inotify behaves the same way). *)
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ok (Fs.write_file fs ~cred (p "/d/f") "0");
  let wd_dir = N.add_watch n (p "/d") N.all in
  let wd_file = N.add_watch n (p "/d/f") N.all in
  ok (Fs.write_file fs ~cred (p "/d/f") "1");
  (* truncate + write, each fanned out to both watches in ascending wd
     order: the alternating wds keep any pair from merging at the tail *)
  let evs = N.read_events n in
  Alcotest.(check (list string)) "both watches fire for both mutations"
    [ "modified"; "modified"; "modified"; "modified" ]
    (kinds evs);
  Alcotest.(check (list int)) "ascending wd order within each mutation"
    [ wd_dir; wd_file; wd_dir; wd_file ]
    (List.map (fun (e : E.t) -> e.wd) evs)

(* --- bounded drain ------------------------------------------------------ *)

let test_read_events_max () =
  let fs, n = setup () in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch n (p "/d") N.all);
  for i = 1 to 10 do
    ok (Fs.create_file fs ~cred (p (Printf.sprintf "/d/f%d" i)))
  done;
  let batch = N.read_events ~max:3 n in
  Alcotest.(check int) "bounded batch" 3 (List.length batch);
  Alcotest.(check (list (option string))) "oldest first"
    [ Some "f1"; Some "f2"; Some "f3" ]
    (List.map (fun (e : E.t) -> e.name) batch);
  Alcotest.(check int) "rest still queued" 7 (N.pending n);
  Alcotest.(check int) "max:0 drains nothing" 0
    (List.length (N.read_events ~max:0 n));
  Alcotest.(check int) "remainder drains in order" 7
    (List.length (N.read_events n));
  Alcotest.(check int) "empty" 0 (N.pending n)

(* --- the routing index -------------------------------------------------- *)

let test_indexed_visits_few_watches () =
  (* 100 watches on unrelated directories: the linear reference examines
     all of them for every mutation, the index only the matching one. *)
  let visited backend =
    let fs = Fs.create () in
    let n = N.create ~backend fs in
    for i = 1 to 100 do
      ok (Fs.mkdir fs ~cred (p (Printf.sprintf "/d%d" i)));
      ignore (N.add_watch n (p (Printf.sprintf "/d%d" i)) N.all)
    done;
    Vfs.Cost.reset (Fs.cost fs);
    ok (Fs.write_file fs ~cred (p "/d50/f") "x");
    Vfs.Cost.watches_visited (Fs.cost fs)
  in
  (* write_file is create + write: two mutations *)
  Alcotest.(check int) "linear scans everything" 200 (visited N.Linear);
  Alcotest.(check bool) "index visits only the parent watch" true
    (visited N.Indexed <= 2)

(* Randomized structural equivalence: the indexed router must emit a
   byte-identical event sequence to the retained linear reference for
   arbitrary workloads — creates/writes/renames/attribs/deletes under
   nested directories, mixed exact/parent/recursive watches with random
   masks, watches added and removed mid-stream, bounded drains at random
   points. *)
let test_randomized_equivalence () =
  let rng = Random.State.make [| 0xE14; 7 |] in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let fs = Fs.create () in
  let lin = N.create ~backend:N.Linear fs in
  let idx = N.create ~backend:N.Indexed fs in
  let dirs =
    [| "/a"; "/a/b"; "/a/b/c"; "/a/b/c/d"; "/a/x"; "/m"; "/m/n"; "/m/n/o";
       "/z" |]
  in
  let files =
    Array.map (fun d -> d ^ "/file") dirs
    |> Array.append [| "/a/f0"; "/a/b/f1"; "/m/f2"; "/m/n/o/f3"; "/z/f4" |]
  in
  let anchors = Array.append dirs files in
  let all_kinds =
    E.
      [ Created; Deleted; Modified; Attrib; Moved_from; Moved_to; Delete_self;
        Move_self ]
  in
  let random_mask () =
    let m =
      List.filter (fun _ -> Random.State.bool rng) all_kinds |> N.mask
    in
    if m = 0 then N.all else m
  in
  let live_wds = ref [] in
  let drain_and_compare ?max () =
    let a = strings (N.read_events ?max lin) in
    let b = strings (N.read_events ?max idx) in
    Alcotest.(check (list string)) "identical event sequences" a b
  in
  for _ = 1 to 600 do
    match Random.State.int rng 10 with
    | 0 -> ignore (Fs.mkdir_p fs ~cred (p (pick dirs)))
    | 1 | 2 ->
      ignore (Fs.write_file fs ~cred (p (pick files)) (string_of_int (Random.State.int rng 3)))
    | 3 -> ignore (Fs.unlink fs ~cred (p (pick files)))
    | 4 ->
      ignore (Fs.rename fs ~cred ~src:(p (pick anchors)) ~dst:(p (pick anchors)))
    | 5 -> ignore (Fs.chmod fs ~cred (p (pick anchors)) 0o700)
    | 6 ->
      ignore
        (Fs.setxattr fs ~cred (p (pick anchors)) ~name:"k"
           ~value:(string_of_int (Random.State.int rng 10)))
    | 7 ->
      let anchor = p (pick anchors) in
      let recursive = Random.State.bool rng in
      let mask = random_mask () in
      let wd_l = N.add_watch ~recursive lin anchor mask in
      let wd_i = N.add_watch ~recursive idx anchor mask in
      Alcotest.(check int) "same wd on both backends" wd_l wd_i;
      live_wds := wd_l :: !live_wds
    | 8 -> (
      match !live_wds with
      | [] -> ()
      | wds ->
        let wd = List.nth wds (Random.State.int rng (List.length wds)) in
        N.rm_watch lin wd;
        N.rm_watch idx wd;
        live_wds := List.filter (fun w -> w <> wd) wds)
    | _ ->
      if Random.State.bool rng then
        drain_and_compare ~max:(Random.State.int rng 5) ()
  done;
  drain_and_compare ();
  Alcotest.(check int) "same pending" (N.pending lin) (N.pending idx);
  Alcotest.(check int) "same coalescing" (N.coalesced lin) (N.coalesced idx);
  Alcotest.(check int) "same overflow accounting" (N.overflows lin)
    (N.overflows idx)

(* Same equivalence under queue pressure: a tiny queue forces overflow
   sentinels and dropped events; both backends must clamp and resume
   identically. *)
let test_equivalence_under_overflow () =
  let fs = Fs.create () in
  let lin = N.create ~backend:N.Linear ~queue_limit:4 fs in
  let idx = N.create ~backend:N.Indexed ~queue_limit:4 fs in
  ok (Fs.mkdir fs ~cred (p "/d"));
  ignore (N.add_watch lin (p "/d") N.all);
  ignore (N.add_watch idx (p "/d") N.all);
  for round = 1 to 3 do
    for i = 1 to 10 do
      ok
        (Fs.write_file fs ~cred
           (p (Printf.sprintf "/d/r%d_f%d" round i))
           "x")
    done;
    let a = strings (N.read_events lin) in
    let b = strings (N.read_events idx) in
    Alcotest.(check (list string)) "identical under overflow" a b;
    Alcotest.(check int) "clamped" 4 (List.length a)
  done;
  Alcotest.(check int) "same drop count" (N.overflows lin) (N.overflows idx)

let () =
  Alcotest.run "fsnotify"
    [ ( "events",
        [ Alcotest.test_case "create" `Quick test_create_events;
          Alcotest.test_case "modify+delete" `Quick test_modify_and_delete;
          Alcotest.test_case "self watch on file" `Quick test_file_watch_self;
          Alcotest.test_case "mask filtering" `Quick test_mask_filtering;
          Alcotest.test_case "moves" `Quick test_move_events;
          Alcotest.test_case "recursive" `Quick test_recursive_watch;
          Alcotest.test_case "attrib" `Quick test_attrib_events;
          Alcotest.test_case "watch future path" `Quick test_watch_future_path ] );
      ( "lifecycle",
        [ Alcotest.test_case "rm_watch" `Quick test_rm_watch;
          Alcotest.test_case "overflow" `Quick test_queue_overflow;
          Alcotest.test_case "close" `Quick test_close_detaches;
          Alcotest.test_case "independent notifiers" `Quick test_two_notifiers_independent;
          Alcotest.test_case "read charges a syscall" `Quick
            test_read_events_charges_syscall ] );
      ( "coalescing",
        [ Alcotest.test_case "repeated writes merge" `Quick
            test_coalesce_repeated_writes;
          Alcotest.test_case "interleaved paths do not merge" `Quick
            test_coalesce_interleaving_boundary;
          Alcotest.test_case "drain is a boundary" `Quick
            test_coalesce_drain_boundary;
          Alcotest.test_case "watches are a boundary" `Quick
            test_coalesce_distinct_watches ] );
      ( "batching",
        [ Alcotest.test_case "read_events ?max" `Quick test_read_events_max ] );
      ( "routing",
        [ Alcotest.test_case "index visits few watches" `Quick
            test_indexed_visits_few_watches;
          Alcotest.test_case "randomized equivalence" `Quick
            test_randomized_equivalence;
          Alcotest.test_case "equivalence under overflow" `Quick
            test_equivalence_under_overflow ] ) ]
